#!/usr/bin/env bash
# Daemon smoke: end-to-end exercise of zodiacd against the batch pipeline.
#
#   1. mine a validated check set from the headline synthetic corpus;
#   2. start zodiacd serving it over a Unix socket with a Prometheus
#      endpoint, check `/healthz`, and replay the slowest scan's exemplar
#      fingerprint through `zodiac client explain`;
#   3. fire 100 concurrent `zodiac client scan`s and require each one to be
#      byte-for-byte identical (stdout+stderr and exit code) to the batch
#      `zodiac scan` of the same file — scraping `/metrics` mid-run and
#      after, and requiring a well-formed exposition (no duplicate series,
#      `_total` counters monotone across the two scrapes);
#   4. kill -9 the daemon and restart it from the persistent store alone;
#   5. shut it down gracefully and status-check the exit.
#
# Run from the repo root; binaries are built if missing.
set -euo pipefail
cd "$(dirname "$0")/.."

ZODIAC=target/release/zodiac
ZODIACD=target/release/zodiacd
[ -x "$ZODIAC" ] && [ -x "$ZODIACD" ] || cargo build --release --locked -p zodiac -p zodiac-daemon

work=$(mktemp -d)
daemon_pid=""
cleanup() {
  [ -n "$daemon_pid" ] && kill -9 "$daemon_pid" 2>/dev/null || true
  rm -rf "$work"
}
trap cleanup EXIT

store="$work/store"
sock="$work/zodiacd.sock"
checks="$work/checks.txt"

echo "== mining the check set =="
"$ZODIAC" mine --projects 80 --seed 7 --out "$checks"

# Scan targets: one clean program, one that violates mined checks
# (Dynamic IP with a Standard sku).
cat > "$work/clean.tf" <<'EOF'
resource "azurerm_public_ip" "ip" {
  allocation_method = "Static"
  sku               = "Standard"
}
EOF
cat > "$work/flagged.tf" <<'EOF'
resource "azurerm_public_ip" "ip" {
  allocation_method = "Dynamic"
  sku               = "Standard"
}
EOF

batch_scan() { # file -> stdout+stderr and exit code appended
  set +e
  "$ZODIAC" scan "$1" --checks "$checks" --no-confirm > "$2" 2>&1
  echo "exit:$?" >> "$2"
  set -e
}
client_scan() {
  set +e
  "$ZODIAC" client scan "$1" --socket "$sock" > "$2" 2>&1
  echo "exit:$?" >> "$2"
  set -e
}

batch_scan "$work/clean.tf"   "$work/batch-clean.out"
batch_scan "$work/flagged.tf" "$work/batch-flagged.out"

echo "== starting zodiacd =="
"$ZODIACD" --store "$store" --checks "$checks" --socket "$sock" \
  --metrics-listen 127.0.0.1:0 2> "$work/daemon.log" &
daemon_pid=$!
for _ in $(seq 100); do [ -S "$sock" ] && break; sleep 0.05; done
[ -S "$sock" ] || { echo "daemon never bound $sock"; cat "$work/daemon.log"; exit 1; }
maddr=""
for _ in $(seq 100); do
  maddr=$(sed -n 's#^zodiacd: metrics on http://\([^/]*\)/metrics$#\1#p' "$work/daemon.log" | head -1)
  [ -n "$maddr" ] && break
  sleep 0.05
done
[ -n "$maddr" ] || { echo "daemon never announced its metrics endpoint"; cat "$work/daemon.log"; exit 1; }

echo "== metrics endpoint and exemplar replay =="
health=$(curl -fsS "http://$maddr/healthz")
[ "$health" = "ok" ] || { echo "/healthz returned '$health', want 'ok'"; exit 1; }
# The daemon's first-ever request: a cold scan of the flagged program. It
# is the slowest scan on record, so its violated-check fingerprints are
# exactly what the exemplar reservoir exposes for op="scan".
"$ZODIAC" client scan "$work/flagged.tf" --socket "$sock" > /dev/null 2>&1 || true
curl -fsS "http://$maddr/metrics" > "$work/scrape0.txt"
fp=$(sed -n 's/^zodiac_op_exemplar_fingerprint{op="scan",fingerprint="\([0-9a-f]\{16\}\)"}.*/\1/p' \
  "$work/scrape0.txt" | head -1)
[ -n "$fp" ] || { echo "no scan exemplar fingerprint in /metrics"; cat "$work/scrape0.txt"; exit 1; }
"$ZODIAC" client explain "$fp" --socket "$sock" > "$work/explain.out" \
  || { echo "exemplar fingerprint $fp is not replayable via explain"; exit 1; }
grep -q "check:" "$work/explain.out" \
  || { echo "explain $fp returned no check text"; cat "$work/explain.out"; exit 1; }
echo "scan exemplar $fp replayed via client explain"

echo "== 100 concurrent client scans =="
client_pids=()
for i in $(seq 100); do
  if [ $((i % 2)) -eq 0 ]; then
    client_scan "$work/clean.tf" "$work/client-$i.out" &
  else
    client_scan "$work/flagged.tf" "$work/client-$i.out" &
  fi
  client_pids+=("$!")
done
# Scrape while the scans are in flight, and again once they are done: the
# page must parse, carry no duplicate series, and every `_total` counter
# must be monotone between the two scrapes.
curl -fsS "http://$maddr/metrics" > "$work/scrape1.txt"
health=$(curl -fsS "http://$maddr/healthz")
[ "$health" = "ok" ] || { echo "/healthz mid-run returned '$health'"; exit 1; }
for p in "${client_pids[@]}"; do wait "$p"; done
curl -fsS "http://$maddr/metrics" > "$work/scrape2.txt"
dup=$(grep -v '^#' "$work/scrape2.txt" | awk '{print $1}' | sort | uniq -d)
[ -z "$dup" ] || { echo "duplicate series in /metrics:"; echo "$dup"; exit 1; }
awk 'NR==FNR { if ($1 !~ /^#/ && $1 ~ /_total([{ ]|$)/) a[$1]=$2; next }
     $1 !~ /^#/ && ($1 in a) && ($2+0) < (a[$1]+0) {
       print "counter went backwards between scrapes: " $1 " " a[$1] " -> " $2; bad=1 }
     END { exit bad }' "$work/scrape1.txt" "$work/scrape2.txt" \
  || { echo "non-monotone _total counter across scrapes"; exit 1; }
grep -q '^zodiac_op_requests{op="scan",window="1m"} ' "$work/scrape2.txt" \
  || { echo "no rolling scan window in /metrics"; exit 1; }
echo "metrics exposition well-formed across two scrapes"

for i in $(seq 100); do
  if [ $((i % 2)) -eq 0 ]; then want="$work/batch-clean.out"; else want="$work/batch-flagged.out"; fi
  diff -u "$want" "$work/client-$i.out" || { echo "client scan $i diverged from batch scan"; exit 1; }
done
echo "all 100 client verdicts byte-identical to batch scans"

echo "== kill -9, restart from the store =="
kill -9 "$daemon_pid"
wait "$daemon_pid" 2>/dev/null || true
daemon_pid=""
# kill -9 leaves the old socket file behind; remove it so the bind-wait
# below watches the restarted daemon, not the stale inode.
rm -f "$sock"
"$ZODIACD" --store "$store" --socket "$sock" &
daemon_pid=$!
for _ in $(seq 100); do [ -S "$sock" ] && break; sleep 0.05; done
[ -S "$sock" ] || { echo "daemon never rebound $sock after restart"; exit 1; }

"$ZODIAC" client status --socket "$sock" | tee "$work/status.out"
grep -q "checks: $(wc -l < "$checks" | tr -d ' ')" "$work/status.out" \
  || { echo "restarted daemon lost checks"; exit 1; }
client_scan "$work/flagged.tf" "$work/client-restart.out"
diff -u "$work/batch-flagged.out" "$work/client-restart.out" \
  || { echo "post-restart verdict diverged"; exit 1; }

echo "== graceful shutdown =="
"$ZODIAC" client shutdown --socket "$sock"
for _ in $(seq 100); do kill -0 "$daemon_pid" 2>/dev/null || break; sleep 0.05; done
if wait "$daemon_pid"; then daemon_status=0; else daemon_status=$?; fi
daemon_pid=""
[ "$daemon_status" -eq 0 ] || { echo "daemon exited with status $daemon_status"; exit 1; }
[ ! -S "$sock" ] || { echo "socket file left behind after shutdown"; exit 1; }

echo "daemon smoke: OK"
