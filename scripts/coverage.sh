#!/usr/bin/env bash
# Line-coverage floor for the pipeline's decision-making crates. Requires
# cargo-llvm-cov (https://github.com/taiki-e/cargo-llvm-cov); ci.sh calls
# this only when the tool is installed, and the dedicated CI coverage job
# installs it explicitly.
set -euo pipefail
cd "$(dirname "$0")/.."

summary=$(cargo llvm-cov --summary-only --json -p zodiac-validation -p zodiac-mining)

python3 - "$summary" <<'EOF'
import json, sys

data = json.loads(sys.argv[1])
floors = {"validation": 60, "mining": 60}
# cargo-llvm-cov --json emits one entry per file; aggregate per crate dir.
totals = {k: [0, 0] for k in floors}
for export in data.get("data", []):
    for f in export.get("files", []):
        name = f["filename"]
        for crate in floors:
            if f"crates/{crate}/" in name:
                s = f["summary"]["lines"]
                totals[crate][0] += s["covered"]
                totals[crate][1] += s["count"]
ok = True
for crate, (covered, count) in totals.items():
    pct = 100.0 * covered / count if count else 0.0
    status = "OK" if pct >= floors[crate] else "BELOW FLOOR"
    if pct < floors[crate]:
        ok = False
    print(f"zodiac-{crate}: {pct:.1f}% line coverage (floor {floors[crate]}%) {status}")
sys.exit(0 if ok else 1)
EOF
