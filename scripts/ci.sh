#!/usr/bin/env bash
# Tier-1 gate: everything a PR must pass before merge. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --locked
cargo test -q --locked
cargo fmt --check
cargo clippy --all-targets -- -D warnings
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace
# Bench smoke-run: each Criterion harness executes one untimed iteration
# when invoked without `--bench`, catching bit-rot in bench-only code.
cargo test --benches -q --locked

# Pipeline-bench smoke: the wave-parallel scheduler must stay fast. The
# 2200ms ceiling is ~6x the committed 344ms mean (BENCH_pipeline.json) —
# generous headroom for noisy shared runners, while still failing any
# regression back toward the 4.3s sequential baseline. Best of 3 absorbs
# scheduler noise.
./target/release/schedule_smoke --runs 3 --ceiling-ms 2200

# Regression seed files must exist and must be tracked — a gitignored seed
# file silently un-pins every replayed failure.
regressions=$(find crates -path '*proptest-regressions*' -type f)
test -n "$regressions" || { echo "no proptest-regressions seed files found"; exit 1; }
for f in $regressions; do
  if git check-ignore -q "$f"; then
    echo "regression seed file is gitignored: $f"
    exit 1
  fi
done

# Fuzz smoke: the differential fuzzer must pass and its report must be a
# pure function of the seed (byte-identical stdout across two runs).
fuzz_a=$(mktemp) fuzz_b=$(mktemp)
trap 'rm -f "$fuzz_a" "$fuzz_b"' EXIT
./target/release/zodiac fuzz --seed 0xC0FFEE --cases 256 > "$fuzz_a"
./target/release/zodiac fuzz --seed 0xC0FFEE --cases 256 > "$fuzz_b"
diff "$fuzz_a" "$fuzz_b" || { echo "fuzz report is nondeterministic"; exit 1; }

# Coverage floor (only where cargo-llvm-cov is installed; the coverage CI
# job installs it, local runs without it skip gracefully).
if command -v cargo-llvm-cov >/dev/null 2>&1; then
  scripts/coverage.sh
else
  echo "cargo-llvm-cov not installed; skipping coverage floor"
fi
