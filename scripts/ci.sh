#!/usr/bin/env bash
# Tier-1 gate: everything a PR must pass before merge. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --locked
cargo test -q --locked
cargo fmt --check
cargo clippy --all-targets -- -D warnings
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace
# Bench smoke-run: each Criterion harness executes one untimed iteration
# when invoked without `--bench`, catching bit-rot in bench-only code.
cargo test --benches -q --locked

# Pipeline-bench smoke: the wave-parallel scheduler must stay fast. The
# 2200ms ceiling is ~6x the committed 344ms mean (BENCH_pipeline.json) —
# generous headroom for noisy shared runners, while still failing any
# regression back toward the 4.3s sequential baseline. Best of 3 absorbs
# scheduler noise.
./target/release/schedule_smoke --runs 3 --ceiling-ms 2200

# Telemetry-overhead smoke: the serving-boundary instrumentation (request
# span + rolling windows + exemplar offer) must cost <= 5% of the daemon's
# memoized scan path, measured A/B inside one process so machine noise
# cancels instead of masquerading as overhead (BENCH_obs.json). The 3ms
# ceiling is ~5x the committed 0.58ms metered batch — a backstop against
# both paths regressing together.
./target/release/obs_smoke --rounds 40 --max-overhead-pct 5 --ceiling-ms 3

# Scale smoke: shard-parallel streaming mining must stay shard-invariant —
# a 10k-project streaming mine with every core must print the same
# check_set_hash as a 1-shard run — and 600-project mining throughput must
# clear the projects/sec floor recorded in BENCH_mining_scale.json.
scale_one=$(./target/release/scale_smoke --projects 10000 --stream)
scale_all=$(./target/release/scale_smoke --projects 10000 --stream --shards "$(nproc)")
echo "$scale_one"; echo "$scale_all"
h1=$(echo "$scale_one" | sed -n 's/.*"check_set_hash":"\([0-9a-f]*\)".*/\1/p')
h2=$(echo "$scale_all" | sed -n 's/.*"check_set_hash":"\([0-9a-f]*\)".*/\1/p')
[ -n "$h1" ] && [ "$h1" = "$h2" ] \
  || { echo "scale smoke: sharded check set diverges from 1-shard ($h1 vs $h2)"; exit 1; }
pps_floor=$(sed -n 's/.*"mining\/scale-600-pps": \([0-9.]*\).*/\1/p' BENCH_mining_scale.json)
[ -n "$pps_floor" ] \
  || { echo "scale smoke: no 600-tier pps floor in BENCH_mining_scale.json"; exit 1; }
./target/release/scale_smoke --projects 600 --floor "$pps_floor"

# Regression seed files must exist and must be tracked — a gitignored seed
# file silently un-pins every replayed failure.
regressions=$(find crates -path '*proptest-regressions*' -type f)
test -n "$regressions" || { echo "no proptest-regressions seed files found"; exit 1; }
for f in $regressions; do
  if git check-ignore -q "$f"; then
    echo "regression seed file is gitignored: $f"
    exit 1
  fi
done

# Fuzz smoke: the differential fuzzer must pass and its report must be a
# pure function of the seed (byte-identical stdout across two runs). The
# 256-case run also exercises the repair properties (7–9: soundness,
# minimality, intent preservation).
fuzz_a=$(mktemp) fuzz_b=$(mktemp) repair_dir=$(mktemp -d)
trap 'rm -f "$fuzz_a" "$fuzz_b"; rm -rf "$repair_dir"' EXIT
./target/release/zodiac fuzz --seed 0xC0FFEE --cases 256 > "$fuzz_a"
./target/release/zodiac fuzz --seed 0xC0FFEE --cases 256 > "$fuzz_b"
diff "$fuzz_a" "$fuzz_b" || { echo "fuzz report is nondeterministic"; exit 1; }

# Repair smoke: a Spot VM without an eviction policy must be repaired
# through all three oracle layers, and a deceptive candidate (delete the
# violating VM) must be rejected at L3 — with both verdicts reconstructable
# from the provenance trace via `zodiac explain`. (`cargo test --benches`
# above already smoke-gates benches/repair.rs.)
cat > "$repair_dir/checks.txt" <<'EOF'
let r:VM in r.priority == 'Spot' => r.eviction_policy != null
EOF
cat > "$repair_dir/original.tf" <<'EOF'
resource "azurerm_resource_group" "rg" {
  name     = "rg1"
  location = "eastus"
}

resource "azurerm_virtual_network" "vnet" {
  name                = "vnet1"
  location            = "eastus"
  resource_group_name = azurerm_resource_group.rg.name
  address_space       = ["10.0.0.0/16"]
}

resource "azurerm_subnet" "s" {
  name                 = "internal"
  resource_group_name  = azurerm_resource_group.rg.name
  virtual_network_name = azurerm_virtual_network.vnet.name
  address_prefixes     = ["10.0.1.0/24"]
}

resource "azurerm_network_interface" "nic" {
  name                = "nic1"
  location            = "eastus"
  resource_group_name = azurerm_resource_group.rg.name
  ip_configuration {
    name                          = "ipcfg"
    subnet_id                     = azurerm_subnet.s.id
    private_ip_address_allocation = "Dynamic"
  }
}

resource "azurerm_linux_virtual_machine" "vm" {
  name                  = "vm1"
  location              = "eastus"
  size                  = "Standard_B1s"
  admin_username        = "azureuser"
  admin_password        = "Sup3rSecret!"
  resource_group_name   = azurerm_resource_group.rg.name
  network_interface_ids = [azurerm_network_interface.nic.id]
  priority              = "Spot"
  os_disk {
    caching              = "ReadWrite"
    storage_account_type = "Standard_LRS"
  }
  source_image_reference {
    publisher = "Canonical"
    offer     = "ubuntu"
    sku       = "22_04-lts"
    version   = "latest"
  }
}
EOF
# The deceptive "fix": the original with the violating VM deleted.
sed '/^resource "azurerm_linux_virtual_machine" "vm" {$/,$d' \
  "$repair_dir/original.tf" > "$repair_dir/deceptive.tf"

./target/release/zodiac repair "$repair_dir/original.tf" \
  --checks "$repair_dir/checks.txt" --explain \
  --trace-out "$repair_dir/accept.jsonl" > "$repair_dir/accept.out"
grep -q "repaired — " "$repair_dir/accept.out" \
  || { echo "repair smoke: expected an accepted repair"; cat "$repair_dir/accept.out"; exit 1; }
fp=$(sed -n 's/.*\[repair \([0-9a-f]\{16\}\)\].*/\1/p' "$repair_dir/accept.out" | head -1)
./target/release/zodiac explain "$fp" --trace "$repair_dir/accept.jsonl" \
  | grep -q "repair accepted" \
  || { echo "repair smoke: explain cannot reconstruct the accepted verdict"; exit 1; }

if ./target/release/zodiac repair "$repair_dir/original.tf" \
  --candidate "$repair_dir/deceptive.tf" \
  --checks "$repair_dir/checks.txt" --explain \
  --trace-out "$repair_dir/reject.jsonl" > "$repair_dir/reject.out"; then
  echo "repair smoke: the deceptive candidate must be rejected"; exit 1
fi
grep -q "rejected at L3" "$repair_dir/reject.out" \
  || { echo "repair smoke: expected an L3 rejection"; cat "$repair_dir/reject.out"; exit 1; }
fp=$(sed -n 's/.*\[repair \([0-9a-f]\{16\}\)\].*/\1/p' "$repair_dir/reject.out" | head -1)
./target/release/zodiac explain "$fp" --trace "$repair_dir/reject.jsonl" \
  | grep -q "repair rejected at L3" \
  || { echo "repair smoke: explain cannot reconstruct the L3 rejection"; exit 1; }

# Coverage floor (only where cargo-llvm-cov is installed; the coverage CI
# job installs it, local runs without it skip gracefully).
if command -v cargo-llvm-cov >/dev/null 2>&1; then
  scripts/coverage.sh
else
  echo "cargo-llvm-cov not installed; skipping coverage floor"
fi
