#!/usr/bin/env bash
# Tier-1 gate: everything a PR must pass before merge. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --locked
cargo test -q --locked
cargo fmt --check
cargo clippy --all-targets -- -D warnings
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace
# Bench smoke-run: each Criterion harness executes one untimed iteration
# when invoked without `--bench`, catching bit-rot in bench-only code.
cargo test --benches -q --locked
