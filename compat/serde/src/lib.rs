//! Workspace-local, offline replacement for the parts of `serde` this
//! repository actually uses.
//!
//! The build environment has no access to a crates.io mirror, so the
//! workspace vendors a minimal serde facade: a self-describing [`Value`]
//! tree, [`Serialize`]/[`Deserialize`] traits that convert to and from it,
//! and (behind the `derive` feature) the `serde_derive` proc-macros. The
//! surface is intentionally small — exactly what the zodiac crates call —
//! but the names mirror upstream serde/serde_json so swapping the real
//! crates back in later is a one-line Cargo.toml change.

use std::collections::BTreeMap;
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Map type used for JSON objects (mirrors `serde_json::Map`).
pub type Map<K, V> = BTreeMap<K, V>;

/// A JSON number: integer-preserving, with a float fallback.
#[derive(Debug, Clone, PartialEq)]
pub struct Number(Repr);

#[derive(Debug, Clone, PartialEq)]
enum Repr {
    I(i64),
    U(u64),
    F(f64),
}

impl Number {
    pub fn from_i64(n: i64) -> Self {
        Number(Repr::I(n))
    }

    pub fn from_u64(n: u64) -> Self {
        Number(Repr::U(n))
    }

    pub fn from_f64(n: f64) -> Self {
        Number(Repr::F(n))
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self.0 {
            Repr::I(n) => Some(n),
            Repr::U(n) => i64::try_from(n).ok(),
            Repr::F(_) => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self.0 {
            Repr::I(n) => u64::try_from(n).ok(),
            Repr::U(n) => Some(n),
            Repr::F(_) => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self.0 {
            Repr::I(n) => Some(n as f64),
            Repr::U(n) => Some(n as f64),
            Repr::F(n) => Some(n),
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            Repr::I(n) => write!(f, "{n}"),
            Repr::U(n) => write!(f, "{n}"),
            Repr::F(n) => {
                if n.is_finite() {
                    if n == n.trunc() && n.abs() < 1e15 {
                        // Keep a decimal point so the value re-parses as float.
                        write!(f, "{n:.1}")
                    } else {
                        write!(f, "{n}")
                    }
                } else {
                    // JSON has no Inf/NaN; match serde_json by emitting null.
                    write!(f, "null")
                }
            }
        }
    }
}

/// A self-describing JSON value (mirrors `serde_json::Value`).
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    #[default]
    Null,
    Bool(bool),
    Number(Number),
    String(String),
    Array(Vec<Value>),
    Object(Map<String, Value>),
}

static NULL: Value = Value::Null;

impl Value {
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => n.as_f64(),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&Map<String, Value>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Looks up a key (objects) — mirrors `serde_json::Value::get`.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(o) => o.get(key),
            _ => None,
        }
    }

    /// RFC 6901 JSON-pointer lookup (`/a/b/0`).
    pub fn pointer(&self, pointer: &str) -> Option<&Value> {
        if pointer.is_empty() {
            return Some(self);
        }
        if !pointer.starts_with('/') {
            return None;
        }
        pointer
            .split('/')
            .skip(1)
            .map(|seg| seg.replace("~1", "/").replace("~0", "~"))
            .try_fold(self, |v, seg| match v {
                Value::Object(o) => o.get(&seg),
                Value::Array(a) => seg.parse::<usize>().ok().and_then(|i| a.get(i)),
                _ => None,
            })
    }

    /// Serialises to compact JSON into `out`.
    pub fn write_json(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => {
                use fmt::Write;
                let _ = write!(out, "{n}");
            }
            Value::String(s) => write_json_string(s, out),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_json(out);
                }
                out.push(']');
            }
            Value::Object(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_json_string(k, out);
                    out.push(':');
                    v.write_json(out);
                }
                out.push('}');
            }
        }
    }

    /// Serialises to pretty JSON (two-space indent) into `out`.
    pub fn write_json_pretty(&self, out: &mut String, indent: usize) {
        match self {
            Value::Array(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    item.write_json_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Value::Object(map) if !map.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    write_json_string(k, out);
                    out.push_str(": ");
                    v.write_json_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
            other => other.write_json(out),
        }
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                use fmt::Write;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        self.write_json(&mut s);
        f.write_str(&s)
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

/// Serialisation/deserialisation error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Converts a value into the self-describing [`Value`] tree.
///
/// Upstream serde parameterises this over a `Serializer`; every consumer in
/// this workspace serialises to JSON, so the single-output form suffices.
pub trait Serialize {
    fn serialize(&self) -> Value;
}

/// Reconstructs a value from a [`Value`] tree.
pub trait Deserialize: Sized {
    fn deserialize(v: &Value) -> Result<Self, Error>;
}

// ---- Serialize impls -------------------------------------------------------

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! serialize_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Number(Number::from_i64(*self as i64))
            }
        }
    )*};
}

serialize_signed!(i8, i16, i32, i64, isize);

macro_rules! serialize_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Number(Number::from_u64(*self as u64))
            }
        }
    )*};
}

serialize_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        Value::Number(Number::from_f64(*self))
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Value {
        Value::Number(Number::from_f64(*self as f64))
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::String(self.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(v) => v.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<K: fmt::Display, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.serialize()))
                .collect(),
        )
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize(&self) -> Value {
        Value::Array(vec![self.0.serialize(), self.1.serialize()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn serialize(&self) -> Value {
        Value::Array(vec![
            self.0.serialize(),
            self.1.serialize(),
            self.2.serialize(),
        ])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize, D: Serialize> Serialize for (A, B, C, D) {
    fn serialize(&self) -> Value {
        Value::Array(vec![
            self.0.serialize(),
            self.1.serialize(),
            self.2.serialize(),
            self.3.serialize(),
        ])
    }
}

// ---- Deserialize impls -----------------------------------------------------

impl Deserialize for Value {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Deserialize for bool {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_bool()
            .ok_or_else(|| Error::custom(format!("expected bool, got {v}")))
    }
}

macro_rules! deserialize_signed {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let n = v
                    .as_i64()
                    .ok_or_else(|| Error::custom(format!("expected integer, got {v}")))?;
                <$t>::try_from(n).map_err(Error::custom)
            }
        }
    )*};
}

deserialize_signed!(i8, i16, i32, i64, isize);

macro_rules! deserialize_unsigned {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let n = v
                    .as_u64()
                    .ok_or_else(|| Error::custom(format!("expected integer, got {v}")))?;
                <$t>::try_from(n).map_err(Error::custom)
            }
        }
    )*};
}

deserialize_unsigned!(u8, u16, u32, u64, usize);

impl Deserialize for f64 {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .ok_or_else(|| Error::custom(format!("expected number, got {v}")))
    }
}

impl Deserialize for f32 {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        f64::deserialize(v).map(|n| n as f32)
    }
}

impl Deserialize for String {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::custom(format!("expected string, got {v}")))
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        T::deserialize(v).map(Box::new)
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::custom(format!("expected array, got {v}")))?
            .iter()
            .map(T::deserialize)
            .collect()
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| Error::custom(format!("expected object, got {v}")))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::deserialize(v)?)))
            .collect()
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let items = v
            .as_array()
            .ok_or_else(|| Error::custom(format!("expected 2-tuple, got {v}")))?;
        if items.len() != 2 {
            return Err(Error::custom(format!("expected 2-tuple, got {v}")));
        }
        Ok((A::deserialize(&items[0])?, B::deserialize(&items[1])?))
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let items = v
            .as_array()
            .ok_or_else(|| Error::custom(format!("expected 3-tuple, got {v}")))?;
        if items.len() != 3 {
            return Err(Error::custom(format!("expected 3-tuple, got {v}")));
        }
        Ok((
            A::deserialize(&items[0])?,
            B::deserialize(&items[1])?,
            C::deserialize(&items[2])?,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pointer_navigates_nested_objects_and_arrays() {
        let mut resources = Vec::new();
        let mut r = Map::new();
        r.insert("type".to_string(), Value::String("vm".to_string()));
        resources.push(Value::Object(r));
        let mut module = Map::new();
        module.insert("resources".to_string(), Value::Array(resources));
        let mut planned = Map::new();
        planned.insert("root_module".to_string(), Value::Object(module));
        let mut root = Map::new();
        root.insert("planned_values".to_string(), Value::Object(planned));
        let v = Value::Object(root);

        let found = v
            .pointer("/planned_values/root_module/resources")
            .and_then(Value::as_array)
            .unwrap();
        assert_eq!(found.len(), 1);
        assert_eq!(found[0]["type"].as_str(), Some("vm"));
        assert!(v.pointer("/missing").is_none());
        assert!(v.pointer("").is_some());
    }

    #[test]
    fn index_missing_key_yields_null() {
        let v = Value::Object(Map::new());
        assert!(v["nope"].is_null());
        assert!(v[3].is_null());
    }

    #[test]
    fn numbers_round_trip_through_accessors() {
        assert_eq!(Number::from_i64(-3).as_i64(), Some(-3));
        assert_eq!(Number::from_u64(u64::MAX).as_i64(), None);
        assert_eq!(Number::from_f64(1.5).as_f64(), Some(1.5));
        assert_eq!(Number::from_f64(1.0).to_string(), "1.0");
    }
}
