//! Workspace-local, offline replacement for the parts of `serde_json` this
//! repository uses: `Value`, `to_string`, `to_string_pretty`, and `from_str`.
//!
//! The `Value` tree itself lives in the companion `serde` compat crate (so
//! derive-generated code can reference it without a circular dependency);
//! this crate re-exports it and adds the JSON text encoder/parser.

use std::fmt;

pub use serde::{Map, Number, Value};

use serde::{Deserialize, Serialize};

/// JSON encode/decode error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    fn new(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.to_string())
    }
}

/// Serialises a value as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.serialize().write_json(&mut out);
    Ok(out)
}

/// Serialises a value as pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.serialize().write_json_pretty(&mut out, 0);
    Ok(out)
}

/// Parses a JSON document.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    T::deserialize(&value).map_err(Error::from)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected input {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self
                .peek()
                .ok_or_else(|| Error::new("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let code = if (0xd800..0xdc00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                if !(self.eat_keyword("\\u")) {
                                    return Err(Error::new("lone high surrogate"));
                                }
                                let lo = self.parse_hex4()?;
                                if !(0xdc00..0xe000).contains(&lo) {
                                    return Err(Error::new("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid unicode escape"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Consume the whole run of unescaped bytes at once;
                    // decoding char-by-char would re-validate the tail of
                    // the input per character (quadratic on long strings).
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while let Some(&b) = self.bytes.get(end) {
                        if b == b'"' || b == b'\\' {
                            break;
                        }
                        end += 1;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error::new("truncated unicode escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error::new("invalid unicode escape"))?;
        let n = u32::from_str_radix(s, 16).map_err(|_| Error::new("invalid unicode escape"))?;
        self.pos = end;
        Ok(n)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        let number = if is_float {
            Number::from_f64(
                text.parse()
                    .map_err(|e| Error::new(format!("{e}: {text}")))?,
            )
        } else if let Ok(n) = text.parse::<i64>() {
            Number::from_i64(n)
        } else if let Ok(n) = text.parse::<u64>() {
            Number::from_u64(n)
        } else {
            Number::from_f64(
                text.parse()
                    .map_err(|e| Error::new(format!("{e}: {text}")))?,
            )
        };
        Ok(Value::Number(number))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_compact_json() {
        let src = r#"{"a":[1,2.5,-3],"b":{"c":"x\ny","d":null},"e":true}"#;
        let v: Value = from_str(src).unwrap();
        assert_eq!(to_string(&v).unwrap(), src);
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v: Value = from_str(r#""tab\t quote\" solidus\/ snowman☃""#).unwrap();
        assert_eq!(v.as_str(), Some("tab\t quote\" solidus/ snowman\u{2603}"));
        let pair: Value = from_str(r#""😀""#).unwrap();
        assert_eq!(pair.as_str(), Some("\u{1f600}"));
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<Value>("{").is_err());
    }

    #[test]
    fn pretty_print_is_reparseable() {
        let src = r#"{"list":[1,2],"obj":{"k":"v"},"empty":[]}"#;
        let v: Value = from_str(src).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(v, back);
    }
}
