//! Workspace-local, offline replacement for `parking_lot`'s `Mutex` and
//! `RwLock`: thin wrappers over `std::sync` that provide parking_lot's
//! non-poisoning API (`lock()` / `read()` / `write()` return guards
//! directly). Lock poisoning is recovered rather than propagated — a
//! panicked writer leaves the data as-is, matching parking_lot semantics
//! closely enough for this workspace's caches and counters.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutual-exclusion lock with parking_lot's panic-free API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// Reader-writer lock with parking_lot's panic-free API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_and_rwlock_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 2);

        let rw = RwLock::new(vec![1, 2]);
        assert_eq!(rw.read().len(), 2);
        rw.write().push(3);
        assert_eq!(rw.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn locks_are_usable_across_threads() {
        let rw = std::sync::Arc::new(RwLock::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let rw = rw.clone();
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        *rw.write() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*rw.read(), 400);
    }
}
