//! Workspace-local, offline replacement for the parts of `criterion` this
//! repository uses: `Criterion::bench_function`, `Bencher::{iter,
//! iter_batched}`, `BatchSize`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Mirrors criterion's cargo integration: `cargo bench` passes `--bench` to
//! the harness, which triggers full timed runs; under `cargo test` (no
//! `--bench` flag) every benchmark body executes exactly once as a smoke
//! test, keeping the tier-1 test suite fast.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortises setup cost. The compat harness times each
/// batch individually, so the variants only document intent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Benchmark driver, configured per group.
pub struct Criterion {
    sample_size: usize,
    bench_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            bench_mode: std::env::args().any(|a| a == "--bench"),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples collected per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark. In bench mode prints mean/min/max wall time; in
    /// test mode executes the body once.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: if self.bench_mode { self.sample_size } else { 1 },
            timings: Vec::new(),
        };
        f(&mut bencher);
        if self.bench_mode {
            report(name, &bencher.timings);
        } else {
            println!("test {name} ... ok (smoke run)");
        }
        self
    }
}

fn report(name: &str, timings: &[Duration]) {
    if timings.is_empty() {
        println!("bench {name}: no samples recorded");
        return;
    }
    let total: Duration = timings.iter().sum();
    let mean = total / timings.len() as u32;
    let min = timings.iter().min().expect("non-empty");
    let max = timings.iter().max().expect("non-empty");
    println!(
        "bench {name}: mean {mean:?}, min {min:?}, max {max:?} ({} samples)",
        timings.len()
    );
}

/// Passed to each benchmark body; collects timed samples.
pub struct Bencher {
    samples: usize,
    timings: Vec<Duration>,
}

impl Bencher {
    /// Times `routine` over the configured number of samples.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.timings.push(start.elapsed());
        }
    }

    /// Times `routine` with per-sample inputs built (untimed) by `setup`.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.timings.push(start.elapsed());
        }
    }
}

/// Declares a benchmark group function, mirroring criterion's macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench harness entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_body() {
        let mut c = Criterion {
            sample_size: 3,
            bench_mode: true,
        };
        let mut runs = 0;
        c.bench_function("counting", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 3);
    }

    #[test]
    fn iter_batched_pairs_setup_with_routine() {
        let mut c = Criterion {
            sample_size: 4,
            bench_mode: true,
        };
        let mut seen = Vec::new();
        c.bench_function("batched", |b| {
            let mut n = 0;
            b.iter_batched(
                || {
                    n += 1;
                    n
                },
                |input| seen.push(input),
                BatchSize::SmallInput,
            )
        });
        assert_eq!(seen, vec![1, 2, 3, 4]);
    }
}
