//! Workspace-local, offline replacement for the parts of `rand` 0.8 this
//! repository uses: `StdRng::seed_from_u64`, `Rng::{gen, gen_bool,
//! gen_range}` over integer ranges, and `seq::SliceRandom::{shuffle,
//! choose}`.
//!
//! `StdRng` is a xoshiro256** generator seeded through splitmix64 — not the
//! same stream as upstream rand's ChaCha-based `StdRng`, but all consumers in
//! this workspace only require determinism for a fixed seed, never a
//! particular stream.

use std::ops::{Range, RangeInclusive};

/// Minimal core RNG interface: a source of uniform 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Extension methods, mirroring `rand::Rng`. Blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of a type implementing [`Standard`].
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool called with p={p}");
        // 53 uniform mantissa bits → a float in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }

    /// Samples uniformly from a half-open or inclusive integer range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable from raw RNG output via `Rng::gen`.
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that `Rng::gen_range` accepts. A single blanket impl per range
/// shape (mirroring upstream rand) so integer-literal ranges adopt the type
/// expected at the call site.
pub trait SampleRange<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = self.into_inner();
        T::sample_range(rng, start, end, true)
    }
}

/// Integer types uniformly samplable from a range.
pub trait SampleUniform: Sized {
    fn sample_range<R: RngCore + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        inclusive: bool,
    ) -> Self;
}

/// Uniform draw from `[0, n)` by widening multiply (Lemire reduction without
/// the rejection step — the bias is < 2^-32 for every bound this repo uses,
/// and determinism, not exactness, is what matters here).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    ((rng.next_u64() as u128 * n as u128) >> 64) as u64
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(
                rng: &mut R,
                low: $t,
                high: $t,
                inclusive: bool,
            ) -> $t {
                if inclusive {
                    assert!(low <= high, "gen_range: empty range");
                    let span = (high as i128 - low as i128) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    (low as i128 + uniform_below(rng, span + 1) as i128) as $t
                } else {
                    assert!(low < high, "gen_range: empty range");
                    let span = (high as i128 - low as i128) as u64;
                    (low as i128 + uniform_below(rng, span) as i128) as $t
                }
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic 64-bit generator (xoshiro256**), seeded via splitmix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice helpers mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        type Item;

        /// In-place Fisher–Yates shuffle.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// Uniformly chosen element, or `None` on an empty slice.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn fixed_seed_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17u32);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(2..=4usize);
            assert!((2..=4).contains(&w));
            let n = rng.gen_range(-5..5i64);
            assert!((-5..5).contains(&n));
        }
        // Every value of a small inclusive range should be reachable.
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[rng.gen_range(0..=2usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits={hits}");
        assert_eq!((0..100).filter(|_| rng.gen_bool(0.0)).count(), 0);
        assert_eq!((0..100).filter(|_| rng.gen_bool(1.0)).count(), 100);
    }

    #[test]
    fn shuffle_permutes_and_choose_covers() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..20).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: Vec<u32> = Vec::new();
        assert!(empty.choose(&mut rng).is_none());
    }
}
