//! Workspace-local, offline replacement for the `crossbeam` channel API this
//! repository uses: `channel::bounded` MPMC channels with blocking `send` /
//! `recv`, cloneable endpoints, and `len()` for queue-depth telemetry.
//!
//! Built on `std::sync` (`Mutex` + two `Condvar`s). Not lock-free like the
//! real crossbeam, but correct, deadlock-free, and fast enough for a worker
//! pool whose jobs each cost far more than a lock handshake.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct State<T> {
        queue: VecDeque<T>,
        cap: usize,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        /// Signalled when the queue gains an item or the last sender leaves.
        not_empty: Condvar,
        /// Signalled when the queue loses an item or the last receiver leaves.
        not_full: Condvar,
    }

    /// Creates a bounded MPMC channel with capacity `cap` (≥ 1 enforced).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                cap: cap.max(1),
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (
            Sender {
                shared: shared.clone(),
            },
            Receiver { shared },
        )
    }

    /// Error returned by `send` when every receiver has been dropped.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error returned by `recv` when the channel is empty and every sender
    /// has been dropped.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty, disconnected channel")
        }
    }

    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Sender<T> {
        /// Blocks until there is queue capacity, then enqueues `value`.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.state.lock().expect("channel lock");
            loop {
                if state.receivers == 0 {
                    return Err(SendError(value));
                }
                if state.queue.len() < state.cap {
                    state.queue.push_back(value);
                    self.shared.not_empty.notify_one();
                    return Ok(());
                }
                state = self.shared.not_full.wait(state).expect("channel lock");
            }
        }

        /// Current queue depth.
        pub fn len(&self) -> usize {
            self.shared.state.lock().expect("channel lock").queue.len()
        }

        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until an item is available; errors once the channel is
        /// drained and all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.state.lock().expect("channel lock");
            loop {
                if let Some(value) = state.queue.pop_front() {
                    self.shared.not_full.notify_one();
                    return Ok(value);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.shared.not_empty.wait(state).expect("channel lock");
            }
        }

        /// Current queue depth.
        pub fn len(&self) -> usize {
            self.shared.state.lock().expect("channel lock").queue.len()
        }

        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// Iterator of received items, ending when the channel disconnects.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().expect("channel lock").senders += 1;
            Sender {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().expect("channel lock").receivers += 1;
            Receiver {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.state.lock().expect("channel lock");
            state.senders -= 1;
            if state.senders == 0 {
                drop(state);
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut state = self.shared.state.lock().expect("channel lock");
            state.receivers -= 1;
            if state.receivers == 0 {
                drop(state);
                self.shared.not_full.notify_all();
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fan_out_fan_in_delivers_everything() {
            let (tx, rx) = bounded::<usize>(4);
            let workers: Vec<_> = (0..4)
                .map(|_| {
                    let rx = rx.clone();
                    std::thread::spawn(move || {
                        let mut got = Vec::new();
                        while let Ok(v) = rx.recv() {
                            got.push(v);
                        }
                        got
                    })
                })
                .collect();
            drop(rx);
            for i in 0..100 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let mut all: Vec<usize> = workers
                .into_iter()
                .flat_map(|w| w.join().unwrap())
                .collect();
            all.sort_unstable();
            assert_eq!(all, (0..100).collect::<Vec<_>>());
        }

        #[test]
        fn recv_errors_after_senders_drop() {
            let (tx, rx) = bounded::<u8>(2);
            tx.send(9).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(9));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn send_errors_after_receivers_drop() {
            let (tx, rx) = bounded::<u8>(2);
            drop(rx);
            assert_eq!(tx.send(1), Err(SendError(1)));
        }

        #[test]
        fn bounded_send_blocks_until_capacity_frees() {
            let (tx, rx) = bounded::<u8>(1);
            tx.send(1).unwrap();
            let t = {
                let tx = tx.clone();
                std::thread::spawn(move || tx.send(2).unwrap())
            };
            // The second send must wait for this recv.
            assert_eq!(rx.recv(), Ok(1));
            t.join().unwrap();
            assert_eq!(rx.recv(), Ok(2));
        }
    }
}
