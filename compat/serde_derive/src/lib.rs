//! Derive macros for the workspace-local `serde` facade.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the type
//! shapes this repository uses — non-generic structs (named, newtype, tuple,
//! unit) and enums (unit, newtype, tuple, and struct variants) with serde's
//! externally-tagged representation. The only field attribute honoured is
//! `#[serde(skip)]` (omitted on serialise, `Default::default()` on
//! deserialise). Parsing is done directly on `proc_macro` token trees so the
//! crate has no dependencies.

use proc_macro::{Delimiter, Group, TokenStream, TokenTree};

struct Field {
    name: String,
    skip: bool,
}

enum Fields {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Input {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_serialize(&parsed)
        .parse()
        .expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_deserialize(&parsed)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---- parsing ---------------------------------------------------------------

fn parse_input(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    // Skip outer attributes, visibility, and any other modifiers until the
    // `struct` / `enum` keyword.
    let kind = loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
            Some(TokenTree::Ident(id)) => {
                let word = id.to_string();
                if word == "struct" || word == "enum" {
                    i += 1;
                    break word;
                }
                i += 1;
            }
            Some(_) => i += 1,
            None => panic!("derive input has no struct or enum keyword"),
        }
    };
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected type name after `{kind}`, got {other:?}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("compat serde_derive does not support generic type `{name}`");
        }
    }
    if kind == "struct" {
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Fields::Named(parse_named_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Fields::Tuple(count_tuple_fields(g))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
            other => panic!("unexpected struct body for `{name}`: {other:?}"),
        };
        Input::Struct { name, fields }
    } else {
        let variants = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => parse_variants(g),
            other => panic!("unexpected enum body for `{name}`: {other:?}"),
        };
        Input::Enum { name, variants }
    }
}

/// Returns true for `#[serde(skip)]` attribute bodies (the bracket group).
fn attr_is_serde_skip(attr: &Group) -> bool {
    let tokens: Vec<TokenTree> = attr.stream().into_iter().collect();
    match (tokens.first(), tokens.get(1)) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(args)))
            if id.to_string() == "serde" && args.delimiter() == Delimiter::Parenthesis =>
        {
            args.stream()
                .into_iter()
                .any(|t| matches!(&t, TokenTree::Ident(id) if id.to_string() == "skip"))
        }
        _ => false,
    }
}

fn parse_named_fields(body: &Group) -> Vec<Field> {
    let tokens: Vec<TokenTree> = body.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let mut skip = false;
        // Field attributes.
        while let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() != '#' {
                break;
            }
            if let Some(TokenTree::Group(attr)) = tokens.get(i + 1) {
                skip |= attr_is_serde_skip(attr);
            }
            i += 2;
        }
        // Visibility.
        if let Some(TokenTree::Ident(id)) = tokens.get(i) {
            if id.to_string() == "pub" {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
        }
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("expected field name, got {other:?}"),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("expected `:` after field `{name}`, got {other:?}"),
        }
        // Skip the type: consume until a comma at angle-bracket depth zero.
        let mut angle_depth = 0i32;
        while let Some(t) = tokens.get(i) {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
                _ => {}
            }
            i += 1;
        }
        i += 1; // consume the comma (or run off the end)
        fields.push(Field { name, skip });
    }
    fields
}

fn count_tuple_fields(body: &Group) -> usize {
    let mut angle_depth = 0i32;
    let mut count = 0;
    let mut segment_has_tokens = false;
    for t in body.stream() {
        match &t {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                angle_depth += 1;
                segment_has_tokens = true;
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle_depth -= 1;
                segment_has_tokens = true;
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                if segment_has_tokens {
                    count += 1;
                }
                segment_has_tokens = false;
            }
            _ => segment_has_tokens = true,
        }
    }
    if segment_has_tokens {
        count += 1;
    }
    count
}

fn parse_variants(body: &Group) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = body.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Variant attributes (e.g. doc comments become #[doc = ...]).
        while let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() != '#' {
                break;
            }
            i += 2;
        }
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("expected variant name, got {other:?}"),
        };
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Fields::Named(parse_named_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Tuple(count_tuple_fields(g))
            }
            _ => Fields::Unit,
        };
        // Advance to the next comma at top level (tolerates discriminants).
        while let Some(t) = tokens.get(i) {
            if matches!(t, TokenTree::Punct(p) if p.as_char() == ',') {
                break;
            }
            i += 1;
        }
        i += 1;
        variants.push(Variant { name, fields });
    }
    variants
}

// ---- codegen: Serialize ----------------------------------------------------

fn gen_serialize(input: &Input) -> String {
    match input {
        Input::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => "serde::Value::Null".to_string(),
                Fields::Tuple(1) => "serde::Serialize::serialize(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("serde::Serialize::serialize(&self.{i})"))
                        .collect();
                    format!("serde::Value::Array(vec![{}])", items.join(", "))
                }
                Fields::Named(fields) => gen_serialize_named(fields, "self.", "."),
            };
            format!(
                "impl serde::Serialize for {name} {{\n\
                 fn serialize(&self) -> serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Input::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.fields {
                    Fields::Unit => arms.push_str(&format!(
                        "{name}::{vname} => serde::Value::String(\"{vname}\".to_string()),\n"
                    )),
                    Fields::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vname}(f0) => {{\n\
                         let mut map = serde::Map::new();\n\
                         map.insert(\"{vname}\".to_string(), serde::Serialize::serialize(f0));\n\
                         serde::Value::Object(map)\n\
                         }}\n"
                    )),
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("serde::Serialize::serialize({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vname}({}) => {{\n\
                             let mut map = serde::Map::new();\n\
                             map.insert(\"{vname}\".to_string(), serde::Value::Array(vec![{}]));\n\
                             serde::Value::Object(map)\n\
                             }}\n",
                            binds.join(", "),
                            items.join(", ")
                        ));
                    }
                    Fields::Named(fields) => {
                        let binds: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                        let inner = gen_serialize_named(fields, "", "_inner");
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {} }} => {{\n\
                             let inner_value = {inner};\n\
                             let mut map = serde::Map::new();\n\
                             map.insert(\"{vname}\".to_string(), inner_value);\n\
                             serde::Value::Object(map)\n\
                             }}\n",
                            binds.join(", ")
                        ));
                    }
                }
            }
            format!(
                "impl serde::Serialize for {name} {{\n\
                 fn serialize(&self) -> serde::Value {{\n\
                 match self {{\n{arms}}}\n\
                 }}\n\
                 }}"
            )
        }
    }
}

/// Builds an `Object` expression from named fields. `prefix` is prepended to
/// each field access (`self.` for structs, empty for match bindings);
/// `map_suffix` uniquifies the local map variable name.
fn gen_serialize_named(fields: &[Field], prefix: &str, map_suffix: &str) -> String {
    let map_var = format!("map_{}", map_suffix.replace('.', "s"));
    let mut body = format!("{{ let mut {map_var} = serde::Map::new();\n");
    for f in fields {
        if f.skip {
            continue;
        }
        let fname = &f.name;
        let access = if prefix.is_empty() {
            // Match binding: already a reference.
            format!("serde::Serialize::serialize({fname})")
        } else {
            format!("serde::Serialize::serialize(&{prefix}{fname})")
        };
        body.push_str(&format!(
            "{map_var}.insert(\"{fname}\".to_string(), {access});\n"
        ));
    }
    body.push_str(&format!("serde::Value::Object({map_var}) }}"));
    body
}

// ---- codegen: Deserialize --------------------------------------------------

fn gen_deserialize(input: &Input) -> String {
    match input {
        Input::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => format!("let _ = v; Ok({name})"),
                Fields::Tuple(1) => {
                    format!("Ok({name}(serde::Deserialize::deserialize(v)?))")
                }
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("serde::Deserialize::deserialize(&items[{i}])?"))
                        .collect();
                    format!(
                        "let items = v.as_array().ok_or_else(|| \
                         serde::Error::custom(\"{name}: expected array\"))?;\n\
                         if items.len() != {n} {{ return Err(serde::Error::custom(\
                         \"{name}: expected {n} elements\")); }}\n\
                         Ok({name}({}))",
                        items.join(", ")
                    )
                }
                Fields::Named(fields) => {
                    format!(
                        "let obj = v.as_object().ok_or_else(|| \
                         serde::Error::custom(\"{name}: expected object\"))?;\n\
                         Ok({name} {{ {} }})",
                        gen_deserialize_named(fields, "obj")
                    )
                }
            };
            format!(
                "impl serde::Deserialize for {name} {{\n\
                 fn deserialize(v: &serde::Value) -> Result<Self, serde::Error> {{\n{body}\n}}\n\
                 }}"
            )
        }
        Input::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.fields {
                    Fields::Unit => {
                        unit_arms.push_str(&format!("\"{vname}\" => Ok({name}::{vname}),\n"))
                    }
                    Fields::Tuple(1) => data_arms.push_str(&format!(
                        "\"{vname}\" => Ok({name}::{vname}(\
                         serde::Deserialize::deserialize(inner)?)),\n"
                    )),
                    Fields::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("serde::Deserialize::deserialize(&items[{i}])?"))
                            .collect();
                        data_arms.push_str(&format!(
                            "\"{vname}\" => {{\n\
                             let items = inner.as_array().ok_or_else(|| \
                             serde::Error::custom(\"{name}::{vname}: expected array\"))?;\n\
                             if items.len() != {n} {{ return Err(serde::Error::custom(\
                             \"{name}::{vname}: expected {n} elements\")); }}\n\
                             Ok({name}::{vname}({}))\n\
                             }}\n",
                            items.join(", ")
                        ));
                    }
                    Fields::Named(fields) => data_arms.push_str(&format!(
                        "\"{vname}\" => {{\n\
                         let obj = inner.as_object().ok_or_else(|| \
                         serde::Error::custom(\"{name}::{vname}: expected object\"))?;\n\
                         Ok({name}::{vname} {{ {} }})\n\
                         }}\n",
                        gen_deserialize_named(fields, "obj")
                    )),
                }
            }
            format!(
                "impl serde::Deserialize for {name} {{\n\
                 fn deserialize(v: &serde::Value) -> Result<Self, serde::Error> {{\n\
                 match v {{\n\
                 serde::Value::String(s) => match s.as_str() {{\n\
                 {unit_arms}\
                 other => Err(serde::Error::custom(format!(\
                 \"{name}: unknown variant {{other}}\"))),\n\
                 }},\n\
                 serde::Value::Object(map) if map.len() == 1 => {{\n\
                 let (tag, inner) = map.iter().next().expect(\"len checked\");\n\
                 let _ = inner;\n\
                 match tag.as_str() {{\n\
                 {data_arms}\
                 other => Err(serde::Error::custom(format!(\
                 \"{name}: unknown variant {{other}}\"))),\n\
                 }}\n\
                 }},\n\
                 other => Err(serde::Error::custom(format!(\
                 \"{name}: invalid enum encoding {{other}}\"))),\n\
                 }}\n\
                 }}\n\
                 }}"
            )
        }
    }
}

fn gen_deserialize_named(fields: &[Field], obj_var: &str) -> String {
    fields
        .iter()
        .map(|f| {
            let fname = &f.name;
            if f.skip {
                format!("{fname}: Default::default()")
            } else {
                format!(
                    "{fname}: match {obj_var}.get(\"{fname}\") {{\n\
                     Some(x) => serde::Deserialize::deserialize(x)?,\n\
                     None => serde::Deserialize::deserialize(&serde::Value::Null)?,\n\
                     }}"
                )
            }
        })
        .collect::<Vec<_>>()
        .join(",\n")
}
