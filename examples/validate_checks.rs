//! Validate hand-written semantic checks against the simulated cloud:
//! write checks in the paper's assertion language, and Zodiac builds
//! positive and negative test cases, deploys them, and reports the verdict.
//!
//! ```sh
//! cargo run --release --example validate_checks
//! ```

use zodiac_cloud::CloudSim;
use zodiac_corpus::CorpusConfig;
use zodiac_mining::MinedCheck;
use zodiac_model::Program;
use zodiac_spec::parse_check;
use zodiac_validation::{Scheduler, SchedulerConfig};

fn main() {
    // Checks a DevOps engineer might hypothesise — some true, some false.
    let hypotheses = [
        // True: the paper's running example.
        "let r1:VM, r2:NIC in conn(r1.network_interface_ids -> r2.id) => r1.location == r2.location",
        // True: Premium storage accounts cannot use GZRS (§5.1 example 1).
        "let r:SA in r.account_tier == 'Premium' => r.account_replication_type != 'GZRS'",
        // True: spot VMs need an eviction policy.
        "let r:VM in r.priority == 'Spot' => r.eviction_policy != null",
        // False: nothing stops a Standard-tier account from using LRS.
        "let r:SA in r.account_tier == 'Standard' => r.account_replication_type != 'LRS'",
        // False: VMs may use any region, not just eastus.
        "let r:VM in r.priority == 'Regular' => r.location == 'eastus'",
    ];

    let corpus: Vec<Program> = zodiac_corpus::generate(&CorpusConfig {
        projects: 200,
        noise_rate: 0.0,
        ..Default::default()
    })
    .into_iter()
    .map(|p| p.program)
    .collect();

    let kb = zodiac_kb::azure_kb();
    let sim = CloudSim::new_azure();

    let candidates: Vec<MinedCheck> = hypotheses
        .iter()
        .map(|src| MinedCheck {
            check: parse_check(src).expect("valid check syntax"),
            family: "hand-written",
            support: 10,
            confidence: 1.0,
            lift: None,
            interp: None,
        })
        .collect();

    println!("==> validating {} hand-written checks...", candidates.len());
    let scheduler = Scheduler::new(&sim, &kb, &corpus, SchedulerConfig::default());
    let outcome = scheduler.run(candidates);

    println!("\nValidated (deployment-confirmed):");
    for v in &outcome.validated {
        println!("  ✓ {}", v.mined.check);
    }
    println!("\nFalsified:");
    for f in &outcome.false_positives {
        println!("  ✗ {}  [{:?}]", f.mined.check, f.reason);
    }
    if !outcome.unresolved.is_empty() {
        println!("\nUnresolved:");
        for u in &outcome.unresolved {
            println!("  ? {}", u.check);
        }
    }
}
