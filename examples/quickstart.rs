//! Quickstart: run the whole Zodiac pipeline on a small synthetic corpus
//! and print the validated semantic checks.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use zodiac::{run_pipeline, PipelineConfig};

fn main() {
    let mut cfg = PipelineConfig::evaluation();
    // Keep the quickstart quick: a smaller corpus than the evaluation runs.
    cfg.corpus.projects = 150;
    cfg.counterexample_projects = 100;

    println!(
        "==> generating corpus ({} projects)...",
        cfg.corpus.projects
    );
    let result = run_pipeline(&cfg);

    println!(
        "==> mining: {} hypothesized, {} removed by confidence, {} by lift, \
         {} interpolated, {} kept",
        result.mining.hypothesized,
        result.mining.removed_by_confidence,
        result.mining.removed_by_lift,
        result.mining.llm_found,
        result.mining.checks.len(),
    );
    println!(
        "==> validation: {} validated / {} false positives / {} unresolved \
         in {} iterations",
        result.validation.validated.len(),
        result.validation.false_positives.len(),
        result.validation.unresolved.len(),
        result.validation.trace.iterations.len(),
    );
    println!(
        "==> counterexample pass demoted {} checks; final set: {}",
        result.demoted.len(),
        result.final_checks.len(),
    );

    println!("\nValidated semantic checks:");
    for (i, v) in result.final_checks.iter().enumerate() {
        println!("{:>3}. [{}] {}", i + 1, v.mined.family, v.mined.check);
    }
}
