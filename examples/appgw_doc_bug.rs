//! Reproduces §5.5: the official application-gateway usage example that
//! compiles cleanly but violates two semantic checks at once — and why the
//! naive fix is wrong.
//!
//! ```sh
//! cargo run --release --example appgw_doc_bug
//! ```

use zodiac::fixtures::{
    APPGW_CHECKS, APPGW_DOC_EXAMPLE, APPGW_DOC_EXAMPLE_FIXED, IP_ALLOCATION_CHECK,
};
use zodiac::scanner::scan_program;
use zodiac_cloud::{CloudSim, DeployOutcome};
use zodiac_spec::parse_check;

fn main() {
    let kb = zodiac_kb::azure_kb();
    let sim = CloudSim::new_azure();
    let checks: Vec<_> = APPGW_CHECKS
        .iter()
        .map(|s| parse_check(s).unwrap())
        .collect();

    println!("== the official usage example (buggy) ==");
    let buggy =
        zodiac_hcl::compile(APPGW_DOC_EXAMPLE).expect("the example compiles — that is the problem");
    println!(
        "Terraform-level compilation: OK ({} resources)",
        buggy.len()
    );

    let violations = scan_program(&buggy, &checks, &kb);
    println!("Zodiac static scan: {} violations", violations.len());
    for v in &violations {
        println!("  ✗ {}", v.check);
        for r in &v.resources {
            println!("      involves {r}");
        }
    }

    match sim.deploy(&buggy).outcome {
        DeployOutcome::Failure {
            phase,
            rule_id,
            resource,
            message,
        } => println!("Deployment: FAILED at {phase} on {resource}\n  {rule_id}: {message}"),
        DeployOutcome::Success => println!("Deployment: unexpectedly succeeded?!"),
    }

    println!("\n== the naive fix (sku = Standard, allocation untouched) ==");
    let naive = APPGW_DOC_EXAMPLE.replace(
        "sku                 = \"Basic\"",
        "sku                 = \"Standard\"",
    );
    let naive_program = zodiac_hcl::compile(&naive).unwrap();
    let coupled = parse_check(IP_ALLOCATION_CHECK).unwrap();
    let naive_violations = scan_program(&naive_program, &[coupled], &kb);
    println!(
        "Flipping the sku alone trips the coupled check ({} violation):",
        naive_violations.len()
    );
    for v in &naive_violations {
        println!("  ✗ {}", v.check);
    }
    println!(
        "Deployment of the naive fix: {}",
        if sim.deploys_ok(&naive_program) {
            "OK"
        } else {
            "FAILED (as Zodiac predicts)"
        }
    );

    println!("\n== the complete fix (Standard/Static IP, NIC on the backend subnet) ==");
    let fixed = zodiac_hcl::compile(APPGW_DOC_EXAMPLE_FIXED).unwrap();
    let fixed_violations = scan_program(&fixed, &checks, &kb);
    println!("Zodiac static scan: {} violations", fixed_violations.len());
    println!(
        "Deployment: {}",
        if sim.deploys_ok(&fixed) {
            "OK"
        } else {
            "FAILED"
        }
    );
}
