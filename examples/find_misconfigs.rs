//! Scan a repository corpus for semantic misconfigurations (§5.5): mine and
//! validate checks on one corpus, then scan a *different* corpus with them,
//! reporting the buggy-project rate and the top offending checks.
//!
//! ```sh
//! cargo run --release --example find_misconfigs
//! ```

use zodiac::scanner::scan_corpus;
use zodiac::{run_pipeline, PipelineConfig};
use zodiac_corpus::CorpusConfig;
use zodiac_model::Program;

fn main() {
    let mut cfg = PipelineConfig::evaluation();
    cfg.corpus.projects = 200;
    cfg.counterexample_projects = 100;
    println!(
        "==> mining + validating checks on {} projects...",
        cfg.corpus.projects
    );
    let result = run_pipeline(&cfg);
    let checks: Vec<_> = result
        .final_checks
        .iter()
        .map(|v| v.mined.check.clone())
        .collect();
    println!("    {} validated checks ready", checks.len());

    // A fresh "wild" corpus with real-world noise levels.
    let wild: Vec<Program> = zodiac_corpus::generate(&CorpusConfig {
        projects: 400,
        seed: 0xBEEF,
        noise_rate: 0.02,
        ..Default::default()
    })
    .into_iter()
    .map(|p| p.program)
    .collect();

    let kb = zodiac_kb::azure_kb();
    println!("==> scanning {} wild projects...", wild.len());
    let report = scan_corpus(&wild, &checks, &kb);
    println!(
        "    {} / {} projects violate at least one check ({:.1}%)",
        report.buggy_programs,
        report.scanned,
        100.0 * report.buggy_rate()
    );
    println!("\nTop violated checks:");
    for (check_idx, count) in report.top_checks(3) {
        println!("  {count:>3} × {}", checks[check_idx]);
    }
    println!("\nSample violations:");
    for (program_idx, vs) in report.violations.iter().take(5) {
        for v in vs.iter().take(1) {
            println!(
                "  project #{program_idx}: {} (resources: {})",
                v.check,
                v.resources
                    .iter()
                    .map(ToString::to_string)
                    .collect::<Vec<_>>()
                    .join(", ")
            );
        }
    }
}
