//! Blast-radius semantics (§5.1 "impact of failures"): a slow tunnel
//! failing over overlapping VNets leaves fast-deployed children in the
//! rollback radius.

use rand::SeedableRng;
use zodiac_cloud::{CloudSim, DeployOutcome};
use zodiac_corpus::CorpusConfig;

#[test]
fn tunnel_overlap_has_wide_rollback_radius() {
    let corpus = zodiac_corpus::generate(&CorpusConfig {
        projects: 300,
        noise_rate: 0.0,
        seed: 5,
        ..Default::default()
    });
    let sim = CloudSim::new_azure();
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let mut tested = 0;
    for p in &corpus {
        if !p.motifs.contains(&"vnet2vnet") {
            continue;
        }
        let mut program = p.program.clone();
        if !zodiac_corpus::inject_kind(&mut rng, &mut program, "tunnel-vpc-overlap") {
            continue;
        }
        let report = sim.deploy(&program);
        let DeployOutcome::Failure {
            phase: _, rule_id, ..
        } = &report.outcome
        else {
            panic!("{}: overlapping tunneled VNets must fail", p.name);
        };
        assert_eq!(rule_id, "gw/tunnel-vpc-overlap", "{}", p.name);
        // The paper's §5.1 walk-through: the VNets and their children
        // deployed before the tunnel failed, so the rollback radius spans
        // several resource types (VNet + subnet + gateway at minimum).
        assert!(
            report.rollback_radius() >= 3,
            "{}: rollback radius {} too small: {:?}",
            p.name,
            report.rollback_radius(),
            report.rollback
        );
        // The fix target is a virtual network.
        assert!(report
            .rollback
            .iter()
            .any(|r| r.rtype == "azurerm_virtual_network"));
        tested += 1;
        if tested >= 3 {
            break;
        }
    }
    assert!(tested > 0, "corpus must contain vnet2vnet projects");
}

#[test]
fn intra_resource_failures_have_minimal_rollback() {
    let corpus = zodiac_corpus::generate(&CorpusConfig {
        projects: 120,
        noise_rate: 0.0,
        seed: 6,
        ..Default::default()
    });
    let sim = CloudSim::new_azure();
    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    let mut tested = 0;
    for p in &corpus {
        let mut program = p.program.clone();
        if !zodiac_corpus::inject_kind(&mut rng, &mut program, "premium-gzrs") {
            continue;
        }
        let report = sim.deploy(&program);
        assert!(!report.outcome.is_success());
        // Fixing a storage-account attribute touches only the SA itself.
        assert_eq!(report.rollback_radius(), 1, "{}", p.name);
        tested += 1;
        if tested >= 3 {
            break;
        }
    }
    assert!(tested > 0, "corpus must contain storage accounts");
}

#[test]
fn slow_resources_let_independent_branches_finish() {
    // A project with a gateway (slow) and an independent VM (fast): if the
    // gateway fails, the VM has already deployed.
    let corpus = zodiac_corpus::generate(&CorpusConfig {
        projects: 400,
        noise_rate: 0.0,
        seed: 9,
        min_motifs: 2,
        max_motifs: 3,
        ..Default::default()
    });
    let sim = CloudSim::new_azure();
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    for p in &corpus {
        if !(p.motifs.contains(&"vpn_site") && p.motifs.contains(&"simple_vm")) {
            continue;
        }
        let mut program = p.program.clone();
        if !zodiac_corpus::inject_kind(&mut rng, &mut program, "basic-gw-active-active") {
            continue;
        }
        let report = sim.deploy(&program);
        assert!(!report.outcome.is_success());
        assert!(
            report
                .deployed
                .iter()
                .any(|r| r.rtype == "azurerm_linux_virtual_machine"),
            "{}: the independent VM deploys before the slow gateway fails; deployed: {:?}",
            p.name,
            report.deployed
        );
        return;
    }
    panic!("no project with both vpn_site and simple_vm motifs found");
}
