//! The tentpole invariant of the execution engine: validation through the
//! parallel, memoizing, fault-injected `DeployEngine` produces exactly the
//! same `R_v` as the direct, sequential `CloudSim` path.
//!
//! Three properties compose to make this hold (see `zodiac_deployer`):
//! canonical fingerprints make cache hits semantics-preserving, the retry
//! loop consumes every transient failure, and the final retry attempt runs
//! injector-free so verdicts are always the backend's own.

use serde_json::to_string;
use zodiac_cloud::CloudSim;
use zodiac_deployer::{DeployEngine, DeployOracle, DeployerConfig, FaultConfig, RetryPolicy};
use zodiac_mining::{mine, MiningConfig};
use zodiac_model::Program;
use zodiac_validation::{Scheduler, SchedulerConfig, ValidationOutcome};

fn corpus_150() -> Vec<Program> {
    zodiac_corpus::generate(&zodiac_corpus::CorpusConfig {
        projects: 150,
        noise_rate: 0.02,
        rare_option_rate: 0.004,
        ..Default::default()
    })
    .into_iter()
    .map(|p| p.program)
    .collect()
}

fn validate<D: DeployOracle>(oracle: &D, corpus: &[Program]) -> ValidationOutcome {
    let kb = zodiac_kb::azure_kb();
    let mining = mine(corpus, &kb, &MiningConfig::default());
    Scheduler::new(oracle, &kb, corpus, SchedulerConfig::default()).run(mining.checks)
}

/// The semantically meaningful outcome, serialized for deep comparison.
/// The trace is excluded because its deploy-telemetry fields intentionally
/// differ between an engine and a bare simulator.
fn summary(outcome: &ValidationOutcome) -> [String; 4] {
    [
        to_string(&outcome.validated).unwrap(),
        to_string(&outcome.false_positives).unwrap(),
        to_string(&outcome.unresolved).unwrap(),
        to_string(&outcome.groups).unwrap(),
    ]
}

#[test]
fn parallel_cached_faulted_engine_matches_sequential_simulator() {
    let corpus = corpus_150();

    let sequential = validate(&CloudSim::new_azure(), &corpus);

    let engine = DeployEngine::new(
        CloudSim::new_azure(),
        DeployerConfig {
            workers: 4,
            cache: true,
            // Aggressive transient rates so faults demonstrably fire and
            // the retry loop demonstrably absorbs them.
            faults: Some(FaultConfig {
                throttle_rate: 0.10,
                spurious_rate: 0.05,
                polling_timeout_rate: 0.05,
                ..FaultConfig::default()
            }),
            retry: RetryPolicy::default(),
            persistent_cache: None,
        },
    );
    let parallel = validate(&engine, &corpus);

    // R_v (with full deployment reports), the falsified set, the unresolved
    // set, and the indistinguishable groups are all byte-for-byte equal.
    assert_eq!(summary(&sequential), summary(&parallel));

    // The run actually exercised concurrency, memoization, and retries.
    let tel = engine.metrics();
    assert!(
        tel.counter("deploy.cache_hits") > 0,
        "memoization never hit: {tel:?}"
    );
    assert!(
        tel.counter("deploy.backend_deploys") < tel.counter("deploy.requests"),
        "cache must absorb backend work: {tel:?}"
    );
    assert!(
        tel.counter("deploy.transient_failures") > 0,
        "faults never fired: {tel:?}"
    );
    assert!(
        tel.counter("deploy.retries") > 0,
        "retries never ran: {tel:?}"
    );
}

#[test]
fn fault_schedule_is_deterministic_across_runs() {
    let corpus: Vec<Program> = corpus_150().into_iter().take(30).collect();
    let cfg = DeployerConfig {
        workers: 4,
        cache: false, // Every request reaches the fault layer.
        faults: Some(FaultConfig {
            throttle_rate: 0.2,
            spurious_rate: 0.1,
            polling_timeout_rate: 0.1,
            ..FaultConfig::default()
        }),
        retry: RetryPolicy::default(),
        persistent_cache: None,
    };
    let run = |cfg: DeployerConfig| {
        let engine = DeployEngine::new(CloudSim::new_azure(), cfg);
        let reports = engine.deploy_batch(&corpus);
        let tel = engine.metrics();
        (
            reports
                .iter()
                .map(|r| to_string(r).unwrap())
                .collect::<Vec<_>>(),
            tel.counter("deploy.transient_failures"),
            tel.counter("deploy.retries"),
            tel.counter("deploy.backoff_secs"),
        )
    };
    let a = run(cfg.clone());
    let b = run(cfg);
    // Same seed → byte-for-byte identical reports and identical fault
    // counters, regardless of worker scheduling.
    assert_eq!(a, b);
    assert!(
        a.1 > 0,
        "expected the fault schedule to fire at these rates"
    );
}
