//! End-to-end pipeline: corpus → mining → validation → counterexamples →
//! scanner, asserting the paper's qualitative results hold.

use zodiac::{run_pipeline, PipelineConfig};
use zodiac_corpus::CorpusConfig;
use zodiac_spec::parse_check;

fn small_pipeline() -> zodiac::PipelineResult {
    let mut cfg = PipelineConfig::evaluation();
    cfg.corpus.projects = 250;
    // A seed under which the 250-project corpus exercises all the canonical
    // ground-truth checks below (motif draws are corpus-seed dependent).
    cfg.corpus.seed = 0xC0FFEF;
    cfg.counterexample_projects = 120;
    run_pipeline(&cfg)
}

#[test]
fn pipeline_recovers_known_ground_truth_checks() {
    let result = small_pipeline();
    assert!(result.mining.hypothesized > result.mining.checks.len());
    assert!(
        result.final_checks.len() >= 20,
        "too few validated checks: {}",
        result.final_checks.len()
    );

    // Known paper checks the pipeline must rediscover (canonical matching).
    let expected = [
        "let r:SA in r.account_tier == 'Premium' => r.account_replication_type != 'GZRS'",
        "let r:VM in r.priority == 'Spot' => r.eviction_policy != null",
        "let r1:APPGW, r2:IP in conn(r1.frontend_ip_configuration.public_ip_address_id -> r2.id) => r2.sku == 'Standard'",
        "let r1:SUBNET, r2:VPC in conn(r1.virtual_network_name -> r2.name) => contain(r2.address_space, r1.address_prefixes)",
        "let r1:GW, r2:SUBNET in conn(r1.ip_configuration.subnet_id -> r2.id) => indegree(r2, !GW) == 0",
    ];
    for src in expected {
        let canon = parse_check(src).unwrap().canonical();
        assert!(
            result
                .final_checks
                .iter()
                .any(|v| v.mined.check.canonical() == canon),
            "pipeline must validate: {src}"
        );
    }

    // False positives were removed, and the trace converged.
    assert!(!result.validation.false_positives.is_empty());
    assert!(!result.validation.trace.iterations.is_empty());
    let last = result.validation.trace.iterations.last().unwrap();
    assert!(
        last.remaining <= result.mining.checks.len() / 10,
        "scheduler should nearly empty R_c: {} remaining",
        last.remaining
    );
}

#[test]
fn validated_checks_flag_real_misconfigurations() {
    let result = small_pipeline();
    let checks: Vec<_> = result
        .final_checks
        .iter()
        .map(|v| v.mined.check.clone())
        .collect();
    let kb = zodiac_kb::azure_kb();

    // A noisy wild corpus: injected misconfigurations should be caught.
    let wild = zodiac_corpus::generate(&CorpusConfig {
        projects: 150,
        seed: 0xFACADE,
        noise_rate: 0.15,
        ..Default::default()
    });
    let programs: Vec<_> = wild.iter().map(|p| p.program.clone()).collect();
    let report = zodiac::scan_corpus(&programs, &checks, &kb);
    let injected = wild.iter().filter(|p| p.injected_noise.is_some()).count();
    assert!(injected > 0);
    assert!(
        report.buggy_programs > 0,
        "scanner must flag some of the {injected} injected misconfigurations"
    );
    // And scanner hits imply actual deployment failures (high precision).
    let sim = zodiac_cloud::CloudSim::new_azure();
    let mut confirmed = 0usize;
    for (idx, _) in &report.violations {
        if !sim.deploys_ok(&programs[*idx]) {
            confirmed += 1;
        }
    }
    assert!(
        confirmed * 100 >= report.buggy_programs * 80,
        "{confirmed}/{} flagged programs actually fail to deploy",
        report.buggy_programs
    );
}

#[test]
fn counterexample_pass_examines_validated_checks() {
    let result = small_pipeline();
    // The pass ran (§5.6) and every demotion points into the validated set.
    assert!(result.counterexamples.examined > 0);
    for idx in &result.demoted {
        assert!(*idx < result.validation.validated.len());
    }
    assert_eq!(
        result.final_checks.len(),
        result.validation.validated.len() - result.demoted.len()
    );
}
