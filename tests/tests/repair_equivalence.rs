//! Differential repair test on the headline corpus: every program the
//! scanner flags against the validated check set gets repaired, the
//! repaired program scans clean against the same set, the repairs are
//! byte-deterministic across runs, and a warm persistent-deploy-cache run
//! re-verifies every candidate without touching the backend.

use std::path::Path;
use zodiac::scanner::scan_program;
use zodiac::PipelineConfig;
use zodiac_cloud::CloudSim;
use zodiac_deployer::{DeployEngine, DeployerConfig};
use zodiac_model::Program;
use zodiac_obs::Obs;
use zodiac_repair::{repair_program, RepairConfig, RepairOutcome};
use zodiac_spec::Check;

/// Mirrors `zodiac_bench::eval_config()` (see `headline_funnel.rs`).
fn eval_config() -> PipelineConfig {
    let mut cfg = PipelineConfig::evaluation();
    cfg.corpus.projects = 600;
    cfg.counterexample_projects = 300;
    cfg
}

/// One full repair sweep over the flagged programs. Returns, per flagged
/// program, the rendered edit list of its accepted repair.
fn repair_sweep(
    flagged: &[(usize, Program)],
    checks: &[Check],
    cache: &Path,
) -> (Vec<(usize, Vec<String>)>, u64) {
    let kb = zodiac_kb::azure_kb();
    let engine = DeployEngine::new(
        CloudSim::new_azure(),
        DeployerConfig {
            workers: 1,
            persistent_cache: Some(cache.to_path_buf()),
            ..Default::default()
        },
    );
    let cfg = RepairConfig::default();
    let mut repaired = Vec::new();
    for (idx, program) in flagged {
        let report = repair_program(program, checks, &kb, &engine, &cfg, &Obs::null());
        match &report.outcome {
            RepairOutcome::Accepted {
                program: fixed,
                edits,
            } => {
                // The repaired program scans clean against the full
                // validated set — repairing one violation must not smuggle
                // in another.
                let residual = scan_program(fixed, checks, &kb);
                assert!(
                    residual.is_empty(),
                    "project {idx}: repaired program still violates: {residual:?}"
                );
                repaired.push((*idx, edits.iter().map(|e| e.to_string()).collect()));
            }
            other => panic!("project {idx}: expected an accepted repair, got {other:?}"),
        }
    }
    engine.sync_persistent().expect("persist deploy verdicts");
    (repaired, engine.metrics().counter("deploy.backend_deploys"))
}

#[test]
fn scanner_flagged_corpus_repairs_cleanly_and_deterministically() {
    let cfg = eval_config();
    let result = zodiac::run_pipeline(&cfg);
    let checks: Vec<Check> = result
        .final_checks
        .iter()
        .map(|v| v.mined.check.clone())
        .collect();
    assert!(!checks.is_empty(), "pipeline must validate checks");

    let corpus: Vec<Program> = zodiac_corpus::generate(&cfg.corpus)
        .into_iter()
        .map(|p| p.program)
        .collect();
    let kb = zodiac_kb::azure_kb();
    let flagged: Vec<(usize, Program)> = corpus
        .iter()
        .enumerate()
        .filter(|(_, p)| !scan_program(p, &checks, &kb).is_empty())
        .map(|(i, p)| (i, p.clone()))
        .collect();
    // The 2% noise rate plants violations in a known slice of the corpus;
    // if nothing is flagged the test is vacuous.
    assert!(
        flagged.len() >= 5,
        "expected a two-digit flagged set, got {}",
        flagged.len()
    );

    let dir = std::env::temp_dir().join(format!("zodiac-repair-eq-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let cache = dir.join("deploys.json");

    // Cold run: every flagged program is repaired and re-scans clean.
    let (cold, cold_backend) = repair_sweep(&flagged, &checks, &cache);
    assert_eq!(cold.len(), flagged.len(), "every flagged program repaired");
    assert!(cold_backend > 0, "cold run must exercise the backend");

    // Warm run: identical edits byte-for-byte, and the persistent deploy
    // memo absorbs every candidate verdict — zero backend deploys.
    let (warm, warm_backend) = repair_sweep(&flagged, &checks, &cache);
    assert_eq!(cold, warm, "repairs must be byte-deterministic across runs");
    assert_eq!(
        warm_backend, 0,
        "warm --deploy-cache run must perform zero backend deploys"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
