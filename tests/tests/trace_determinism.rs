//! Determinism guard for the trace stream (schema v2).
//!
//! The provenance contract is that a pipeline run is replayable from its
//! trace: `zodiac explain --trace` and `zodiac report --trace` fold the
//! event stream into ledgers, so the stream itself must be a pure function
//! of the configuration. Two same-seed runs must produce byte-identical
//! span and lifecycle events once wall-clock fields (`ts`, `us`) are
//! stripped — same ids, same parents, same order, same attributes, same
//! lifecycle transitions.
//!
//! Single-worker engine only: with several workers the *interleaving* of
//! per-request deploy spans in the file is scheduling-dependent (the
//! lifecycle events stay ordered — the scheduler emits them after each
//! wave — but this guard pins the whole stream, so it runs at workers=1).

use std::io::{self, Write};
use std::sync::{Arc, Mutex, PoisonError};
use zodiac::PipelineConfig;
use zodiac_obs::{JsonLinesSink, Obs};

/// A `Write` handle appending to a shared buffer.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.0
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl SharedBuf {
    fn contents(&self) -> String {
        String::from_utf8(
            self.0
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .clone(),
        )
        .expect("trace is utf-8")
    }
}

/// Removes the wall-clock fields (`,"ts":N` and `,"us":N`) from one trace
/// line, leaving identity, structure, and attributes intact.
fn strip_timing(line: &str) -> String {
    let bytes = line.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        let rest = &bytes[i..];
        if rest.starts_with(b",\"ts\":") || rest.starts_with(b",\"us\":") {
            let mut j = i + 6;
            while j < bytes.len() && bytes[j].is_ascii_digit() {
                j += 1;
            }
            i = j;
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    String::from_utf8(out).expect("stripping ascii fields preserves utf-8")
}

fn traced_run(cfg: &PipelineConfig) -> String {
    let buf = SharedBuf::default();
    let sink = Arc::new(JsonLinesSink::new(Box::new(buf.clone())));
    let obs = Obs::single(sink.clone());
    let _ = zodiac::run_pipeline_obs(cfg, &obs);
    sink.flush().expect("flush in-memory trace");
    buf.contents()
}

#[test]
fn same_seed_runs_emit_identical_event_streams() {
    let mut cfg = PipelineConfig::evaluation();
    cfg.corpus.projects = 60;
    cfg.counterexample_projects = 30;
    cfg.counterexample_budget = 4;
    cfg.deployer.workers = 1;

    let a = traced_run(&cfg);
    let b = traced_run(&cfg);

    let a_lines: Vec<String> = a.lines().map(strip_timing).collect();
    let b_lines: Vec<String> = b.lines().map(strip_timing).collect();

    assert!(
        a_lines.len() > 100,
        "the trace must actually contain events (got {} lines)",
        a_lines.len()
    );
    assert_eq!(
        a_lines.len(),
        b_lines.len(),
        "same-seed runs emit the same number of events"
    );
    for (i, (la, lb)) in a_lines.iter().zip(&b_lines).enumerate() {
        assert_eq!(la, lb, "trace line {i} differs between same-seed runs");
    }

    // The stream carries both halves of the trace: structured spans with
    // identity, and per-candidate lifecycle events.
    assert!(a_lines.iter().any(|l| l.contains("\"event\":\"span\"")));
    assert!(a_lines
        .iter()
        .any(|l| l.contains("\"event\":\"lifecycle\"")));
    assert!(a_lines.iter().any(|l| l.contains("\"kind\":\"validated\"")));
}

#[test]
fn strip_timing_removes_only_wall_clock_fields() {
    let line = r#"{"event":"span","id":4,"parent":1,"tid":1,"path":"pipeline","ts":1042,"us":40812,"attrs":{"iter":3}}"#;
    assert_eq!(
        strip_timing(line),
        r#"{"event":"span","id":4,"parent":1,"tid":1,"path":"pipeline","attrs":{"iter":3}}"#
    );
    let lifecycle = r#"{"event":"lifecycle","fp":"00000000000000ab","ts":7,"kind":"demoted","reason":"counterexample"}"#;
    assert_eq!(
        strip_timing(lifecycle),
        r#"{"event":"lifecycle","fp":"00000000000000ab","kind":"demoted","reason":"counterexample"}"#
    );
}
