//! Pins the §5.1 headline funnel byte-for-byte.
//!
//! The evaluation corpus (seed `0xC0FFEE`, 600 projects, 2% noise, 0.4%
//! rare-option rate) is fully deterministic, so every stage count of the
//! mining → filtering → validation → counterexample funnel is an exact
//! number, recorded in `EXPERIMENTS.md`. Any drift — a mining template
//! change, a scheduler reordering, an instrumentation side effect — fails
//! this test and must be accompanied by an `EXPERIMENTS.md` refresh.

use zodiac::PipelineConfig;

/// Mirrors `zodiac_bench::eval_config()` (the bench crate is not a test
/// dependency; the config is the contract, restated here).
fn eval_config() -> PipelineConfig {
    let mut cfg = PipelineConfig::evaluation();
    cfg.corpus.projects = 600;
    cfg.counterexample_projects = 300;
    cfg
}

#[test]
fn headline_funnel_matches_experiments_md() {
    let cfg = eval_config();
    assert_eq!(cfg.corpus.seed, 0xC0FFEE, "the pinned corpus seed");
    assert_eq!(cfg.corpus.projects, 600, "the pinned corpus size");

    let result = zodiac::run_pipeline(&cfg);

    // Mining funnel (EXPERIMENTS.md §5.1).
    assert_eq!(result.corpus_projects, 600);
    assert_eq!(result.mining.hypothesized, 1932, "hypothesized checks");
    assert_eq!(
        result.mining.removed_by_confidence, 1019,
        "removed by the confidence filter"
    );
    assert_eq!(
        result.mining.removed_by_lift, 372,
        "removed by the lift filter"
    );
    assert_eq!(result.mining.llm_found, 63, "oracle-interpolated checks");
    assert_eq!(result.mining.llm_removed, 205, "oracle-rejected queries");
    assert_eq!(
        result.mining.checks.len(),
        361,
        "candidates into validation"
    );

    // Validation outcome.
    assert_eq!(result.validation.validated.len(), 88, "validated (raw)");
    assert_eq!(
        result.validation.validated_groups_as_one(),
        68,
        "validated (groups as one)"
    );
    assert_eq!(
        result.validation.false_positives.len(),
        273,
        "falsified during validation"
    );
    assert!(result.validation.unresolved.is_empty(), "R_c must empty");

    // Counterexample pass (§5.6) and the final set.
    assert_eq!(result.demoted.len(), 2, "demoted by counterexamples");
    assert_eq!(result.final_checks.len(), 86, "final check set");

    // Deployment-engine funnel. The request count is part of the
    // determinism contract; the backend/cache split is not (two workers can
    // miss the same fingerprint concurrently and both deploy), so only the
    // conservation law is pinned for it.
    let tel = result.deploy_metrics.expect("engine metrics present");
    assert_eq!(tel.counter("deploy.requests"), 395);
    assert_eq!(
        tel.counter("deploy.backend_deploys") + tel.counter("deploy.cache_hits"),
        tel.counter("deploy.requests"),
        "every request is either a cache hit or a backend deploy"
    );
    assert!(
        tel.counter("deploy.cache_hits") > 0,
        "memoization never hit"
    );
    assert_eq!(tel.counter("deploy.retries"), 0, "no faults configured");
}
