//! Differential guarantee for the re-architected validation pipeline:
//! wave-parallel scheduling (conflict-graph waves, batched deploys,
//! incremental solving) and the persistent deploy memo must be pure
//! performance features — every candidate lands in the same verdict set
//! (validated / falsified / unresolved) as one-at-a-time sequential
//! scheduling. Falsify *reasons* are deliberately excluded: a batched
//! probe may trip a different ground-truth rule first, which is benign.
//!
//! Runs on the default corpus seed `0xC0FFEE`.

use std::collections::BTreeSet;
use std::sync::Arc;
use zodiac_cloud::CloudSim;
use zodiac_deployer::{DeployEngine, DeployerConfig};
use zodiac_mining::{mine, MiningConfig};
use zodiac_model::Program;
use zodiac_obs::{MemoryRecorder, Obs};
use zodiac_validation::{Scheduler, SchedulerConfig, ValidationOutcome};

fn corpus() -> Vec<Program> {
    // Default config carries seed 0xC0FFEE.
    zodiac_corpus::generate(&zodiac_corpus::CorpusConfig {
        projects: 60,
        noise_rate: 0.02,
        ..Default::default()
    })
    .into_iter()
    .map(|p| p.program)
    .collect()
}

/// (validated, falsified, unresolved) candidate fingerprints.
fn verdict_sets(o: &ValidationOutcome) -> [BTreeSet<u64>; 3] {
    [
        o.validated
            .iter()
            .map(|v| v.mined.check.fingerprint())
            .collect(),
        o.false_positives
            .iter()
            .map(|f| f.mined.check.fingerprint())
            .collect(),
        o.unresolved.iter().map(|m| m.check.fingerprint()).collect(),
    ]
}

#[test]
fn wave_parallel_and_memo_match_sequential_verdicts() {
    let corpus = corpus();
    let kb = zodiac_kb::azure_kb();
    let sim = CloudSim::new_azure();
    let mining = mine(&corpus, &kb, &MiningConfig::default());
    assert!(!mining.checks.is_empty(), "nothing mined on seed 0xC0FFEE");

    // Sequential reference: waves disabled, candidates probed one by one.
    let sequential = Scheduler::new(
        &sim,
        &kb,
        &corpus,
        SchedulerConfig {
            wave_parallel: false,
            ..SchedulerConfig::default()
        },
    )
    .run(mining.checks.clone());
    let reference = verdict_sets(&sequential);
    assert!(!reference[0].is_empty(), "reference run validated nothing");

    // Wave-parallel against the bare simulator.
    let wave =
        Scheduler::new(&sim, &kb, &corpus, SchedulerConfig::default()).run(mining.checks.clone());
    assert_eq!(
        verdict_sets(&wave),
        reference,
        "wave-parallel scheduling changed a verdict set"
    );

    // Wave-parallel through a memo-backed worker engine, cold then warm:
    // the warm run replays every probe from disk and must not change a
    // verdict either.
    let memo = std::env::temp_dir().join(format!("zodiac-wave-eq-{}.log", std::process::id()));
    let _ = std::fs::remove_file(&memo);
    let run_with_memo = || {
        let rec = Arc::new(MemoryRecorder::new());
        let engine = DeployEngine::try_with_obs(
            CloudSim::new_azure(),
            DeployerConfig {
                workers: 2,
                persistent_cache: Some(memo.clone()),
                ..Default::default()
            },
            Obs::single(rec.clone()),
        )
        .expect("memo opens");
        let outcome = Scheduler::new(&engine, &kb, &corpus, SchedulerConfig::default())
            .run(mining.checks.clone());
        engine.sync_persistent().expect("memo syncs");
        (outcome, rec.snapshot())
    };

    let (cold, cold_tel) = run_with_memo();
    assert_eq!(
        verdict_sets(&cold),
        reference,
        "memo-backed cold run changed a verdict set"
    );
    assert!(cold_tel.counter("deploy.backend_deploys") > 0);
    assert!(cold_tel.counter("deploy.persistent_stores") > 0);

    let (warm, warm_tel) = run_with_memo();
    assert_eq!(
        verdict_sets(&warm),
        reference,
        "memo replay changed a verdict set"
    );
    assert!(warm_tel.counter("deploy.persistent_hits") > 0);
    assert_eq!(
        warm_tel.counter("deploy.backend_deploys"),
        0,
        "warm run must replay every probe from the memo"
    );

    let _ = std::fs::remove_file(&memo);
}
