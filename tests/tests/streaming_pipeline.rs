//! End-to-end shard/stream invariance: the full pipeline (corpus → sharded
//! mining → validation → counterexamples) must produce the same result
//! whether the corpus is materialised or streamed and however many mining
//! shards run (ISSUE 9). The mining-crate differential tests pin the
//! observation database; this pins everything downstream of it through the
//! public `PipelineConfig` surface — the exact path `zodiac mine --shards N
//! --stream` executes.

use zodiac::{run_pipeline, PipelineConfig, PipelineResult};
use zodiac_spec::Check;

fn config() -> PipelineConfig {
    let mut cfg = PipelineConfig::evaluation();
    cfg.corpus.projects = 120;
    cfg.corpus.seed = 0xC0FFEF;
    cfg.counterexample_projects = 60;
    cfg
}

fn final_checks(result: &PipelineResult) -> Vec<String> {
    result
        .final_checks
        .iter()
        .map(|v| {
            format!(
                "{} | c={:016x}",
                v.mined.check,
                v.mined.confidence.to_bits()
            )
        })
        .collect()
}

#[test]
fn streaming_sharded_pipeline_matches_batch() {
    let batch = run_pipeline(&config());
    let batch_set = final_checks(&batch);
    assert!(
        !batch_set.is_empty(),
        "batch pipeline validated nothing — comparison is vacuous"
    );

    // Sharded mining over the materialised corpus.
    let mut sharded_cfg = config();
    sharded_cfg.mining_shards = 5;
    let sharded = run_pipeline(&sharded_cfg);
    assert_eq!(final_checks(&sharded), batch_set);
    assert_eq!(sharded.corpus_projects, batch.corpus_projects);
    assert_eq!(sharded.demoted, batch.demoted);

    // Streaming corpus + sharded mining: at this scale the validation
    // prefix covers the whole corpus, so the runs must be byte-identical
    // end-to-end, demotions and all.
    let mut stream_cfg = config();
    stream_cfg.mining_shards = 3;
    stream_cfg.stream_corpus = true;
    let streamed = run_pipeline(&stream_cfg);
    assert_eq!(final_checks(&streamed), batch_set);
    assert_eq!(streamed.corpus_projects, batch.corpus_projects);
    assert_eq!(streamed.demoted, batch.demoted);
    assert_eq!(
        streamed.validation.false_positives.len(),
        batch.validation.false_positives.len()
    );
}

#[test]
fn validation_projects_caps_the_deployed_corpus() {
    let mut cfg = config();
    cfg.counterexample_projects = 0;
    cfg.stream_corpus = true;
    cfg.validation_projects = Some(40);
    let result = run_pipeline(&cfg);
    // Mining still sees the whole corpus; only validation's deployable
    // slice is capped, and the check set stays well-formed.
    assert_eq!(result.corpus_projects, 120);
    let checks: Vec<Check> = result
        .final_checks
        .iter()
        .map(|v| v.mined.check.clone())
        .collect();
    assert!(!checks.is_empty());
}
