//! Scheduler behaviour on the paper's §4.2 scenarios: location checks whose
//! negative tests conflict, resolved by partial order and indistinguishable
//! grouping.

use zodiac_cloud::CloudSim;
use zodiac_corpus::CorpusConfig;
use zodiac_mining::MinedCheck;
use zodiac_model::Program;
use zodiac_spec::parse_check;
use zodiac_validation::{Scheduler, SchedulerConfig};

fn corpus() -> Vec<Program> {
    zodiac_corpus::generate(&CorpusConfig {
        projects: 150,
        noise_rate: 0.0,
        seed: 21,
        ..Default::default()
    })
    .into_iter()
    .map(|p| p.program)
    .collect()
}

fn candidates(srcs: &[&str]) -> Vec<MinedCheck> {
    srcs.iter()
        .map(|src| MinedCheck {
            check: parse_check(src).expect("valid check"),
            family: "scenario",
            support: 20,
            confidence: 1.0,
            lift: None,
            interp: None,
        })
        .collect()
}

/// The §4.2 running example: three location checks along NIC → VPC and
/// VM → NIC/VPC paths. All three are true in the simulated cloud; the
/// scheduler must validate all of them despite their test-case conflicts.
#[test]
fn location_check_trio_all_validate() {
    let corpus = corpus();
    let sim = CloudSim::new_azure();
    let kb = zodiac_kb::azure_kb();
    let checks = candidates(&[
        "let r1:NIC, r2:VPC in path(r1 -> r2) => r1.location == r2.location",
        "let r1:VM, r2:NIC in path(r1 -> r2) => r1.location == r2.location",
        "let r1:VM, r2:VPC in path(r1 -> r2) => r1.location == r2.location",
    ]);
    let scheduler = Scheduler::new(&sim, &kb, &corpus, SchedulerConfig::default());
    let outcome = scheduler.run(checks);
    assert_eq!(
        outcome.validated.len(),
        3,
        "all three location checks are true positives; falsified: {:?}, unresolved: {:?}",
        outcome
            .false_positives
            .iter()
            .map(|f| (f.mined.check.to_string(), f.reason))
            .collect::<Vec<_>>(),
        outcome
            .unresolved
            .iter()
            .map(|u| u.check.to_string())
            .collect::<Vec<_>>()
    );
}

/// Scenario II of §4.2: when one of the checks is a false positive, the FP
/// pass removes it and the rest validate cleanly.
#[test]
fn false_positive_among_true_ones_is_removed() {
    let corpus = corpus();
    let sim = CloudSim::new_azure();
    let kb = zodiac_kb::azure_kb();
    let checks = candidates(&[
        // True.
        "let r1:VM, r2:NIC in conn(r1.network_interface_ids -> r2.id) => r1.location == r2.location",
        // False: nothing requires VMs to avoid Standard_B1s.
        "let r:VM in r.priority == 'Regular' => r.size != 'Standard_B1s'",
    ]);
    let scheduler = Scheduler::new(&sim, &kb, &corpus, SchedulerConfig::default());
    let outcome = scheduler.run(checks);
    assert_eq!(outcome.validated.len(), 1, "only the true check validates");
    assert_eq!(outcome.false_positives.len(), 1);
    assert!(
        outcome.validated[0]
            .mined
            .check
            .to_string()
            .contains("location"),
        "the location check is the survivor"
    );
}

/// Negative reports of validated checks must be deployment failures.
#[test]
fn validated_checks_carry_failing_negative_reports() {
    let corpus = corpus();
    let sim = CloudSim::new_azure();
    let kb = zodiac_kb::azure_kb();
    let checks = candidates(&[
        "let r:SA in r.account_tier == 'Premium' => r.account_replication_type != 'GZRS'",
        "let r:VM in r.priority == 'Spot' => r.eviction_policy != null",
    ]);
    let scheduler = Scheduler::new(&sim, &kb, &corpus, SchedulerConfig::default());
    let outcome = scheduler.run(checks);
    assert_eq!(
        outcome.validated.len(),
        2,
        "{:?}",
        outcome
            .false_positives
            .iter()
            .map(|f| (f.mined.check.to_string(), f.reason))
            .collect::<Vec<_>>()
    );
    for v in &outcome.validated {
        assert!(
            !v.negative_report.outcome.is_success(),
            "negative test must fail for {}",
            v.mined.check
        );
        assert!(v.negative_size > 0);
    }
}

/// Indistinguishable equivalents validate together; disabling O3 stalls.
#[test]
fn indistinguishable_pair_requires_grouping() {
    let corpus = corpus();
    let sim = CloudSim::new_azure();
    let kb = zodiac_kb::azure_kb();
    // Two logically equivalent phrasings over a two-value domain: any test
    // violating one violates the other.
    let pair = &[
        "let r:IP in r.sku == 'Standard' => r.allocation_method == 'Static'",
        "let r:IP in r.sku == 'Standard' => r.allocation_method != 'Dynamic'",
    ];
    let with_grouping =
        Scheduler::new(&sim, &kb, &corpus, SchedulerConfig::default()).run(candidates(pair));
    assert_eq!(
        with_grouping.validated.len(),
        2,
        "grouping validates both: unresolved {:?}",
        with_grouping
            .unresolved
            .iter()
            .map(|u| u.check.to_string())
            .collect::<Vec<_>>()
    );
    assert!(with_grouping.validated.iter().any(|v| v.via_group));
    // Counted as one by the paper's convention.
    assert_eq!(with_grouping.validated_groups_as_one(), 1);

    let without = Scheduler::new(
        &sim,
        &kb,
        &corpus,
        SchedulerConfig {
            handle_indistinguishable: false,
            ..Default::default()
        },
    )
    .run(candidates(pair));
    assert!(
        !without.unresolved.is_empty(),
        "without O3 the pair stalls (Figure 8b)"
    );
}

/// Conflict resolution must not depend on the order candidates arrive in:
/// the scheduler canonicalises its work list, so any permutation of the
/// same candidate set produces the same validated / falsified partition.
#[test]
fn outcome_is_stable_under_candidate_permutation() {
    let corpus = corpus();
    let sim = CloudSim::new_azure();
    let kb = zodiac_kb::azure_kb();
    let srcs = [
        "let r1:NIC, r2:VPC in path(r1 -> r2) => r1.location == r2.location",
        "let r1:VM, r2:NIC in path(r1 -> r2) => r1.location == r2.location",
        "let r1:VM, r2:VPC in path(r1 -> r2) => r1.location == r2.location",
        "let r:VM in r.priority == 'Spot' => r.eviction_policy != null",
        "let r:SA in r.account_tier == 'Premium' => r.account_replication_type != 'GZRS'",
        // A false positive, so the FP path is exercised under permutation too.
        "let r:VM in r.priority == 'Regular' => r.size != 'Standard_B1s'",
    ];

    let fingerprint = |outcome: &zodiac_validation::ValidationOutcome| {
        let mut validated: Vec<String> = outcome
            .validated
            .iter()
            .map(|v| v.mined.check.canonical())
            .collect();
        validated.sort();
        let mut falsified: Vec<(String, String)> = outcome
            .false_positives
            .iter()
            .map(|f| (f.mined.check.canonical(), format!("{:?}", f.reason)))
            .collect();
        falsified.sort();
        let mut unresolved: Vec<String> = outcome
            .unresolved
            .iter()
            .map(|u| u.check.canonical())
            .collect();
        unresolved.sort();
        (validated, falsified, unresolved)
    };

    let baseline = fingerprint(
        &Scheduler::new(&sim, &kb, &corpus, SchedulerConfig::default()).run(candidates(&srcs)),
    );

    // Reversed and rotated permutations of the same candidate set.
    let mut reversed = srcs;
    reversed.reverse();
    let mut rotated = srcs;
    rotated.rotate_left(2);
    for perm in [&reversed, &rotated] {
        let outcome =
            Scheduler::new(&sim, &kb, &corpus, SchedulerConfig::default()).run(candidates(perm));
        assert_eq!(
            baseline,
            fingerprint(&outcome),
            "validated/falsified partition changed under permutation {perm:?}"
        );
    }
}

/// A candidate with no positive case anywhere in the corpus (its condition
/// is never witnessed and cannot be synthesised) must be falsified as
/// `NoPositiveCase` — and must never appear in the validated set.
#[test]
fn candidate_without_positive_case_is_never_validated() {
    let corpus = corpus();
    let sim = CloudSim::new_azure();
    let kb = zodiac_kb::azure_kb();
    // Storage accounts never reference VMs, so this path condition has no
    // witness anywhere in the corpus — and multi-binding conditions are
    // outside the positive-case synthesiser's repertoire.
    let phantom = "let r1:SA, r2:VM in path(r1 -> r2) => r1.location == r2.location";
    let checks = candidates(&[
        phantom,
        "let r:VM in r.priority == 'Spot' => r.eviction_policy != null",
    ]);
    let outcome = Scheduler::new(&sim, &kb, &corpus, SchedulerConfig::default()).run(checks);
    let phantom_canonical = parse_check(phantom).unwrap().canonical();
    assert!(
        !outcome
            .validated
            .iter()
            .any(|v| v.mined.check.canonical() == phantom_canonical),
        "a check whose positive test cannot be built must not validate"
    );
    let fp = outcome
        .false_positives
        .iter()
        .find(|f| f.mined.check.canonical() == phantom_canonical)
        .expect("the phantom check is falsified");
    assert_eq!(fp.reason, zodiac_validation::FalsifyReason::NoPositiveCase);
    // The companion true check is unaffected.
    assert_eq!(outcome.validated.len(), 1);
}
