//! Corpus ↔ simulator contract: clean projects deploy, noisy ones fail.

use zodiac_cloud::{CloudSim, DeployOutcome};
use zodiac_corpus::{generate, CorpusConfig};

#[test]
fn clean_corpus_deploys_successfully() {
    let corpus = generate(&CorpusConfig {
        projects: 120,
        noise_rate: 0.0,
        seed: 7,
        ..Default::default()
    });
    let sim = CloudSim::new_azure();
    let mut failures = Vec::new();
    for p in &corpus {
        let report = sim.deploy(&p.program);
        if let DeployOutcome::Failure {
            rule_id, message, ..
        } = &report.outcome
        {
            failures.push(format!("{} [{:?}]: {rule_id}: {message}", p.name, p.motifs));
        }
    }
    assert!(
        failures.is_empty(),
        "{} clean projects failed to deploy:\n{}",
        failures.len(),
        failures.join("\n")
    );
}

#[test]
fn injected_noise_causes_deployment_failures() {
    let corpus = generate(&CorpusConfig {
        projects: 120,
        noise_rate: 1.0,
        seed: 11,
        ..Default::default()
    });
    let sim = CloudSim::new_azure();
    let injected: Vec<_> = corpus
        .iter()
        .filter(|p| p.injected_noise.is_some())
        .collect();
    assert!(injected.len() > 60, "too few injected: {}", injected.len());
    let mut silent = Vec::new();
    for p in &injected {
        if sim.deploys_ok(&p.program) {
            silent.push(format!("{}: {:?}", p.name, p.injected_noise));
        }
    }
    // Every injector is designed to violate a ground-truth rule.
    assert!(
        silent.is_empty(),
        "{} noisy projects deployed cleanly:\n{}",
        silent.len(),
        silent.join("\n")
    );
}
