//! Integration tests for the Zodiac workspace live in `tests/tests/`.
