//! TFLint-style linting.
//!
//! TFLint validates individual attribute values (available skus, regions)
//! and raises best-practice warnings, working on HCL source — it "does not
//! reason across different attributes or resources, and is thus incapable of
//! handling any checks mined by Zodiac" (§5.2). Because it only accepts
//! HCL, feeding it the JSON-plan negative test cases is a format mismatch;
//! [`TfLint::check_hcl`] is the honest interface, and the [`IacChecker`]
//! impl goes through the HCL printer to mimic that round trip.

use crate::{Finding, IacChecker};
use zodiac_kb::{KnowledgeBase, ValueFormat};
use zodiac_model::{Program, Value};

/// The linter.
pub struct TfLint {
    kb: KnowledgeBase,
}

impl TfLint {
    /// Creates a linter with the Azure ruleset.
    pub fn new_azure() -> Self {
        TfLint {
            kb: zodiac_kb::azure_kb(),
        }
    }

    /// Lints HCL source text (TFLint's only input format).
    pub fn check_hcl(&self, source: &str) -> Result<Vec<Finding>, zodiac_hcl::HclError> {
        let program = zodiac_hcl::compile(source)?;
        Ok(self.lint(&program))
    }

    fn lint(&self, program: &Program) -> Vec<Finding> {
        let mut out = Vec::new();
        for r in program.resources() {
            let Some(schema) = self.kb.resource(&r.rtype) else {
                continue;
            };
            // Per-attribute enum validation — the limit of TFLint's
            // reasoning.
            for attr in schema.attrs.values() {
                let segs: Vec<String> = attr.path.split('.').map(str::to_string).collect();
                for v in zodiac_spec::eval::resolve_multi(r, &segs) {
                    if let (ValueFormat::Enum { values, .. }, Value::Str(s)) = (&attr.format, &v) {
                        if !values.iter().any(|x| x == s) {
                            out.push(Finding {
                                tool: "tflint",
                                rule: format!("azurerm_invalid_{}", attr.path.replace('.', "_")),
                                resource: r.id(),
                                message: format!("\"{s}\" is an invalid value for {}", attr.path),
                                deployment_relevant: true,
                            });
                        }
                    }
                }
            }
            // Best-practice naming warning.
            if let Some(name) = r.get_attr("name").and_then(Value::as_str) {
                if name.contains('_') {
                    out.push(Finding {
                        tool: "tflint",
                        rule: "naming-convention".into(),
                        resource: r.id(),
                        message: "resource names should use hyphens, not underscores".into(),
                        deployment_relevant: false,
                    });
                }
            }
        }
        out
    }
}

impl IacChecker for TfLint {
    fn name(&self) -> &'static str {
        "tflint"
    }

    fn check(&self, program: &Program) -> Vec<Finding> {
        // Round-trip through HCL, as the real tool would require.
        let hcl = zodiac_hcl::to_hcl(program);
        self.check_hcl(&hcl).unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lints_invalid_enum_from_hcl() {
        let src = r#"
resource "azurerm_public_ip" "ip" {
  name              = "ip1"
  location          = "eastus"
  allocation_method = "Sometimes"
}
"#;
        let lint = TfLint::new_azure();
        let findings = lint.check_hcl(src).unwrap();
        assert!(findings
            .iter()
            .any(|f| f.rule.contains("allocation_method")));
    }

    #[test]
    fn cannot_catch_inter_resource_checks() {
        let src = r#"
resource "azurerm_network_interface" "nic" {
  name     = "n"
  location = "westus"
}
resource "azurerm_linux_virtual_machine" "vm" {
  name                  = "v"
  location              = "eastus"
  network_interface_ids = [azurerm_network_interface.nic.id]
}
"#;
        let lint = TfLint::new_azure();
        let findings = lint.check_hcl(src).unwrap();
        assert!(
            findings.iter().all(|f| !f.deployment_relevant),
            "TFLint must not see the region mismatch: {findings:?}"
        );
    }

    #[test]
    fn naming_warning() {
        let src = "resource \"azurerm_virtual_network\" \"v\" {\n  name = \"bad_name\"\n}";
        let lint = TfLint::new_azure();
        let findings = lint.check_hcl(src).unwrap();
        assert!(findings.iter().any(|f| f.rule == "naming-convention"));
    }
}
