//! Baseline IaC checkers (§5.2, Table 4).
//!
//! Behavioural reimplementations of the tool classes Zodiac is compared
//! against:
//!
//! * [`NativeValidate`] — Terraform's `validate`: provider-schema
//!   conformance (required attributes, enum values, simple attribute
//!   conflicts). Catches *syntactic* problems and a sliver of semantic ones.
//! * [`TfLint`] — per-attribute enum/value linting plus best-practice
//!   warnings; operates on HCL source only (the format mismatch the paper
//!   notes) and never reasons across attributes or resources.
//! * [`SecurityChecker`] — the Checkov / TFSec / Regula / TFComp family:
//!   hand-written security/compliance policies over compiled plans. Each
//!   profile enables a different subset of the shared policy library,
//!   mirroring the tools' relative coverage.
//!
//! None of these can express Zodiac's inter-resource deployment checks —
//! which is precisely the Table 4 result.

pub mod native;
pub mod security;
pub mod tflint;

pub use native::NativeValidate;
pub use security::{SecurityChecker, SecurityProfile};
pub use tflint::TfLint;

use zodiac_model::{Program, ResourceId};

/// A finding reported by a baseline checker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Tool that produced the finding.
    pub tool: &'static str,
    /// Rule identifier.
    pub rule: String,
    /// The offending resource.
    pub resource: ResourceId,
    /// Human-readable message.
    pub message: String,
    /// True if the finding corresponds to an actual deployment problem
    /// (rather than style/security advice) — the numerator of Table 4's
    /// *precision*.
    pub deployment_relevant: bool,
}

/// Common interface over the baseline tools.
pub trait IacChecker {
    /// The tool's display name.
    fn name(&self) -> &'static str;

    /// Checks a compiled program.
    fn check(&self, program: &Program) -> Vec<Finding>;
}

/// Prevalence/precision aggregation for Table 4.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ToolStats {
    /// Inputs examined.
    pub inputs: usize,
    /// Inputs with at least one finding.
    pub flagged: usize,
    /// Findings total.
    pub findings: usize,
    /// Findings marked deployment-relevant.
    pub relevant_findings: usize,
    /// Flagged inputs where at least one finding is deployment-relevant.
    pub relevant_flagged: usize,
}

impl ToolStats {
    /// Percentage of inputs with reported issues.
    pub fn prevalence(&self) -> f64 {
        if self.inputs == 0 {
            0.0
        } else {
            100.0 * self.flagged as f64 / self.inputs as f64
        }
    }

    /// Percentage of flagged inputs whose findings point at real deployment
    /// problems.
    pub fn precision(&self) -> f64 {
        if self.flagged == 0 {
            0.0
        } else {
            100.0 * self.relevant_flagged as f64 / self.flagged as f64
        }
    }

    /// Folds one program's findings into the aggregate.
    pub fn record(&mut self, findings: &[Finding]) {
        self.inputs += 1;
        if !findings.is_empty() {
            self.flagged += 1;
            if findings.iter().any(|f| f.deployment_relevant) {
                self.relevant_flagged += 1;
            }
        }
        self.findings += findings.len();
        self.relevant_findings += findings.iter().filter(|f| f.deployment_relevant).count();
    }
}
