//! The security-checker family: Checkov, TFSec, Regula, TFComp.
//!
//! These tools scan compiled plans for security and compliance policy
//! violations. They share a policy library; each profile enables the subset
//! reflecting the real tools' relative coverage (Checkov's large registry
//! drives its 66% prevalence in Table 4; TFComp's handful of BDD rules its
//! 3.9%). None of the policies target deployment failures, so their
//! `deployment_relevant` flag is always false.

use crate::{Finding, IacChecker};
use zodiac_graph::ResourceGraph;
use zodiac_model::{Program, Value};

/// Which tool's rule subset to apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SecurityProfile {
    /// Checkov: the broadest registry.
    Checkov,
    /// TFSec: a focused security set.
    TfSec,
    /// Regula (OPA-based): compliance-leaning subset.
    Regula,
    /// terraform-compliance: a small BDD rule set.
    TfComp,
}

impl SecurityProfile {
    fn rules(&self) -> &'static [SecurityRule] {
        use SecurityRule::*;
        match self {
            SecurityProfile::Checkov => &[
                VmPasswordAuth,
                SshOpenToWorld,
                AllowAllInbound,
                PublicContainer,
                SubnetWithoutNsg,
                BasicPublicIp,
                KvNoPurgeProtection,
                DefaultRouteToInternet,
                VmWithPublicIp,
                GwBasicSku,
            ],
            SecurityProfile::TfSec => &[
                VmPasswordAuth,
                SshOpenToWorld,
                AllowAllInbound,
                KvNoPurgeProtection,
            ],
            SecurityProfile::Regula => &[
                VmPasswordAuth,
                SshOpenToWorld,
                PublicContainer,
                KvNoPurgeProtection,
                DefaultRouteToInternet,
            ],
            SecurityProfile::TfComp => &[SshOpenToWorld, PublicContainer],
        }
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            SecurityProfile::Checkov => "checkov",
            SecurityProfile::TfSec => "tfsec",
            SecurityProfile::Regula => "regula",
            SecurityProfile::TfComp => "tfcomp",
        }
    }
}

/// The shared security-policy library.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SecurityRule {
    /// VM uses password authentication.
    VmPasswordAuth,
    /// Security rule admits SSH (22) from any source.
    SshOpenToWorld,
    /// Security rule allows all inbound traffic.
    AllowAllInbound,
    /// Storage container is publicly readable.
    PublicContainer,
    /// Subnet lacks an NSG association.
    SubnetWithoutNsg,
    /// Public IP uses the Basic sku.
    BasicPublicIp,
    /// Key vault lacks purge protection.
    KvNoPurgeProtection,
    /// Route table sends 0.0.0.0/0 straight to the Internet.
    DefaultRouteToInternet,
    /// VM NIC is directly attached to a public IP.
    VmWithPublicIp,
    /// Basic-sku VPN gateways are discouraged.
    GwBasicSku,
}

/// A profile-parameterised security checker.
pub struct SecurityChecker {
    profile: SecurityProfile,
}

impl SecurityChecker {
    /// Creates a checker for a tool profile.
    pub fn new(profile: SecurityProfile) -> Self {
        SecurityChecker { profile }
    }
}

impl IacChecker for SecurityChecker {
    fn name(&self) -> &'static str {
        self.profile.name()
    }

    fn check(&self, program: &Program) -> Vec<Finding> {
        let graph = ResourceGraph::build(program.clone());
        let mut out = Vec::new();
        let tool = self.profile.name();
        let mut push = |rule: &str, resource: zodiac_model::ResourceId, message: String| {
            out.push(Finding {
                tool,
                rule: rule.to_string(),
                resource,
                message,
                deployment_relevant: false,
            });
        };
        for rule in self.profile.rules() {
            match rule {
                SecurityRule::VmPasswordAuth => {
                    for r in program.of_type("azurerm_linux_virtual_machine") {
                        let disabled = r
                            .get_attr("disable_password_authentication")
                            .and_then(Value::as_bool)
                            .unwrap_or(true);
                        if !disabled {
                            push(
                                "vm-password-auth",
                                r.id(),
                                "password authentication is insecure; use SSH keys".into(),
                            );
                        }
                    }
                }
                SecurityRule::SshOpenToWorld | SecurityRule::AllowAllInbound => {
                    for r in program.of_type("azurerm_network_security_group") {
                        // A single block compiles to a map, repeated blocks
                        // to a list of maps.
                        let blocks: Vec<&std::collections::BTreeMap<String, Value>> = match r
                            .get_attr("security_rule")
                        {
                            Some(Value::List(l)) => l.iter().filter_map(Value::as_map).collect(),
                            Some(Value::Map(m)) => vec![m],
                            _ => continue,
                        };
                        for sec in blocks {
                            let get = |k: &str| sec.get(k).and_then(Value::as_str).unwrap_or("");
                            let open_source = get("source_address_prefix") == "*"
                                || get("source_address_prefix") == "0.0.0.0/0";
                            let inbound = get("direction") == "Inbound";
                            let allow = get("access") == "Allow";
                            if !inbound || !allow || !open_source {
                                continue;
                            }
                            let port = get("destination_port_range");
                            if *rule == SecurityRule::SshOpenToWorld
                                && (port == "22" || port == "*")
                            {
                                push(
                                    "ssh-open-to-world",
                                    r.id(),
                                    "SSH reachable from the public internet".into(),
                                );
                            }
                            if *rule == SecurityRule::AllowAllInbound && port == "*" {
                                push(
                                    "allow-all-inbound",
                                    r.id(),
                                    "rule allows all inbound traffic".into(),
                                );
                            }
                        }
                    }
                }
                SecurityRule::PublicContainer => {
                    for r in program.of_type("azurerm_storage_container") {
                        let access = r
                            .get_attr("container_access_type")
                            .and_then(Value::as_str)
                            .unwrap_or("private");
                        if access != "private" {
                            push(
                                "public-container",
                                r.id(),
                                format!("container access type {access:?} exposes data"),
                            );
                        }
                    }
                }
                SecurityRule::SubnetWithoutNsg => {
                    for idx in graph.nodes_of_type("azurerm_subnet") {
                        let r = graph.resource(idx);
                        // Reserved subnets cannot carry NSGs.
                        let name = r.get_attr("name").and_then(Value::as_str).unwrap_or("");
                        if name.starts_with("Gateway")
                            || name.starts_with("AzureFirewall")
                            || name.starts_with("AzureBastion")
                        {
                            continue;
                        }
                        let has_nsg = graph.in_edges(idx).any(|e| {
                            graph.resource(e.src).rtype
                                == "azurerm_subnet_network_security_group_association"
                        });
                        if !has_nsg {
                            push(
                                "subnet-without-nsg",
                                r.id(),
                                "subnet has no network security group".into(),
                            );
                        }
                    }
                }
                SecurityRule::BasicPublicIp => {
                    for r in program.of_type("azurerm_public_ip") {
                        let sku = r.get_attr("sku").and_then(Value::as_str).unwrap_or("Basic");
                        if sku == "Basic" {
                            push(
                                "basic-public-ip",
                                r.id(),
                                "Basic sku public IPs lack zone resilience".into(),
                            );
                        }
                    }
                }
                SecurityRule::KvNoPurgeProtection => {
                    for r in program.of_type("azurerm_key_vault") {
                        let protected = r
                            .get_attr("purge_protection_enabled")
                            .and_then(Value::as_bool)
                            .unwrap_or(false);
                        if !protected {
                            push(
                                "kv-no-purge-protection",
                                r.id(),
                                "key vault purge protection disabled".into(),
                            );
                        }
                    }
                }
                SecurityRule::DefaultRouteToInternet => {
                    for r in program.of_type("azurerm_route") {
                        let prefix = r
                            .get_attr("address_prefix")
                            .and_then(Value::as_str)
                            .unwrap_or("");
                        let hop = r
                            .get_attr("next_hop_type")
                            .and_then(Value::as_str)
                            .unwrap_or("");
                        if prefix == "0.0.0.0/0" && hop == "Internet" {
                            push(
                                "default-route-to-internet",
                                r.id(),
                                "default route bypasses inspection".into(),
                            );
                        }
                    }
                }
                SecurityRule::VmWithPublicIp => {
                    for idx in graph.nodes_of_type("azurerm_network_interface") {
                        let has_pip = graph
                            .out_edges(idx)
                            .any(|e| graph.resource(e.dst).rtype == "azurerm_public_ip");
                        let on_vm = graph.in_edges(idx).any(|e| {
                            graph.resource(e.src).rtype == "azurerm_linux_virtual_machine"
                        });
                        if has_pip && on_vm {
                            push(
                                "vm-with-public-ip",
                                graph.resource(idx).id(),
                                "VM directly exposed via public IP".into(),
                            );
                        }
                    }
                }
                SecurityRule::GwBasicSku => {
                    for r in program.of_type("azurerm_virtual_network_gateway") {
                        if r.get_attr("sku").and_then(Value::as_str) == Some("Basic") {
                            push(
                                "gw-basic-sku",
                                r.id(),
                                "Basic gateways are not recommended for production".into(),
                            );
                        }
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zodiac_model::Resource;

    fn insecure_program() -> Program {
        let mut sg = Resource::new("azurerm_network_security_group", "sg").with("name", "sg");
        sg.attrs.insert(
            "security_rule".into(),
            Value::List(vec![Value::Map(
                [
                    ("name".to_string(), Value::s("ssh")),
                    ("direction".to_string(), Value::s("Inbound")),
                    ("access".to_string(), Value::s("Allow")),
                    ("protocol".to_string(), Value::s("Tcp")),
                    ("priority".to_string(), Value::Int(100)),
                    ("source_address_prefix".to_string(), Value::s("*")),
                    ("destination_port_range".to_string(), Value::s("22")),
                ]
                .into_iter()
                .collect(),
            )]),
        );
        Program::new()
            .with(sg)
            .with(
                Resource::new("azurerm_linux_virtual_machine", "vm")
                    .with("admin_password", "pw")
                    .with("disable_password_authentication", false),
            )
            .with(
                Resource::new("azurerm_storage_container", "c")
                    .with("container_access_type", "blob"),
            )
    }

    #[test]
    fn checkov_flags_more_than_tfcomp() {
        let p = insecure_program();
        let checkov = SecurityChecker::new(SecurityProfile::Checkov).check(&p);
        let tfcomp = SecurityChecker::new(SecurityProfile::TfComp).check(&p);
        assert!(checkov.len() > tfcomp.len());
        assert!(checkov.iter().any(|f| f.rule == "ssh-open-to-world"));
        assert!(checkov.iter().any(|f| f.rule == "vm-password-auth"));
        assert!(checkov.iter().any(|f| f.rule == "public-container"));
    }

    #[test]
    fn security_findings_are_not_deployment_relevant() {
        let p = insecure_program();
        for f in SecurityChecker::new(SecurityProfile::Checkov).check(&p) {
            assert!(!f.deployment_relevant);
        }
    }

    #[test]
    fn clean_program_produces_nothing_for_tfcomp() {
        let p =
            Program::new().with(Resource::new("azurerm_virtual_network", "v").with("name", "x"));
        assert!(SecurityChecker::new(SecurityProfile::TfComp)
            .check(&p)
            .is_empty());
    }
}
