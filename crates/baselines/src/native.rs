//! Terraform-native `validate` reimplementation.
//!
//! Matches programs against the provider schema JSON: required attributes,
//! enum domains, type mismatches, and the handful of attribute conflicts
//! providers declare (e.g. a Linux VM needs a password *or* SSH key).
//! These checks run at the configuration stage — they are the 11.74% of
//! Table 4, and only a third of their hits are true semantic violations.

use crate::{Finding, IacChecker};
use zodiac_kb::{AttrKind, KnowledgeBase, ValueFormat};
use zodiac_model::{Program, Resource, Value};

/// The native validator.
pub struct NativeValidate {
    kb: KnowledgeBase,
}

impl NativeValidate {
    /// Creates a validator over the Azure provider schema.
    pub fn new_azure() -> Self {
        NativeValidate {
            kb: zodiac_kb::azure_kb(),
        }
    }

    fn check_resource(&self, r: &Resource, out: &mut Vec<Finding>) {
        let Some(schema) = self.kb.resource(&r.rtype) else {
            out.push(Finding {
                tool: "native",
                rule: "unknown-resource-type".into(),
                resource: r.id(),
                message: format!("unsupported resource type {}", r.rtype),
                deployment_relevant: true,
            });
            return;
        };
        // Required top-level attributes.
        for attr in schema.attrs.values() {
            if attr.kind == AttrKind::Required
                && !attr.path.contains('.')
                && r.get_attr(&attr.path).is_none()
            {
                out.push(Finding {
                    tool: "native",
                    rule: "missing-required".into(),
                    resource: r.id(),
                    message: format!("missing required argument {}", attr.path),
                    deployment_relevant: true,
                });
            }
        }
        // Enum domains / int ranges on leaf values.
        for attr in schema.attrs.values() {
            let segs: Vec<String> = attr.path.split('.').map(str::to_string).collect();
            for v in zodiac_spec::eval::resolve_multi(r, &segs) {
                match (&attr.format, &v) {
                    (ValueFormat::Enum { values, .. }, Value::Str(s))
                        if !values.iter().any(|x| x == s) =>
                    {
                        out.push(Finding {
                            tool: "native",
                            rule: "invalid-enum".into(),
                            resource: r.id(),
                            message: format!(
                                "expected {} to be one of {values:?}, got {s:?}",
                                attr.path
                            ),
                            deployment_relevant: true,
                        });
                    }
                    (ValueFormat::IntRange { min, max }, Value::Int(n)) if n < min || n > max => {
                        out.push(Finding {
                            tool: "native",
                            rule: "out-of-range".into(),
                            resource: r.id(),
                            message: format!("{} must be in [{min}, {max}]", attr.path),
                            deployment_relevant: true,
                        });
                    }
                    _ => {}
                }
            }
        }
        // Declared attribute conflicts (style findings, not deploy-relevant):
        // a Linux VM without password must allow key auth.
        if r.rtype == "azurerm_linux_virtual_machine" {
            let has_password = r
                .get_attr("admin_password")
                .map(|v| !v.is_null())
                .unwrap_or(false);
            let password_disabled = r
                .get_attr("disable_password_authentication")
                .and_then(Value::as_bool)
                .unwrap_or(true);
            if has_password && password_disabled {
                out.push(Finding {
                    tool: "native",
                    rule: "conflicting-auth".into(),
                    resource: r.id(),
                    message: "admin_password set while password authentication is disabled".into(),
                    deployment_relevant: true,
                });
            }
            if !has_password && !password_disabled {
                out.push(Finding {
                    tool: "native",
                    rule: "missing-auth".into(),
                    resource: r.id(),
                    message: "neither admin_password nor SSH key authentication configured".into(),
                    deployment_relevant: true,
                });
            }
        }
    }
}

impl IacChecker for NativeValidate {
    fn name(&self) -> &'static str {
        "native"
    }

    fn check(&self, program: &Program) -> Vec<Finding> {
        let mut out = Vec::new();
        for r in program.resources() {
            self.check_resource(r, &mut out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_missing_required() {
        let p = Program::new().with(Resource::new("azurerm_virtual_network", "v"));
        let v = NativeValidate::new_azure();
        let findings = v.check(&p);
        assert!(findings.iter().any(|f| f.rule == "missing-required"));
    }

    #[test]
    fn flags_invalid_enum() {
        let p = Program::new().with(
            Resource::new("azurerm_public_ip", "ip")
                .with("name", "x")
                .with("location", "eastus")
                .with("resource_group_name", "rg")
                .with("allocation_method", "dynamic"),
        );
        let v = NativeValidate::new_azure();
        assert!(v.check(&p).iter().any(|f| f.rule == "invalid-enum"));
    }

    #[test]
    fn passes_semantic_violations() {
        // The paper's point: a VM/NIC region mismatch sails through native
        // validation.
        let p = Program::new().with(
            Resource::new("azurerm_network_interface", "nic")
                .with("name", "n")
                .with("location", "westus")
                .with("resource_group_name", "rg")
                .with(
                    "ip_configuration",
                    Value::Map(
                        [
                            ("name".to_string(), Value::s("i")),
                            (
                                "subnet_id".to_string(),
                                Value::r("azurerm_subnet", "s", "id"),
                            ),
                            (
                                "private_ip_address_allocation".to_string(),
                                Value::s("Dynamic"),
                            ),
                        ]
                        .into_iter()
                        .collect(),
                    ),
                ),
        );
        let v = NativeValidate::new_azure();
        let findings = v.check(&p);
        assert!(
            findings.is_empty(),
            "native validate should not catch semantic checks: {findings:?}"
        );
    }
}
