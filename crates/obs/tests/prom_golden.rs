//! Golden test pinning the Prometheus exposition byte-for-byte.
//!
//! Dashboards and scrape configs key on exact family names, label sets,
//! and HELP/TYPE lines; any drift is a breaking change for operators. This
//! test builds a small but fully-featured page — a counter, a gauge, a
//! summary, rolling windows for one op, and a tail exemplar — from a
//! deterministic event sequence under a [`ManualClock`] and compares the
//! whole rendering against a literal.

use std::sync::Arc;
use zodiac_obs::{
    render_prometheus, Exemplar, ManualClock, MemoryRecorder, Recorder, RollingRecorder,
    TailExemplars,
};

#[test]
fn exposition_page_matches_golden_bytes() {
    let registry = MemoryRecorder::new();
    registry.counter("scan.requests", 3);
    registry.gauge_set("heap.live_bytes", 2048);
    for us in [100u64, 200, 400] {
        registry.histogram("op.scan.us", us);
    }

    let clock = Arc::new(ManualClock::new());
    let rolling = RollingRecorder::new(clock.clone());
    for us in [100u64, 200, 400] {
        rolling.record_latency("scan", us);
    }
    rolling.record_errors("scan", 1);
    clock.advance_secs(2);

    let exemplars = TailExemplars::new(4);
    exemplars.observe(
        "scan",
        Exemplar {
            latency_us: 400,
            ts_us: 2,
            span_id: 9,
            fingerprints: vec![0xFEED],
        },
    );

    let text = render_prometheus(
        &registry.snapshot(),
        Some(&rolling.snapshot()),
        Some(&exemplars),
    );

    let golden = "\
# HELP zodiac_scan_requests_total Cumulative zodiac counter.
# TYPE zodiac_scan_requests_total counter
zodiac_scan_requests_total 3
# HELP zodiac_heap_live_bytes Zodiac gauge.
# TYPE zodiac_heap_live_bytes gauge
zodiac_heap_live_bytes 2048
# HELP zodiac_op_scan_us Zodiac histogram (microseconds unless named otherwise).
# TYPE zodiac_op_scan_us summary
zodiac_op_scan_us{quantile=\"0.5\"} 255
zodiac_op_scan_us{quantile=\"0.95\"} 400
zodiac_op_scan_us{quantile=\"0.99\"} 400
zodiac_op_scan_us_sum 700
zodiac_op_scan_us_count 3
# HELP zodiac_op_requests Requests observed in the rolling window.
# TYPE zodiac_op_requests gauge
zodiac_op_requests{op=\"scan\",window=\"1m\"} 3
zodiac_op_requests{op=\"scan\",window=\"1h\"} 3
# HELP zodiac_op_errors Errors observed in the rolling window.
# TYPE zodiac_op_errors gauge
zodiac_op_errors{op=\"scan\",window=\"1m\"} 1
zodiac_op_errors{op=\"scan\",window=\"1h\"} 1
# HELP zodiac_op_rate_milli Windowed request rate in milli-requests per second.
# TYPE zodiac_op_rate_milli gauge
zodiac_op_rate_milli{op=\"scan\",window=\"1m\"} 1000
zodiac_op_rate_milli{op=\"scan\",window=\"1h\"} 50
# HELP zodiac_op_latency_us Windowed latency quantiles, microseconds.
# TYPE zodiac_op_latency_us gauge
zodiac_op_latency_us{op=\"scan\",window=\"1m\",quantile=\"0.5\"} 255
zodiac_op_latency_us{op=\"scan\",window=\"1m\",quantile=\"0.95\"} 400
zodiac_op_latency_us{op=\"scan\",window=\"1m\",quantile=\"0.99\"} 400
zodiac_op_latency_us{op=\"scan\",window=\"1h\",quantile=\"0.5\"} 255
zodiac_op_latency_us{op=\"scan\",window=\"1h\",quantile=\"0.95\"} 400
zodiac_op_latency_us{op=\"scan\",window=\"1h\",quantile=\"0.99\"} 400
# HELP zodiac_op_latency_us_max Slowest request in the rolling window, microseconds.
# TYPE zodiac_op_latency_us_max gauge
zodiac_op_latency_us_max{op=\"scan\",window=\"1m\"} 400
zodiac_op_latency_us_max{op=\"scan\",window=\"1h\"} 400
# HELP zodiac_op_slowest_us Latency of the slowest retained request per op, microseconds.
# TYPE zodiac_op_slowest_us gauge
zodiac_op_slowest_us{op=\"scan\"} 400
# HELP zodiac_op_exemplar_fingerprint Check fingerprints touched by the slowest retained request per op.
# TYPE zodiac_op_exemplar_fingerprint gauge
zodiac_op_exemplar_fingerprint{op=\"scan\",fingerprint=\"000000000000feed\"} 1
";
    assert_eq!(text, golden, "Prometheus exposition drifted from golden");
}
