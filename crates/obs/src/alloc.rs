//! A counting global allocator: the cheap peak-memory hook.
//!
//! Streaming mining's headline claim — a 100k-project corpus never lives in
//! memory — needs a test that *fails* if someone reintroduces a
//! `Vec<Project>` materialisation. RSS is the honest metric but is noisy,
//! platform-dependent, and invisible from safe Rust; instead, tests install
//! [`CountingAlloc`] as the global allocator and assert on **live heap
//! bytes**, which an accidental materialisation inflates by orders of
//! magnitude.
//!
//! The counter is a pair of relaxed atomics on the allocation path — two
//! `fetch_add`s per alloc/dealloc, no locks, no sampling — cheap enough to
//! leave installed for a whole test binary:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: CountingAlloc = CountingAlloc::new();
//!
//! let before = ALLOC.reset_peak();
//! run_streaming_mine();
//! assert!(ALLOC.peak_bytes() - before < BUDGET);
//! ```
//!
//! Peak tracking uses a compare-exchange loop on the high-water mark, which
//! only contends when the peak is actually advancing.

use crate::Recorder;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// The process-wide counting allocator, if one registered itself.
static GLOBAL: OnceLock<&'static CountingAlloc> = OnceLock::new();

/// A [`GlobalAlloc`] wrapper over [`System`] that tracks live and peak heap
/// bytes. Install with `#[global_allocator]`; all methods are lock-free and
/// callable from any thread.
pub struct CountingAlloc {
    live: AtomicUsize,
    peak: AtomicUsize,
}

impl CountingAlloc {
    /// A new counter with zeroed statistics.
    pub const fn new() -> Self {
        CountingAlloc {
            live: AtomicUsize::new(0),
            peak: AtomicUsize::new(0),
        }
    }

    /// Heap bytes currently allocated and not yet freed.
    pub fn live_bytes(&self) -> usize {
        self.live.load(Ordering::Relaxed)
    }

    /// High-water mark of [`CountingAlloc::live_bytes`] since the last
    /// [`CountingAlloc::reset_peak`] (or process start).
    pub fn peak_bytes(&self) -> usize {
        self.peak.load(Ordering::Relaxed)
    }

    /// Resets the high-water mark to the current live size and returns that
    /// baseline — call before the region of interest, then compare
    /// [`CountingAlloc::peak_bytes`] against the returned baseline after.
    pub fn reset_peak(&self) -> usize {
        let live = self.live.load(Ordering::Relaxed);
        self.peak.store(live, Ordering::Relaxed);
        live
    }

    /// Registers this allocator as the process-wide one visible through
    /// [`CountingAlloc::global`]. Binaries that install a
    /// `#[global_allocator] static ALLOC: CountingAlloc` call this once at
    /// start-up so library code (the daemon's heap gauges, `zodiac top`)
    /// can read live/peak bytes without threading a reference everywhere.
    /// First registration wins; later calls are no-ops.
    pub fn set_global(alloc: &'static CountingAlloc) {
        let _ = GLOBAL.set(alloc);
    }

    /// The registered process-wide counting allocator, if any.
    pub fn global() -> Option<&'static CountingAlloc> {
        GLOBAL.get().copied()
    }

    /// Publishes live/peak heap bytes as `heap.live_bytes` /
    /// `heap.peak_bytes` gauges, making memory a first-class exposition
    /// series rather than a test-only probe.
    pub fn publish_gauges(&self, rec: &dyn Recorder) {
        rec.gauge_set("heap.live_bytes", self.live_bytes() as u64);
        rec.gauge_set("heap.peak_bytes", self.peak_bytes() as u64);
    }

    fn record_alloc(&self, bytes: usize) {
        let live = self.live.fetch_add(bytes, Ordering::Relaxed) + bytes;
        // Advance the high-water mark; contention only under a rising peak.
        let mut peak = self.peak.load(Ordering::Relaxed);
        while live > peak {
            match self
                .peak
                .compare_exchange_weak(peak, live, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(observed) => peak = observed,
            }
        }
    }

    fn record_dealloc(&self, bytes: usize) {
        self.live.fetch_sub(bytes, Ordering::Relaxed);
    }
}

impl Default for CountingAlloc {
    fn default() -> Self {
        CountingAlloc::new()
    }
}

// SAFETY: delegates every allocation verbatim to `System`; the bookkeeping
// never allocates and never observes the returned pointers.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            self.record_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        self.record_dealloc(layout.size());
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc_zeroed(layout);
        if !p.is_null() {
            self.record_alloc(layout.size());
        }
        p
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            // Model as free(old) + alloc(new); peak may briefly undercount
            // the allocator's internal copy, which is fine for budgets.
            self.record_dealloc(layout.size());
            self.record_alloc(new_size);
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Not installed as the global allocator here (that would affect every
    // test in the crate); exercise the bookkeeping directly.
    #[test]
    fn tracks_live_and_peak() {
        let a = CountingAlloc::new();
        a.record_alloc(100);
        a.record_alloc(50);
        assert_eq!(a.live_bytes(), 150);
        assert_eq!(a.peak_bytes(), 150);
        a.record_dealloc(100);
        assert_eq!(a.live_bytes(), 50);
        assert_eq!(a.peak_bytes(), 150, "peak is a high-water mark");
        let base = a.reset_peak();
        assert_eq!(base, 50);
        assert_eq!(a.peak_bytes(), 50);
        a.record_alloc(25);
        assert_eq!(a.peak_bytes(), 75);
    }

    #[test]
    fn publishes_heap_gauges_and_registers_globally() {
        static ALLOC: CountingAlloc = CountingAlloc::new();
        ALLOC.record_alloc(4096);
        CountingAlloc::set_global(&ALLOC);
        CountingAlloc::set_global(&ALLOC); // idempotent
        let got = CountingAlloc::global().expect("global registered");
        assert!(std::ptr::eq(got, &ALLOC));
        let reg = crate::MemoryRecorder::new();
        got.publish_gauges(&reg);
        let snap = reg.snapshot();
        assert!(snap.gauge("heap.live_bytes") >= 4096);
        assert!(snap.gauge("heap.peak_bytes") >= snap.gauge("heap.live_bytes"));
    }

    #[test]
    fn allocates_through_system() {
        let a = CountingAlloc::new();
        unsafe {
            let layout = Layout::from_size_align(64, 8).unwrap();
            let p = a.alloc(layout);
            assert!(!p.is_null());
            assert_eq!(a.live_bytes(), 64);
            let p = a.realloc(p, layout, 128);
            assert!(!p.is_null());
            assert_eq!(a.live_bytes(), 128);
            a.dealloc(p, Layout::from_size_align(128, 8).unwrap());
            assert_eq!(a.live_bytes(), 0);
            assert_eq!(a.peak_bytes(), 128);
        }
    }
}
