//! Streaming JSON-lines trace sink.

use crate::snapshot::MetricsSnapshot;
use crate::{escape_json, Recorder};
use std::fmt::Write as _;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::{Mutex, PoisonError};

/// A [`Recorder`] that streams completed stage spans to a writer as JSON
/// lines (one object per line), for the CLI's `--trace-out <path>`.
///
/// Only spans are streamed — counters/gauges/histograms are high-frequency
/// and belong in the in-memory registry; call [`JsonLinesSink::write_snapshot`]
/// once at end of run to append the aggregate metrics as a final line.
///
/// Line shapes:
///
/// ```text
/// {"event":"span","path":"pipeline/mining","us":40812}
/// {"event":"snapshot","metrics":{"counters":{...},"gauges":{...},"histograms":{...}}}
/// ```
pub struct JsonLinesSink {
    out: Mutex<Box<dyn Write + Send>>,
}

impl JsonLinesSink {
    /// A sink writing to an arbitrary writer (buffered writers recommended).
    pub fn new(out: Box<dyn Write + Send>) -> Self {
        JsonLinesSink {
            out: Mutex::new(out),
        }
    }

    /// Creates (truncating) a trace file at `path`.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        let file = File::create(path)?;
        Ok(JsonLinesSink::new(Box::new(BufWriter::new(file))))
    }

    fn write_line(&self, line: &str) {
        let mut out = self.out.lock().unwrap_or_else(PoisonError::into_inner);
        // Trace output is best-effort: a full disk must not fail the pipeline.
        let _ = writeln!(out, "{line}");
    }

    /// Appends the aggregate metrics snapshot as a final `snapshot` event.
    pub fn write_snapshot(&self, snapshot: &MetricsSnapshot) {
        let line = format!(
            "{{\"event\":\"snapshot\",\"metrics\":{}}}",
            snapshot.to_json()
        );
        self.write_line(&line);
    }

    /// Flushes the underlying writer.
    pub fn flush(&self) -> io::Result<()> {
        self.out
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .flush()
    }
}

impl Recorder for JsonLinesSink {
    fn counter(&self, _name: &str, _delta: u64) {}
    fn gauge_set(&self, _name: &str, _value: u64) {}
    fn gauge_max(&self, _name: &str, _observed: u64) {}
    fn histogram(&self, _name: &str, _value: u64) {}

    fn span(&self, path: &str, micros: u64) {
        let mut line = String::with_capacity(48 + path.len());
        line.push_str("{\"event\":\"span\",\"path\":\"");
        escape_json(path, &mut line);
        let _ = write!(line, "\",\"us\":{micros}}}");
        self.write_line(&line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MemoryRecorder, Obs};
    use std::sync::Arc;

    /// A Write handle that appends into a shared buffer we can inspect.
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    impl SharedBuf {
        fn contents(&self) -> String {
            String::from_utf8(
                self.0
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .clone(),
            )
            .expect("trace is utf-8")
        }
    }

    #[test]
    fn streams_spans_and_final_snapshot_as_json_lines() {
        let buf = SharedBuf::default();
        let sink = Arc::new(JsonLinesSink::new(Box::new(buf.clone())));
        let reg = Arc::new(MemoryRecorder::new());
        let obs = Obs::fanout(vec![sink.clone(), reg.clone()]);

        obs.start_span("pipeline/corpus").finish();
        obs.counter("deploy.requests", 3);
        obs.start_span("pipeline/mining").finish();
        sink.write_snapshot(&reg.snapshot());
        sink.flush().expect("flush in-memory buffer");

        let text = buf.contents();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        for line in &lines {
            let v: serde_json::Value = serde_json::from_str(line).expect("valid JSON line");
            assert!(v.get("event").is_some());
        }
        assert!(lines[0].contains("\"path\":\"pipeline/corpus\""));
        assert!(lines[1].contains("\"path\":\"pipeline/mining\""));
        assert!(lines[2].contains("\"event\":\"snapshot\""));
        assert!(lines[2].contains("\"deploy.requests\":3"));
    }

    #[test]
    fn span_paths_are_escaped() {
        let buf = SharedBuf::default();
        let sink = JsonLinesSink::new(Box::new(buf.clone()));
        sink.span("weird\"path\\x", 1);
        sink.flush().expect("flush");
        let text = buf.contents();
        let v: serde_json::Value = serde_json::from_str(text.trim()).expect("valid JSON");
        assert_eq!(
            v.get("path").and_then(|p| p.as_str()),
            Some("weird\"path\\x")
        );
    }
}
