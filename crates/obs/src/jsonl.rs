//! Streaming JSON-lines trace sink (schema v2).

use crate::snapshot::MetricsSnapshot;
use crate::{escape_json, CandidateEvent, Recorder, SpanRecord, TRACE_SCHEMA_VERSION};
use std::fmt::Write as _;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::{Mutex, PoisonError};

/// A [`Recorder`] that streams structured spans and candidate lifecycle
/// events to a writer as JSON lines (one object per line), for the CLI's
/// `--trace-out <path>`.
///
/// Counters/gauges/histograms are high-frequency and belong in the
/// in-memory registry; call [`JsonLinesSink::write_snapshot`] once at end
/// of run to append the aggregate metrics as a final line.
///
/// Line shapes (schema v2):
///
/// ```text
/// {"event":"trace","schema":2}
/// {"event":"span","id":4,"parent":1,"tid":1,"path":"pipeline/mining","ts":1042,"us":40812,"attrs":{"iter":3}}
/// {"event":"lifecycle","fp":"00a1b2...","ts":1100,"kind":"demoted","reason":"counterexample"}
/// {"event":"snapshot","metrics":{"counters":{...},"gauges":{...},"histograms":{...}}}
/// ```
///
/// The `trace` header is written eagerly at construction so consumers can
/// version-dispatch without scanning. `parent` is omitted on root spans
/// and `attrs` when empty.
pub struct JsonLinesSink {
    out: Mutex<Box<dyn Write + Send>>,
}

impl JsonLinesSink {
    /// A sink writing to an arbitrary writer (buffered writers recommended).
    /// Writes the schema header line immediately.
    pub fn new(out: Box<dyn Write + Send>) -> Self {
        let sink = JsonLinesSink {
            out: Mutex::new(out),
        };
        sink.write_line(&format!(
            "{{\"event\":\"trace\",\"schema\":{TRACE_SCHEMA_VERSION}}}"
        ));
        sink
    }

    /// Creates (truncating) a trace file at `path`.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        let file = File::create(path)?;
        Ok(JsonLinesSink::new(Box::new(BufWriter::new(file))))
    }

    fn write_line(&self, line: &str) {
        let mut out = self.out.lock().unwrap_or_else(PoisonError::into_inner);
        // Trace output is best-effort: a full disk must not fail the pipeline.
        let _ = writeln!(out, "{line}");
    }

    /// Appends the aggregate metrics snapshot as a final `snapshot` event.
    pub fn write_snapshot(&self, snapshot: &MetricsSnapshot) {
        let line = format!(
            "{{\"event\":\"snapshot\",\"metrics\":{}}}",
            snapshot.to_json()
        );
        self.write_line(&line);
    }

    /// Flushes the underlying writer.
    pub fn flush(&self) -> io::Result<()> {
        self.out
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .flush()
    }
}

impl Recorder for JsonLinesSink {
    fn counter(&self, _name: &str, _delta: u64) {}
    fn gauge_set(&self, _name: &str, _value: u64) {}
    fn gauge_max(&self, _name: &str, _observed: u64) {}
    fn histogram(&self, _name: &str, _value: u64) {}

    fn span(&self, path: &str, micros: u64) {
        // Legacy duration-only entry point (no identity available).
        let mut line = String::with_capacity(48 + path.len());
        line.push_str("{\"event\":\"span\",\"path\":\"");
        escape_json(path, &mut line);
        let _ = write!(line, "\",\"us\":{micros}}}");
        self.write_line(&line);
    }

    fn span_record(&self, rec: &SpanRecord<'_>) {
        let mut line = String::with_capacity(96 + rec.path.len());
        let _ = write!(line, "{{\"event\":\"span\",\"id\":{}", rec.id);
        if rec.parent != 0 {
            let _ = write!(line, ",\"parent\":{}", rec.parent);
        }
        let _ = write!(line, ",\"tid\":{},\"path\":\"", rec.tid);
        escape_json(rec.path, &mut line);
        let _ = write!(line, "\",\"ts\":{},\"us\":{}", rec.ts_us, rec.dur_us);
        if !rec.attrs.is_empty() {
            line.push_str(",\"attrs\":{");
            for (i, (key, value)) in rec.attrs.iter().enumerate() {
                if i > 0 {
                    line.push(',');
                }
                line.push('"');
                escape_json(key, &mut line);
                line.push_str("\":");
                match value {
                    crate::AttrValue::U64(v) => {
                        let _ = write!(line, "{v}");
                    }
                    crate::AttrValue::Str(s) => {
                        line.push('"');
                        escape_json(s, &mut line);
                        line.push('"');
                    }
                }
            }
            line.push('}');
        }
        line.push('}');
        self.write_line(&line);
    }

    fn lifecycle(&self, event: &CandidateEvent) {
        self.write_line(&event.to_json());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Lifecycle, MemoryRecorder, Obs};
    use std::sync::Arc;

    /// A Write handle that appends into a shared buffer we can inspect.
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    impl SharedBuf {
        fn contents(&self) -> String {
            String::from_utf8(
                self.0
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .clone(),
            )
            .expect("trace is utf-8")
        }
    }

    #[test]
    fn streams_header_spans_and_final_snapshot_as_json_lines() {
        let buf = SharedBuf::default();
        let sink = Arc::new(JsonLinesSink::new(Box::new(buf.clone())));
        let reg = Arc::new(MemoryRecorder::new());
        let obs = Obs::fanout(vec![sink.clone(), reg.clone()]);

        obs.start_span("pipeline/corpus").finish();
        obs.counter("deploy.requests", 3);
        obs.start_span("pipeline/mining").finish();
        sink.write_snapshot(&reg.snapshot());
        sink.flush().expect("flush in-memory buffer");

        let text = buf.contents();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        for line in &lines {
            let v: serde_json::Value = serde_json::from_str(line).expect("valid JSON line");
            assert!(v.get("event").is_some());
        }
        assert!(lines[0].contains("\"event\":\"trace\""));
        assert!(lines[0].contains("\"schema\":2"));
        assert!(lines[1].contains("\"path\":\"pipeline/corpus\""));
        assert!(lines[2].contains("\"path\":\"pipeline/mining\""));
        assert!(lines[3].contains("\"event\":\"snapshot\""));
        assert!(lines[3].contains("\"deploy.requests\":3"));
    }

    #[test]
    fn span_records_carry_id_parent_and_attrs() {
        let buf = SharedBuf::default();
        let sink = Arc::new(JsonLinesSink::new(Box::new(buf.clone())));
        let obs = Obs::single(sink.clone());

        let root = obs.start_span("pipeline");
        let mut child = obs.start_span("pipeline/validation/iter");
        child.attr("iter", 3u64);
        child.attr("kind", "tp");
        child.finish();
        root.finish();
        sink.flush().expect("flush");

        let text = buf.contents();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3); // header + 2 spans (child recorded first)
        let child_v: serde_json::Value = serde_json::from_str(lines[1]).expect("child JSON");
        let root_v: serde_json::Value = serde_json::from_str(lines[2]).expect("root JSON");
        let root_id = root_v.get("id").and_then(|v| v.as_u64()).expect("root id");
        assert!(root_v.get("parent").is_none(), "root has no parent key");
        assert_eq!(
            child_v.get("parent").and_then(|v| v.as_u64()),
            Some(root_id)
        );
        let attrs = child_v.get("attrs").expect("attrs object");
        assert_eq!(attrs.get("iter").and_then(|v| v.as_u64()), Some(3));
        assert_eq!(attrs.get("kind").and_then(|v| v.as_str()), Some("tp"));
        assert!(child_v.get("ts").is_some());
    }

    #[test]
    fn lifecycle_events_are_streamed() {
        let buf = SharedBuf::default();
        let sink = Arc::new(JsonLinesSink::new(Box::new(buf.clone())));
        let obs = Obs::single(sink.clone());
        obs.lifecycle(
            0xC0FFEE,
            Lifecycle::Demoted {
                reason: "counterexample".into(),
            },
        );
        sink.flush().expect("flush");
        let text = buf.contents();
        let line = text.lines().nth(1).expect("lifecycle line");
        let v: serde_json::Value = serde_json::from_str(line).expect("valid JSON");
        assert_eq!(v.get("event").and_then(|e| e.as_str()), Some("lifecycle"));
        assert_eq!(
            v.get("fp").and_then(|f| f.as_str()),
            Some("0000000000c0ffee")
        );
        assert_eq!(v.get("kind").and_then(|k| k.as_str()), Some("demoted"));
        assert_eq!(
            v.get("reason").and_then(|r| r.as_str()),
            Some("counterexample")
        );
    }

    #[test]
    fn span_paths_are_escaped() {
        let buf = SharedBuf::default();
        let sink = JsonLinesSink::new(Box::new(buf.clone()));
        sink.span("weird\"path\\x", 1);
        sink.flush().expect("flush");
        let text = buf.contents();
        let line = text.lines().nth(1).expect("span line");
        let v: serde_json::Value = serde_json::from_str(line).expect("valid JSON");
        assert_eq!(
            v.get("path").and_then(|p| p.as_str()),
            Some("weird\"path\\x")
        );
    }
}
