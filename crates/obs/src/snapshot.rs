//! Point-in-time metric snapshots.

use crate::escape_json;
use serde::Serialize;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Aggregate view of one histogram: count/sum exactly, min/max exactly,
/// quantiles to power-of-two bucket resolution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct HistogramSummary {
    pub count: u64,
    pub sum: u64,
    pub min: u64,
    pub max: u64,
    pub p50: u64,
    pub p95: u64,
    pub p99: u64,
}

impl HistogramSummary {
    /// Mean observation, rounded down (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Combines two summaries. Count/sum add, min/max extend exactly.
    /// Quantiles cannot be merged exactly from summaries (the buckets are
    /// gone); the merge takes the quantile of the side with more
    /// observations — a count-weighted approximation that is exact when
    /// one side is empty.
    pub fn merge(&self, other: &HistogramSummary) -> HistogramSummary {
        if self.count == 0 {
            return *other;
        }
        if other.count == 0 {
            return *self;
        }
        let dominant = if other.count > self.count {
            other
        } else {
            self
        };
        HistogramSummary {
            count: self.count + other.count,
            sum: self.sum.saturating_add(other.sum),
            min: self.min.min(other.min),
            max: self.max.max(other.max),
            p50: dominant.p50,
            p95: dominant.p95,
            p99: dominant.p99,
        }
    }
}

/// A name-sorted snapshot of every metric a [`MemoryRecorder`] has seen.
/// Embeds into experiment JSON records and validation traces via the
/// workspace serde facade.
///
/// [`MemoryRecorder`]: crate::MemoryRecorder
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct MetricsSnapshot {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, u64>,
    pub histograms: BTreeMap<String, HistogramSummary>,
}

impl MetricsSnapshot {
    /// Counter value, 0 if absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge value, 0 if absent.
    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// Histogram summary, empty if absent.
    pub fn histogram(&self, name: &str) -> HistogramSummary {
        self.histograms.get(name).copied().unwrap_or_default()
    }

    /// True if no metric of any kind was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Folds `other` into `self`: counters add, gauges take the maximum
    /// (every zodiac gauge is a high-water mark), histograms merge per
    /// [`HistogramSummary::merge`]. Used to combine snapshots from
    /// subsystems that keep private registries (e.g. per-engine telemetry)
    /// into one report.
    pub fn merge_from(&mut self, other: &MetricsSnapshot) {
        for (name, v) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += v;
        }
        for (name, v) in &other.gauges {
            let cell = self.gauges.entry(name.clone()).or_insert(0);
            *cell = (*cell).max(*v);
        }
        for (name, h) in &other.histograms {
            let cell = self.histograms.entry(name.clone()).or_default();
            *cell = cell.merge(h);
        }
    }

    /// Hand-rolled single-line JSON encoding, used by the JSON-lines sink so
    /// the trace format does not depend on any serialization crate.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            escape_json(name, &mut out);
            let _ = write!(out, "\":{v}");
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            escape_json(name, &mut out);
            let _ = write!(out, "\":{v}");
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            escape_json(name, &mut out);
            let _ = write!(
                out,
                "\":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p95\":{},\"p99\":{}}}",
                h.count, h.sum, h.min, h.max, h.p50, h.p95, h.p99
            );
        }
        out.push_str("}}");
        out
    }

    /// Human-readable summary table for the CLI's `--metrics` flag: counters
    /// and gauges first, then stage latencies.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for (name, v) in &self.counters {
                let _ = writeln!(out, "  {name:<44} {v:>12}");
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges:\n");
            for (name, v) in &self.gauges {
                let _ = writeln!(out, "  {name:<44} {v:>12}");
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("histograms (us):\n");
            let _ = writeln!(
                out,
                "  {:<44} {:>8} {:>10} {:>10} {:>10} {:>10} {:>10}",
                "name", "count", "mean", "p50", "p95", "p99", "max"
            );
            for (name, h) in &self.histograms {
                let _ = writeln!(
                    out,
                    "  {:<44} {:>8} {:>10} {:>10} {:>10} {:>10} {:>10}",
                    name,
                    h.count,
                    h.mean(),
                    h.p50,
                    h.p95,
                    h.p99,
                    h.max
                );
            }
        }
        if out.is_empty() {
            out.push_str("(no metrics recorded)\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MetricsSnapshot {
        let mut s = MetricsSnapshot::default();
        s.counters.insert("deploy.requests".into(), 42);
        s.gauges.insert("deploy.queue_depth.max".into(), 7);
        s.histograms.insert(
            "span.pipeline/mining".into(),
            HistogramSummary {
                count: 2,
                sum: 100,
                min: 40,
                max: 60,
                p50: 60,
                p95: 60,
                p99: 60,
            },
        );
        s
    }

    #[test]
    fn accessors_default_to_zero() {
        let s = sample();
        assert_eq!(s.counter("deploy.requests"), 42);
        assert_eq!(s.counter("nope"), 0);
        assert_eq!(s.gauge("nope"), 0);
        assert_eq!(s.histogram("nope").count, 0);
        assert!(!s.is_empty());
        assert!(MetricsSnapshot::default().is_empty());
    }

    #[test]
    fn hand_rolled_json_matches_serde_encoding() {
        let s = sample();
        let hand = s.to_json();
        let via_serde = serde_json::to_string(&s).expect("snapshot serializes");
        let hand_val: serde_json::Value = serde_json::from_str(&hand).expect("hand JSON parses");
        let serde_val: serde_json::Value =
            serde_json::from_str(&via_serde).expect("serde JSON parses");
        assert_eq!(hand_val, serde_val);
    }

    #[test]
    fn merge_with_empty_is_identity_both_ways() {
        let s = sample();
        let mut left = s.clone();
        left.merge_from(&MetricsSnapshot::default());
        assert_eq!(left, s);
        let mut right = MetricsSnapshot::default();
        right.merge_from(&s);
        assert_eq!(right, s);
    }

    #[test]
    fn merge_disjoint_keys_is_union() {
        let mut a = MetricsSnapshot::default();
        a.counters.insert("only.a".into(), 1);
        a.histograms.insert(
            "h.a".into(),
            HistogramSummary {
                count: 1,
                sum: 5,
                min: 5,
                max: 5,
                p50: 5,
                p95: 5,
                p99: 5,
            },
        );
        let mut b = MetricsSnapshot::default();
        b.counters.insert("only.b".into(), 2);
        b.gauges.insert("g.b".into(), 9);
        a.merge_from(&b);
        assert_eq!(a.counter("only.a"), 1);
        assert_eq!(a.counter("only.b"), 2);
        assert_eq!(a.gauge("g.b"), 9);
        assert_eq!(a.histogram("h.a").count, 1);
    }

    #[test]
    fn merge_shared_keys_adds_counters_and_maxes_gauges() {
        let mut a = sample();
        let b = sample();
        a.merge_from(&b);
        assert_eq!(a.counter("deploy.requests"), 84);
        assert_eq!(a.gauge("deploy.queue_depth.max"), 7);
        let h = a.histogram("span.pipeline/mining");
        assert_eq!(h.count, 4);
        assert_eq!(h.sum, 200);
        assert_eq!(h.min, 40);
        assert_eq!(h.max, 60);
    }

    #[test]
    fn histogram_merge_saturates_sum_and_keeps_dominant_quantiles() {
        let small = HistogramSummary {
            count: 1,
            sum: u64::MAX - 1,
            min: 1,
            max: u64::MAX - 1,
            p50: 1,
            p95: 1,
            p99: 1,
        };
        let large = HistogramSummary {
            count: 10,
            sum: 100,
            min: 2,
            max: 20,
            p50: 8,
            p95: 16,
            p99: 18,
        };
        let merged = small.merge(&large);
        assert_eq!(merged.count, 11);
        assert_eq!(merged.sum, u64::MAX); // saturating add, no overflow
        assert_eq!(merged.min, 1);
        assert_eq!(merged.max, u64::MAX - 1);
        // Quantiles come from the side with more observations.
        assert_eq!(merged.p50, 8);
        assert_eq!(merged.p95, 16);
        assert_eq!(merged.p99, 18);
        // Empty merges are exact in both directions.
        assert_eq!(small.merge(&HistogramSummary::default()), small);
        assert_eq!(HistogramSummary::default().merge(&small), small);
    }

    #[test]
    fn render_includes_every_section() {
        let text = sample().render();
        assert!(text.contains("deploy.requests"));
        assert!(text.contains("deploy.queue_depth.max"));
        assert!(text.contains("span.pipeline/mining"));
        assert!(MetricsSnapshot::default().render().contains("no metrics"));
    }
}
