//! Point-in-time metric snapshots.

use crate::escape_json;
use serde::Serialize;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Aggregate view of one histogram: count/sum exactly, min/max exactly,
/// quantiles to power-of-two bucket resolution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct HistogramSummary {
    pub count: u64,
    pub sum: u64,
    pub min: u64,
    pub max: u64,
    pub p50: u64,
    pub p95: u64,
}

impl HistogramSummary {
    /// Mean observation, rounded down (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }
}

/// A name-sorted snapshot of every metric a [`MemoryRecorder`] has seen.
/// Embeds into experiment JSON records and validation traces via the
/// workspace serde facade.
///
/// [`MemoryRecorder`]: crate::MemoryRecorder
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct MetricsSnapshot {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, u64>,
    pub histograms: BTreeMap<String, HistogramSummary>,
}

impl MetricsSnapshot {
    /// Counter value, 0 if absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge value, 0 if absent.
    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// Histogram summary, empty if absent.
    pub fn histogram(&self, name: &str) -> HistogramSummary {
        self.histograms.get(name).copied().unwrap_or_default()
    }

    /// True if no metric of any kind was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Hand-rolled single-line JSON encoding, used by the JSON-lines sink so
    /// the trace format does not depend on any serialization crate.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            escape_json(name, &mut out);
            let _ = write!(out, "\":{v}");
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            escape_json(name, &mut out);
            let _ = write!(out, "\":{v}");
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            escape_json(name, &mut out);
            let _ = write!(
                out,
                "\":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p95\":{}}}",
                h.count, h.sum, h.min, h.max, h.p50, h.p95
            );
        }
        out.push_str("}}");
        out
    }

    /// Human-readable summary table for the CLI's `--metrics` flag: counters
    /// and gauges first, then stage latencies.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for (name, v) in &self.counters {
                let _ = writeln!(out, "  {name:<44} {v:>12}");
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges:\n");
            for (name, v) in &self.gauges {
                let _ = writeln!(out, "  {name:<44} {v:>12}");
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("histograms (us):\n");
            let _ = writeln!(
                out,
                "  {:<44} {:>8} {:>10} {:>10} {:>10} {:>10}",
                "name", "count", "mean", "p50", "p95", "max"
            );
            for (name, h) in &self.histograms {
                let _ = writeln!(
                    out,
                    "  {:<44} {:>8} {:>10} {:>10} {:>10} {:>10}",
                    name,
                    h.count,
                    h.mean(),
                    h.p50,
                    h.p95,
                    h.max
                );
            }
        }
        if out.is_empty() {
            out.push_str("(no metrics recorded)\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MetricsSnapshot {
        let mut s = MetricsSnapshot::default();
        s.counters.insert("deploy.requests".into(), 42);
        s.gauges.insert("deploy.queue_depth.max".into(), 7);
        s.histograms.insert(
            "span.pipeline/mining".into(),
            HistogramSummary {
                count: 2,
                sum: 100,
                min: 40,
                max: 60,
                p50: 60,
                p95: 60,
            },
        );
        s
    }

    #[test]
    fn accessors_default_to_zero() {
        let s = sample();
        assert_eq!(s.counter("deploy.requests"), 42);
        assert_eq!(s.counter("nope"), 0);
        assert_eq!(s.gauge("nope"), 0);
        assert_eq!(s.histogram("nope").count, 0);
        assert!(!s.is_empty());
        assert!(MetricsSnapshot::default().is_empty());
    }

    #[test]
    fn hand_rolled_json_matches_serde_encoding() {
        let s = sample();
        let hand = s.to_json();
        let via_serde = serde_json::to_string(&s).expect("snapshot serializes");
        let hand_val: serde_json::Value = serde_json::from_str(&hand).expect("hand JSON parses");
        let serde_val: serde_json::Value =
            serde_json::from_str(&via_serde).expect("serde JSON parses");
        assert_eq!(hand_val, serde_val);
    }

    #[test]
    fn render_includes_every_section() {
        let text = sample().render();
        assert!(text.contains("deploy.requests"));
        assert!(text.contains("deploy.queue_depth.max"));
        assert!(text.contains("span.pipeline/mining"));
        assert!(MetricsSnapshot::default().render().contains("no metrics"));
    }
}
