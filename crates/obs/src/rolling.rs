//! Time-windowed operational metrics: fixed rings of log₂ histograms.
//!
//! The cumulative registry ([`MemoryRecorder`]) answers "what happened since
//! start-up"; a long-running `zodiacd` also needs "what is happening *now*".
//! [`RollingRecorder`] keeps, per operation, two fixed rings of buckets —
//! 60 × 1 s (the last minute) and 60 × 1 m (the last hour) — each bucket
//! holding a request count, an error count, a latency sum/max, and the same
//! 64 power-of-two latency buckets as the cumulative registry, so windowed
//! p50/p95/p99 agree bucket-for-bucket with lifetime quantiles.
//!
//! Everything is integer arithmetic over an injected [`Clock`], so ring
//! advance, bucket expiry, partial-window coverage, and shard merges are
//! all deterministic in tests ([`ManualClock`]) and lock scope stays one
//! op's ring for one observation in production.
//!
//! # Feeding the rings
//!
//! The recorder implements [`Recorder`] and intercepts the serving-boundary
//! naming convention: a histogram named `op.<name>.us` records a latency
//! observation for operation `<name>`, and a counter named
//! `op.<name>.errors` records failures. Every subsystem that already
//! records through an [`Obs`] handle therefore gains live windows the
//! moment the daemon attaches a `RollingRecorder` as a sink — no
//! cross-crate API changes.
//!
//! [`MemoryRecorder`]: crate::MemoryRecorder
//! [`Obs`]: crate::Obs
//! [`ManualClock`]: crate::ManualClock

use crate::clock::Clock;
use crate::registry::{bucket_of, bucket_quantile, BUCKETS};
use crate::{escape_json, CandidateEvent, Recorder};
use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;
use std::sync::{Arc, Mutex, PoisonError, RwLock};

/// Slots per ring. With 1 s and 60 s bucket widths this yields a one-minute
/// and a one-hour window.
pub const RING_LEN: usize = 60;

/// Histogram name prefix/suffix intercepted as a latency observation.
const OP_PREFIX: &str = "op.";
const LATENCY_SUFFIX: &str = ".us";
const ERROR_SUFFIX: &str = ".errors";

/// One time-bucket of a ring: totals plus log₂ latency buckets, stamped
/// with the *absolute* bucket index it belongs to so stale slots are
/// detected (and lazily reset) instead of aged by a background thread.
#[derive(Clone)]
struct Bucket {
    /// Absolute bucket index (`now_us / width_us`); `u64::MAX` = never used.
    stamp: u64,
    count: u64,
    errors: u64,
    sum_us: u64,
    max_us: u64,
    lat: [u64; BUCKETS],
}

impl Default for Bucket {
    fn default() -> Self {
        Bucket {
            stamp: u64::MAX,
            count: 0,
            errors: 0,
            sum_us: 0,
            max_us: 0,
            lat: [0; BUCKETS],
        }
    }
}

impl Bucket {
    fn reset(&mut self, stamp: u64) {
        *self = Bucket {
            stamp,
            ..Bucket::default()
        };
    }

    fn add(&mut self, other: &Bucket) {
        self.count += other.count;
        self.errors += other.errors;
        self.sum_us = self.sum_us.saturating_add(other.sum_us);
        self.max_us = self.max_us.max(other.max_us);
        for (a, b) in self.lat.iter_mut().zip(other.lat.iter()) {
            *a += *b;
        }
    }
}

/// A fixed ring of [`RING_LEN`] buckets of `width_us` each.
struct Ring {
    width_us: u64,
    slots: Vec<Bucket>,
}

impl Ring {
    fn new(width_us: u64) -> Self {
        Ring {
            width_us,
            slots: vec![Bucket::default(); RING_LEN],
        }
    }

    /// The bucket for `now_us`, lazily reset if its slot last held an
    /// earlier window.
    fn bucket_at(&mut self, now_us: u64) -> &mut Bucket {
        let idx = now_us / self.width_us;
        let slot = (idx % RING_LEN as u64) as usize;
        let b = &mut self.slots[slot];
        if b.stamp != idx {
            b.reset(idx);
        }
        b
    }

    fn record(&mut self, now_us: u64, latency_us: u64) {
        let b = self.bucket_at(now_us);
        b.count += 1;
        b.sum_us = b.sum_us.saturating_add(latency_us);
        b.max_us = b.max_us.max(latency_us);
        b.lat[bucket_of(latency_us)] += 1;
    }

    fn record_errors(&mut self, now_us: u64, n: u64) {
        self.bucket_at(now_us).errors += n;
    }

    /// Summarises the live window ending at `now_us`. A slot contributes
    /// iff its stamp falls inside the last [`RING_LEN`] bucket indices;
    /// anything older (or never written) is dead air.
    fn summarize(&self, now_us: u64) -> WindowSummary {
        let idx = now_us / self.width_us;
        let oldest = idx.saturating_sub(RING_LEN as u64 - 1);
        let mut merged = Bucket {
            stamp: 0,
            ..Bucket::default()
        };
        for b in &self.slots {
            if b.stamp >= oldest && b.stamp <= idx {
                merged.add(b);
            }
        }
        // Partial-window coverage: a ring only `idx + 1` buckets old has
        // seen that much wall-clock, not the full window — rates divide by
        // covered time, so a fresh daemon does not under-report req/s.
        let covered = (idx + 1).min(RING_LEN as u64) * self.width_us;
        WindowSummary {
            window_secs: RING_LEN as u64 * self.width_us / 1_000_000,
            covered_us: covered,
            count: merged.count,
            errors: merged.errors,
            sum_us: merged.sum_us,
            max_us: merged.max_us,
            p50_us: bucket_quantile(&merged.lat, merged.count, merged.max_us, 1, 2),
            p95_us: bucket_quantile(&merged.lat, merged.count, merged.max_us, 19, 20),
            p99_us: bucket_quantile(&merged.lat, merged.count, merged.max_us, 99, 100),
        }
    }

    /// Slot-wise merge for combining shard-local rings: equal stamps add,
    /// a newer stamp on either side wins the slot outright.
    fn merge_from(&mut self, other: &Ring) {
        debug_assert_eq!(self.width_us, other.width_us);
        for (mine, theirs) in self.slots.iter_mut().zip(other.slots.iter()) {
            if theirs.stamp == u64::MAX {
                continue;
            }
            if mine.stamp == theirs.stamp {
                mine.add(theirs);
                continue;
            }
            if mine.stamp == u64::MAX || theirs.stamp > mine.stamp {
                *mine = theirs.clone();
            }
        }
    }
}

/// Both rings for one operation.
struct OpWindows {
    secs: Ring,
    mins: Ring,
}

impl OpWindows {
    fn new() -> Self {
        OpWindows {
            secs: Ring::new(1_000_000),
            mins: Ring::new(60_000_000),
        }
    }
}

/// Aggregate view of one window: totals plus quantiles, all integers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WindowSummary {
    /// Nominal window length in seconds (60 or 3600).
    pub window_secs: u64,
    /// Wall-clock actually covered (≤ `window_secs`·10⁶ µs); rates divide
    /// by this so young daemons report honest throughput.
    pub covered_us: u64,
    pub count: u64,
    pub errors: u64,
    pub sum_us: u64,
    pub max_us: u64,
    pub p50_us: u64,
    pub p95_us: u64,
    pub p99_us: u64,
}

impl WindowSummary {
    /// Requests per second over the covered window, in milli-units
    /// (1000 = 1 req/s) so consumers stay integer-only.
    pub fn rate_milli(&self) -> u64 {
        if self.covered_us == 0 {
            return 0;
        }
        self.count.saturating_mul(1_000_000_000) / self.covered_us
    }

    /// Errors per thousand requests (0 when idle).
    pub fn error_permille(&self) -> u64 {
        if self.count == 0 {
            return 0;
        }
        self.errors.saturating_mul(1000) / self.count
    }

    /// Mean latency in microseconds, rounded down.
    pub fn mean_us(&self) -> u64 {
        self.sum_us.checked_div(self.count).unwrap_or(0)
    }

    fn to_json(self, out: &mut String) {
        let _ = write!(
            out,
            "{{\"window_secs\":{},\"covered_us\":{},\"count\":{},\"errors\":{},\
             \"sum_us\":{},\"max_us\":{},\"p50_us\":{},\"p95_us\":{},\"p99_us\":{}}}",
            self.window_secs,
            self.covered_us,
            self.count,
            self.errors,
            self.sum_us,
            self.max_us,
            self.p50_us,
            self.p95_us,
            self.p99_us
        );
    }

    /// Parses the object written by [`RollingSnapshot::to_json`] (absent
    /// keys default to 0). Used by `zodiac top` on the client side.
    pub fn from_json(v: &serde_json::Value) -> WindowSummary {
        let get = |k: &str| v.get(k).and_then(|x| x.as_u64()).unwrap_or(0);
        WindowSummary {
            window_secs: get("window_secs"),
            covered_us: get("covered_us"),
            count: get("count"),
            errors: get("errors"),
            sum_us: get("sum_us"),
            max_us: get("max_us"),
            p50_us: get("p50_us"),
            p95_us: get("p95_us"),
            p99_us: get("p99_us"),
        }
    }
}

/// Point-in-time summaries of one op's two windows.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpWindowSnapshot {
    pub last_1m: WindowSummary,
    pub last_1h: WindowSummary,
}

/// Name-sorted snapshot of every op's rolling windows.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RollingSnapshot {
    pub ops: BTreeMap<String, OpWindowSnapshot>,
}

impl RollingSnapshot {
    /// Single-line JSON: `{"ops":{"scan":{"last_1m":{...},"last_1h":{...}}}}`.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\"ops\":{");
        for (i, (name, op)) in self.ops.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            escape_json(name, &mut out);
            out.push_str("\":{\"last_1m\":");
            op.last_1m.to_json(&mut out);
            out.push_str(",\"last_1h\":");
            op.last_1h.to_json(&mut out);
            out.push('}');
        }
        out.push_str("}}");
        out
    }

    /// Parses the encoding of [`RollingSnapshot::to_json`].
    pub fn from_json(v: &serde_json::Value) -> RollingSnapshot {
        let mut snap = RollingSnapshot::default();
        let Some(ops) = v.get("ops").and_then(|o| o.as_object()) else {
            return snap;
        };
        for (name, op) in ops {
            let window = |k: &str| op.get(k).map(WindowSummary::from_json).unwrap_or_default();
            snap.ops.insert(
                name.clone(),
                OpWindowSnapshot {
                    last_1m: window("last_1m"),
                    last_1h: window("last_1h"),
                },
            );
        }
        snap
    }
}

/// The rolling-window recorder: per-op 1-minute and 1-hour rings over an
/// injected clock. Attach as an [`Obs`] sink — it feeds itself from the
/// `op.<name>.us` / `op.<name>.errors` naming convention — or record
/// directly via [`RollingRecorder::record_latency`].
///
/// [`Obs`]: crate::Obs
pub struct RollingRecorder {
    clock: Arc<dyn Clock>,
    ops: RwLock<HashMap<String, Arc<Mutex<OpWindows>>>>,
}

impl RollingRecorder {
    /// A recorder over the given clock ([`MonotonicClock`] in daemons,
    /// [`ManualClock`] in tests).
    ///
    /// [`MonotonicClock`]: crate::MonotonicClock
    /// [`ManualClock`]: crate::ManualClock
    pub fn new(clock: Arc<dyn Clock>) -> Self {
        RollingRecorder {
            clock,
            ops: RwLock::new(HashMap::new()),
        }
    }

    fn with_op<R>(&self, op: &str, f: impl FnOnce(&mut OpWindows) -> R) -> R {
        {
            let read = self.ops.read().unwrap_or_else(PoisonError::into_inner);
            if let Some(cell) = read.get(op) {
                let cell = cell.clone();
                drop(read);
                let mut w = cell.lock().unwrap_or_else(PoisonError::into_inner);
                return f(&mut w);
            }
        }
        let cell = {
            let mut write = self.ops.write().unwrap_or_else(PoisonError::into_inner);
            write
                .entry(op.to_string())
                .or_insert_with(|| Arc::new(Mutex::new(OpWindows::new())))
                .clone()
        };
        let mut w = cell.lock().unwrap_or_else(PoisonError::into_inner);
        f(&mut w)
    }

    /// Records one request's latency for `op` into both rings.
    pub fn record_latency(&self, op: &str, latency_us: u64) {
        let now = self.clock.now_us();
        self.with_op(op, |w| {
            w.secs.record(now, latency_us);
            w.mins.record(now, latency_us);
        });
    }

    /// Records `n` failures for `op`.
    pub fn record_errors(&self, op: &str, n: u64) {
        let now = self.clock.now_us();
        self.with_op(op, |w| {
            w.secs.record_errors(now, n);
            w.mins.record_errors(now, n);
        });
    }

    /// Snapshot of every op's live windows as of the clock's now.
    pub fn snapshot(&self) -> RollingSnapshot {
        let now = self.clock.now_us();
        let mut snap = RollingSnapshot::default();
        let read = self.ops.read().unwrap_or_else(PoisonError::into_inner);
        for (name, cell) in read.iter() {
            let w = cell.lock().unwrap_or_else(PoisonError::into_inner);
            snap.ops.insert(
                name.clone(),
                OpWindowSnapshot {
                    last_1m: w.secs.summarize(now),
                    last_1h: w.mins.summarize(now),
                },
            );
        }
        snap
    }

    /// Folds a shard-local recorder into this one, slot-wise: equal-stamp
    /// buckets add exactly, newer stamps win a slot. Both recorders must
    /// share a clock epoch (shards of one process do).
    pub fn merge_from(&self, other: &RollingRecorder) {
        let theirs = other.ops.read().unwrap_or_else(PoisonError::into_inner);
        for (name, cell) in theirs.iter() {
            let other_w = cell.lock().unwrap_or_else(PoisonError::into_inner);
            self.with_op(name, |w| {
                w.secs.merge_from(&other_w.secs);
                w.mins.merge_from(&other_w.mins);
            });
        }
    }
}

impl Recorder for RollingRecorder {
    fn counter(&self, name: &str, delta: u64) {
        if let Some(op) = name
            .strip_prefix(OP_PREFIX)
            .and_then(|rest| rest.strip_suffix(ERROR_SUFFIX))
        {
            self.record_errors(op, delta);
        }
    }

    fn gauge_set(&self, _name: &str, _value: u64) {}

    fn gauge_max(&self, _name: &str, _observed: u64) {}

    fn histogram(&self, name: &str, value: u64) {
        if let Some(op) = name
            .strip_prefix(OP_PREFIX)
            .and_then(|rest| rest.strip_suffix(LATENCY_SUFFIX))
        {
            self.record_latency(op, value);
        }
    }

    fn span(&self, _path: &str, _micros: u64) {}

    fn lifecycle(&self, _event: &CandidateEvent) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;

    fn recorder() -> (Arc<ManualClock>, RollingRecorder) {
        let clock = Arc::new(ManualClock::new());
        let rec = RollingRecorder::new(clock.clone());
        (clock, rec)
    }

    #[test]
    fn empty_recorder_snapshots_empty() {
        let (_c, rec) = recorder();
        assert!(rec.snapshot().ops.is_empty());
    }

    #[test]
    fn recorder_trait_intercepts_op_convention() {
        let (_c, rec) = recorder();
        rec.histogram("op.scan.us", 500);
        rec.counter("op.scan.errors", 2);
        // Non-convention names are ignored.
        rec.histogram("deploy.latency_us.success", 10);
        rec.counter("deploy.requests", 1);
        let snap = rec.snapshot();
        assert_eq!(snap.ops.len(), 1);
        let op = snap.ops.get("scan").unwrap();
        assert_eq!(op.last_1m.count, 1);
        assert_eq!(op.last_1m.errors, 2);
        assert_eq!(op.last_1h.count, 1);
    }

    #[test]
    fn window_rates_use_partial_coverage() {
        let (clock, rec) = recorder();
        clock.advance_secs(2); // three 1s buckets old (idx 0..=2)
        for _ in 0..30 {
            rec.record_latency("scan", 1_000);
        }
        let w = rec.snapshot().ops.get("scan").unwrap().last_1m;
        assert_eq!(w.count, 30);
        assert_eq!(w.covered_us, 3_000_000);
        // 30 requests over 3 covered seconds = 10 req/s.
        assert_eq!(w.rate_milli(), 10_000);
        // Once the ring is older than the window, coverage caps at 60s.
        clock.advance_secs(100);
        let w = rec.snapshot().ops.get("scan").unwrap().last_1m;
        assert_eq!(w.covered_us, 60_000_000);
    }

    #[test]
    fn buckets_expire_after_the_window() {
        let (clock, rec) = recorder();
        rec.record_latency("scan", 100);
        rec.record_errors("scan", 1);
        let w = rec.snapshot().ops.get("scan").unwrap().last_1m;
        assert_eq!((w.count, w.errors), (1, 1));
        // 59 seconds later the observation is still inside the minute…
        clock.advance_secs(59);
        let w = rec.snapshot().ops.get("scan").unwrap().last_1m;
        assert_eq!(w.count, 1);
        // …one more second and it has aged out of the 1m ring but remains
        // in the 1h ring.
        clock.advance_secs(1);
        let op = *rec.snapshot().ops.get("scan").unwrap();
        assert_eq!(op.last_1m.count, 0);
        assert_eq!(op.last_1m.p99_us, 0);
        assert_eq!(op.last_1h.count, 1);
        // After an hour the 1h ring forgets it too.
        clock.advance_secs(3600);
        let op = *rec.snapshot().ops.get("scan").unwrap();
        assert_eq!(op.last_1h.count, 0);
    }

    #[test]
    fn slot_reuse_resets_stale_buckets() {
        let (clock, rec) = recorder();
        rec.record_latency("scan", 100);
        // 60s later the same slot index recurs; the old contents must not
        // leak into the new bucket.
        clock.advance_secs(60);
        rec.record_latency("scan", 200);
        let w = rec.snapshot().ops.get("scan").unwrap().last_1m;
        assert_eq!(w.count, 1);
        assert_eq!(w.max_us, 200);
    }

    #[test]
    fn quantiles_match_log2_bucket_resolution() {
        let (clock, rec) = recorder();
        // 98 fast requests, 2 slow ones: p50/p95 in the fast bucket,
        // p99 in the slow one, everything clamped to the observed max.
        for _ in 0..98 {
            rec.record_latency("scan", 100);
        }
        rec.record_latency("scan", 50_000);
        rec.record_latency("scan", 60_000);
        clock.advance_secs(1);
        let w = rec.snapshot().ops.get("scan").unwrap().last_1m;
        assert_eq!(w.count, 100);
        assert_eq!(w.max_us, 60_000);
        assert_eq!(w.p50_us, 127); // bucket_upper(bucket_of(100))
        assert_eq!(w.p95_us, 127);
        assert_eq!(w.p99_us, 60_000); // saturated to observed max
        assert!(w.mean_us() >= 100);
    }

    #[test]
    fn deterministic_under_manual_clock() {
        let run = || {
            let (clock, rec) = recorder();
            for i in 0..500u64 {
                rec.record_latency("scan", 100 + i % 37);
                if i % 13 == 0 {
                    rec.record_errors("scan", 1);
                }
                clock.advance_us(250_000);
            }
            rec.snapshot().to_json()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn merge_across_shards_is_exact_for_equal_stamps() {
        let clock = Arc::new(ManualClock::new());
        let a = RollingRecorder::new(clock.clone());
        let b = RollingRecorder::new(clock.clone());
        let whole = RollingRecorder::new(clock.clone());
        for i in 0..40u64 {
            let lat = 100 + i * 10;
            if i % 2 == 0 {
                a.record_latency("mine", lat);
            } else {
                b.record_latency("mine", lat);
            }
            whole.record_latency("mine", lat);
            if i % 8 == 0 {
                a.record_errors("mine", 1);
                whole.record_errors("mine", 1);
            }
            clock.advance_us(500_000);
        }
        let merged = RollingRecorder::new(clock.clone());
        merged.merge_from(&a);
        merged.merge_from(&b);
        assert_eq!(merged.snapshot(), whole.snapshot());
    }

    #[test]
    fn merge_prefers_newer_slots_on_stamp_conflict() {
        let clock = Arc::new(ManualClock::new());
        let old = RollingRecorder::new(clock.clone());
        old.record_latency("scan", 111);
        // A recorder that wrote the same slot one full ring later.
        let newer = RollingRecorder::new(clock.clone());
        clock.advance_secs(60);
        newer.record_latency("scan", 222);
        old.merge_from(&newer);
        let w = old.snapshot().ops.get("scan").unwrap().last_1m;
        assert_eq!(w.count, 1);
        assert_eq!(w.max_us, 222);
    }

    #[test]
    fn json_round_trips_through_compat_serde() {
        let (clock, rec) = recorder();
        rec.record_latency("scan", 300);
        rec.record_errors("scan", 1);
        rec.record_latency("repair", 9_999);
        clock.advance_secs(3);
        let snap = rec.snapshot();
        let text = snap.to_json();
        let value: serde_json::Value = serde_json::from_str(&text).expect("rolling JSON parses");
        assert_eq!(RollingSnapshot::from_json(&value), snap);
    }

    #[test]
    fn error_rate_derivation() {
        let w = WindowSummary {
            window_secs: 60,
            covered_us: 10_000_000,
            count: 40,
            errors: 10,
            ..WindowSummary::default()
        };
        assert_eq!(w.error_permille(), 250);
        assert_eq!(w.rate_milli(), 4_000);
        assert_eq!(WindowSummary::default().error_permille(), 0);
        assert_eq!(WindowSummary::default().rate_milli(), 0);
    }
}
