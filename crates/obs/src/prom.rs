//! Prometheus text-format exposition (version 0.0.4).
//!
//! Renders a cumulative [`MetricsSnapshot`] and (optionally) a
//! [`RollingSnapshot`] + [`TailExemplars`] into the plain-text format every
//! Prometheus-compatible scraper understands. The mapping is fixed so the
//! series a dashboard is built on never move:
//!
//! * registry counters → `zodiac_<name>_total` (TYPE `counter`, cumulative
//!   and therefore monotone across scrapes);
//! * registry gauges → `zodiac_<name>` (TYPE `gauge`);
//! * registry histograms → `zodiac_<name>` summaries: `{quantile="0.5"}`,
//!   `{quantile="0.95"}`, `{quantile="0.99"}`, `_sum`, `_count`;
//! * rolling windows → `zodiac_op_*` gauge families labelled
//!   `{op="…",window="1m"|"1h"}` (windowed values can fall, so they are
//!   gauges by definition);
//! * tail exemplars → `zodiac_op_slowest_us{op="…"}` plus one
//!   `zodiac_op_exemplar_fingerprint` series per kept fingerprint.
//!
//! Metric names are mangled to the Prometheus alphabet (`[a-zA-Z0-9_]`,
//! dots and slashes become underscores); label values are escaped per the
//! exposition spec. Rendering iterates name-sorted maps, so the output is
//! byte-deterministic for a given input — pinned by a golden test.
//!
//! [`TailExemplars`]: crate::TailExemplars

use crate::rolling::RollingSnapshot;
use crate::snapshot::MetricsSnapshot;
use crate::TailExemplars;
use std::fmt::Write as _;

/// Mangles a dotted zodiac metric name into the Prometheus alphabet and
/// applies the `zodiac_` namespace prefix.
pub fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 7);
    out.push_str("zodiac_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Escapes a label value per the exposition format (`\` → `\\`, `"` → `\"`,
/// newline → `\n`).
fn escape_label(value: &str, out: &mut String) {
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
}

fn series(out: &mut String, family: &str, labels: &[(&str, &str)], value: u64) {
    out.push_str(family);
    if !labels.is_empty() {
        out.push('{');
        for (i, (k, v)) in labels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(k);
            out.push_str("=\"");
            escape_label(v, out);
            out.push('"');
        }
        out.push('}');
    }
    let _ = writeln!(out, " {value}");
}

fn header(out: &mut String, family: &str, kind: &str, help: &str) {
    let _ = writeln!(out, "# HELP {family} {help}");
    let _ = writeln!(out, "# TYPE {family} {kind}");
}

/// Renders the full exposition page. `rolling` and `exemplars` are optional
/// so the same renderer serves batch snapshots (no daemon) and live ones.
pub fn render_prometheus(
    snapshot: &MetricsSnapshot,
    rolling: Option<&RollingSnapshot>,
    exemplars: Option<&TailExemplars>,
) -> String {
    let mut out = String::with_capacity(4096);

    for (name, value) in &snapshot.counters {
        let family = format!("{}_total", prom_name(name));
        header(&mut out, &family, "counter", "Cumulative zodiac counter.");
        series(&mut out, &family, &[], *value);
    }

    for (name, value) in &snapshot.gauges {
        let family = prom_name(name);
        header(&mut out, &family, "gauge", "Zodiac gauge.");
        series(&mut out, &family, &[], *value);
    }

    for (name, h) in &snapshot.histograms {
        let family = prom_name(name);
        header(
            &mut out,
            &family,
            "summary",
            "Zodiac histogram (microseconds unless named otherwise).",
        );
        series(&mut out, &family, &[("quantile", "0.5")], h.p50);
        series(&mut out, &family, &[("quantile", "0.95")], h.p95);
        series(&mut out, &family, &[("quantile", "0.99")], h.p99);
        series(&mut out, &format!("{family}_sum"), &[], h.sum);
        series(&mut out, &format!("{family}_count"), &[], h.count);
    }

    if let Some(rolling) = rolling {
        if !rolling.ops.is_empty() {
            // (op, window, summary) triples in a fixed order: name-sorted
            // ops, 1m before 1h — the series layout dashboards rely on.
            let triples: Vec<(&str, &str, crate::WindowSummary)> = rolling
                .ops
                .iter()
                .flat_map(|(op, w)| {
                    [
                        (op.as_str(), "1m", w.last_1m),
                        (op.as_str(), "1h", w.last_1h),
                    ]
                })
                .collect();
            let windows = |out: &mut String, f: &mut dyn FnMut(&mut String, &str, &str)| {
                for (op, win, _) in &triples {
                    f(out, op, win);
                }
            };
            let lookup = |op: &str, window: &str| {
                let w = &rolling.ops[op];
                if window == "1m" {
                    w.last_1m
                } else {
                    w.last_1h
                }
            };

            header(
                &mut out,
                "zodiac_op_requests",
                "gauge",
                "Requests observed in the rolling window.",
            );
            windows(&mut out, &mut |out, op, win| {
                series(
                    out,
                    "zodiac_op_requests",
                    &[("op", op), ("window", win)],
                    lookup(op, win).count,
                );
            });

            header(
                &mut out,
                "zodiac_op_errors",
                "gauge",
                "Errors observed in the rolling window.",
            );
            windows(&mut out, &mut |out, op, win| {
                series(
                    out,
                    "zodiac_op_errors",
                    &[("op", op), ("window", win)],
                    lookup(op, win).errors,
                );
            });

            header(
                &mut out,
                "zodiac_op_rate_milli",
                "gauge",
                "Windowed request rate in milli-requests per second.",
            );
            windows(&mut out, &mut |out, op, win| {
                series(
                    out,
                    "zodiac_op_rate_milli",
                    &[("op", op), ("window", win)],
                    lookup(op, win).rate_milli(),
                );
            });

            header(
                &mut out,
                "zodiac_op_latency_us",
                "gauge",
                "Windowed latency quantiles, microseconds.",
            );
            windows(&mut out, &mut |out, op, win| {
                let w = lookup(op, win);
                for (q, v) in [("0.5", w.p50_us), ("0.95", w.p95_us), ("0.99", w.p99_us)] {
                    series(
                        out,
                        "zodiac_op_latency_us",
                        &[("op", op), ("window", win), ("quantile", q)],
                        v,
                    );
                }
            });

            header(
                &mut out,
                "zodiac_op_latency_us_max",
                "gauge",
                "Slowest request in the rolling window, microseconds.",
            );
            windows(&mut out, &mut |out, op, win| {
                series(
                    out,
                    "zodiac_op_latency_us_max",
                    &[("op", op), ("window", win)],
                    lookup(op, win).max_us,
                );
            });
        }
    }

    if let Some(exemplars) = exemplars {
        let snap = exemplars.snapshot();
        if !snap.is_empty() {
            header(
                &mut out,
                "zodiac_op_slowest_us",
                "gauge",
                "Latency of the slowest retained request per op, microseconds.",
            );
            for (op, kept) in &snap {
                if let Some(slowest) = kept.first() {
                    series(
                        &mut out,
                        "zodiac_op_slowest_us",
                        &[("op", op)],
                        slowest.latency_us,
                    );
                }
            }
            header(
                &mut out,
                "zodiac_op_exemplar_fingerprint",
                "gauge",
                "Check fingerprints touched by the slowest retained request per op.",
            );
            for (op, kept) in &snap {
                if let Some(slowest) = kept.first() {
                    for fp in &slowest.fingerprints {
                        let fp_str = format!("{fp:016x}");
                        series(
                            &mut out,
                            "zodiac_op_exemplar_fingerprint",
                            &[("op", op), ("fingerprint", &fp_str)],
                            1,
                        );
                    }
                }
            }
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;
    use crate::rolling::RollingRecorder;
    use crate::snapshot::HistogramSummary;
    use crate::Exemplar;
    use std::collections::HashSet;
    use std::sync::Arc;

    fn sample_snapshot() -> MetricsSnapshot {
        let mut s = MetricsSnapshot::default();
        s.counters.insert("deploy.requests".into(), 42);
        s.counters.insert("scan.cache_hits".into(), 7);
        s.gauges.insert("heap.live_bytes".into(), 1024);
        s.histograms.insert(
            "span.pipeline/mining".into(),
            HistogramSummary {
                count: 2,
                sum: 100,
                min: 40,
                max: 60,
                p50: 60,
                p95: 60,
                p99: 60,
            },
        );
        s
    }

    fn sample_rolling() -> RollingSnapshot {
        let clock = Arc::new(ManualClock::new());
        let rec = RollingRecorder::new(clock.clone());
        rec.record_latency("scan", 100);
        rec.record_latency("scan", 900);
        rec.record_errors("scan", 1);
        clock.advance_secs(2);
        rec.snapshot()
    }

    fn sample_exemplars() -> TailExemplars {
        let t = TailExemplars::new(4);
        t.observe(
            "scan",
            Exemplar {
                latency_us: 900,
                ts_us: 1,
                span_id: 17,
                fingerprints: vec![0xABCD],
            },
        );
        t
    }

    #[test]
    fn golden_rendering_is_pinned_byte_for_byte() {
        let text = render_prometheus(
            &sample_snapshot(),
            Some(&sample_rolling()),
            Some(&sample_exemplars()),
        );
        let expected = "\
# HELP zodiac_deploy_requests_total Cumulative zodiac counter.
# TYPE zodiac_deploy_requests_total counter
zodiac_deploy_requests_total 42
# HELP zodiac_scan_cache_hits_total Cumulative zodiac counter.
# TYPE zodiac_scan_cache_hits_total counter
zodiac_scan_cache_hits_total 7
# HELP zodiac_heap_live_bytes Zodiac gauge.
# TYPE zodiac_heap_live_bytes gauge
zodiac_heap_live_bytes 1024
# HELP zodiac_span_pipeline_mining Zodiac histogram (microseconds unless named otherwise).
# TYPE zodiac_span_pipeline_mining summary
zodiac_span_pipeline_mining{quantile=\"0.5\"} 60
zodiac_span_pipeline_mining{quantile=\"0.95\"} 60
zodiac_span_pipeline_mining{quantile=\"0.99\"} 60
zodiac_span_pipeline_mining_sum 100
zodiac_span_pipeline_mining_count 2
";
        // Pin the registry-derived head exactly; the windowed families are
        // pinned structurally below and byte-for-byte by the golden test in
        // tests/prom_golden.rs.
        assert!(
            text.starts_with(expected),
            "exposition prefix drifted:\n{text}"
        );
        assert!(text.contains("zodiac_op_requests{op=\"scan\",window=\"1m\"} 2\n"));
        assert!(text.contains("zodiac_op_errors{op=\"scan\",window=\"1m\"} 1\n"));
        assert!(text
            .contains("zodiac_op_latency_us{op=\"scan\",window=\"1m\",quantile=\"0.99\"} 900\n"));
        assert!(text.contains("zodiac_op_slowest_us{op=\"scan\"} 900\n"));
        assert!(text.contains(
            "zodiac_op_exemplar_fingerprint{op=\"scan\",fingerprint=\"000000000000abcd\"} 1\n"
        ));
    }

    #[test]
    fn no_duplicate_series_and_valid_charset() {
        let text = render_prometheus(
            &sample_snapshot(),
            Some(&sample_rolling()),
            Some(&sample_exemplars()),
        );
        let mut seen = HashSet::new();
        for line in text.lines() {
            if line.starts_with('#') {
                continue;
            }
            let key = line.rsplit_once(' ').map(|(k, _)| k).unwrap_or(line);
            assert!(seen.insert(key.to_string()), "duplicate series: {key}");
            let name = key.split('{').next().unwrap();
            assert!(
                name.chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
                "invalid metric name: {name}"
            );
        }
        assert!(seen.len() > 10);
    }

    #[test]
    fn rendering_is_deterministic() {
        let snap = sample_snapshot();
        let roll = sample_rolling();
        let a = render_prometheus(&snap, Some(&roll), None);
        let b = render_prometheus(&snap, Some(&roll), None);
        assert_eq!(a, b);
    }

    #[test]
    fn label_values_are_escaped() {
        let clock = Arc::new(ManualClock::new());
        let rec = RollingRecorder::new(clock);
        rec.record_latency("we\"ird\\op", 5);
        let text = render_prometheus(&MetricsSnapshot::default(), Some(&rec.snapshot()), None);
        assert!(text.contains("op=\"we\\\"ird\\\\op\""));
    }

    #[test]
    fn name_mangling_covers_dots_slashes_and_prefix() {
        assert_eq!(prom_name("deploy.requests"), "zodiac_deploy_requests");
        assert_eq!(
            prom_name("span.pipeline/mining"),
            "zodiac_span_pipeline_mining"
        );
        assert_eq!(prom_name("9weird name"), "zodiac_9weird_name");
    }

    #[test]
    fn empty_inputs_render_empty_page() {
        let text = render_prometheus(&MetricsSnapshot::default(), None, None);
        assert!(text.is_empty());
    }
}
