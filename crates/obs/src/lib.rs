//! Pipeline observability for the mine → filter → schedule → mutate →
//! deploy funnel.
//!
//! Zodiac's value is its funnel: candidates die at well-defined stages
//! (statistical filtering, false-positive removal, counterexample demotion)
//! and wall-clock concentrates in well-defined places (deployment, solver
//! mutation). This crate gives every stage a first-class instrumentation
//! surface instead of ad-hoc counter structs — and, beyond aggregates, a
//! *causal* record: structured spans with identities and parent links, and
//! per-candidate lifecycle events keyed by check fingerprint.
//!
//! * the [`Recorder`] trait — counters, gauges, histograms, structured
//!   stage spans ([`SpanRecord`]), and candidate lifecycle events
//!   ([`CandidateEvent`]) — implemented by pluggable sinks;
//! * [`MemoryRecorder`], a sharded in-memory registry whose hot path is a
//!   read-lock + atomic add (no allocation, no write-lock after first
//!   touch), cheap enough to stay enabled in benches and tests;
//! * [`JsonLinesSink`], a streaming JSON-lines event sink for the CLI's
//!   `--trace-out` (schema v2: header, spans with id/parent/attrs,
//!   lifecycle events, final metrics snapshot);
//! * [`PerfettoSink`], a buffering exporter producing Chrome trace-event
//!   JSON that opens directly in `ui.perfetto.dev` (`--perfetto-out`);
//! * [`Obs`], a cheaply-clonable fan-out handle threaded through the
//!   pipeline. A disabled (null) handle makes every call a no-op over an
//!   empty sink list, so un-instrumented callers pay nothing measurable;
//! * [`RollingRecorder`], time-windowed (last-minute / last-hour) per-op
//!   latency quantiles and error rates over an injected [`Clock`], fed by
//!   the serving-boundary naming convention below;
//! * [`TailExemplars`], a bounded reservoir of the slowest requests per op
//!   with span ids and check fingerprints, bridging quantiles back to
//!   per-candidate provenance (`zodiac explain`);
//! * [`render_prometheus`], text-format exposition of snapshots, windows,
//!   and exemplars for `GET /metrics`.
//!
//! # Span identity and parenting
//!
//! Every span gets a `u64` id from the handle's shared [trace context] and
//! a parent link. Parenting is *ambient*: [`Obs::start_span`] reads the
//! current ambient parent, then installs its own id as the ambient parent
//! until the guard finishes (LIFO, matching RAII scopes on the pipeline
//! thread). Concurrent subsystems — the deployment engine's worker pool —
//! must use [`Obs::start_leaf_span`], which *reads* the ambient parent but
//! never installs itself, so racing workers cannot corrupt the scope stack.
//! Handles cloned from one another (including [`Obs::with_sink`]) share one
//! trace context; handles built with [`Obs::fanout`]/[`Obs::single`] start
//! a fresh one (ids from 1, timestamps from 0).
//!
//! [trace context]: Obs::with_sink
//!
//! # Span naming convention
//!
//! Span *names* are hierarchical by path, slash-separated, rooted at the
//! subsystem — `pipeline/corpus`, `pipeline/mining/stats`,
//! `pipeline/validation/iter` — and **bounded**: dynamic dimensions
//! (iteration index, wave number, episode) are span attributes, not name
//! segments, so the `span.<path>` histogram namespace in the registry
//! stays finite no matter how long a run iterates.
//!
//! # Metric naming convention
//!
//! Dotted, lowercase, subsystem-first: `corpus.motif.<name>`,
//! `mining.filtered.confidence`, `validation.fp.deployable`,
//! `deploy.cache_hits`, `deploy.latency_us.success`. Dynamic label values
//! (motif names, template families, failure phases) go in the last
//! segment.
//!
//! One family is special: `op.<name>.us` histograms and `op.<name>.errors`
//! counters mark a subsystem's *serving boundary* (one request served, its
//! end-to-end latency, whether it failed). The cumulative registry stores
//! them like any other metric, while a [`RollingRecorder`] attached to the
//! same handle folds them into live windows — so a subsystem opts into
//! operational telemetry just by naming its boundary metrics this way.

mod alloc;
mod clock;
mod event;
mod exemplar;
mod jsonl;
mod perfetto;
mod prom;
mod registry;
mod rolling;
mod snapshot;

pub use alloc::CountingAlloc;
pub use clock::{Clock, ManualClock, MonotonicClock};
pub use event::{CandidateEvent, Lifecycle, Polarity};
pub use exemplar::{Exemplar, TailExemplars};
pub use jsonl::JsonLinesSink;
pub use perfetto::{chrome_trace_json, PerfettoSink, TraceInstant, TraceSpan};
pub use prom::{prom_name, render_prometheus};
pub use registry::MemoryRecorder;
pub use rolling::{OpWindowSnapshot, RollingRecorder, RollingSnapshot, WindowSummary, RING_LEN};
pub use snapshot::{HistogramSummary, MetricsSnapshot};

use std::borrow::Cow;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Version of the JSON-lines trace schema emitted by [`JsonLinesSink`].
pub const TRACE_SCHEMA_VERSION: u64 = 2;

/// A span attribute value (structured key/value pairs on [`SpanRecord`]s).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttrValue {
    /// An unsigned integer attribute (iteration index, batch size, seed).
    U64(u64),
    /// A string attribute.
    Str(String),
}

impl From<u64> for AttrValue {
    fn from(v: u64) -> Self {
        AttrValue::U64(v)
    }
}

impl From<usize> for AttrValue {
    fn from(v: usize) -> Self {
        AttrValue::U64(v as u64)
    }
}

impl From<&str> for AttrValue {
    fn from(v: &str) -> Self {
        AttrValue::Str(v.to_string())
    }
}

impl From<String> for AttrValue {
    fn from(v: String) -> Self {
        AttrValue::Str(v)
    }
}

impl fmt::Display for AttrValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttrValue::U64(v) => write!(f, "{v}"),
            AttrValue::Str(s) => write!(f, "{s}"),
        }
    }
}

/// A completed structured span, passed to every sink at span end.
///
/// `parent == 0` marks a root span; `tid` is a small per-thread ordinal
/// (the pipeline thread that created the trace context is 1), `ts_us` is
/// the span's start offset from the trace epoch and `dur_us` its monotonic
/// duration, both in microseconds.
#[derive(Debug, Clone)]
pub struct SpanRecord<'a> {
    /// Span id, unique within one trace context (never 0).
    pub id: u64,
    /// Parent span id, 0 for roots.
    pub parent: u64,
    /// Per-thread ordinal of the recording thread.
    pub tid: u64,
    /// Bounded, slash-separated span path.
    pub path: &'a str,
    /// Start offset from the trace epoch, microseconds.
    pub ts_us: u64,
    /// Monotonic duration, microseconds.
    pub dur_us: u64,
    /// Structured attributes attached via [`SpanGuard::attr`].
    pub attrs: &'a [(&'static str, AttrValue)],
}

/// A metrics + tracing sink. All methods take `&self`: recorders are shared
/// across worker threads (the deployment engine records from its pool).
pub trait Recorder: Send + Sync {
    /// Adds `delta` to the counter `name`.
    fn counter(&self, name: &str, delta: u64);
    /// Sets the gauge `name` to `value`.
    fn gauge_set(&self, name: &str, value: u64);
    /// Raises the gauge `name` to `observed` if higher (high-water mark).
    fn gauge_max(&self, name: &str, observed: u64);
    /// Records one observation of `value` into the histogram `name`.
    fn histogram(&self, name: &str, value: u64);
    /// Records a completed stage span: `path` per the naming convention,
    /// `micros` of monotonic elapsed time. Kept for sinks that only care
    /// about durations; structured sinks should override
    /// [`Recorder::span_record`] instead.
    fn span(&self, path: &str, micros: u64);
    /// Records a completed structured span (identity, parent link, thread,
    /// timestamps, attributes). Defaults to forwarding the duration to
    /// [`Recorder::span`], so aggregate-only sinks need no changes.
    fn span_record(&self, rec: &SpanRecord<'_>) {
        self.span(rec.path, rec.dur_us);
    }
    /// Records a per-candidate lifecycle event. Defaults to a no-op so
    /// aggregate-only sinks ignore provenance.
    fn lifecycle(&self, _event: &CandidateEvent) {}
}

/// Shared per-trace state: the span id allocator, the ambient parent cell,
/// the epoch all timestamps are relative to, and the thread-ordinal
/// allocator. One context is shared by every clone of an [`Obs`] handle.
struct TraceCtx {
    next_id: AtomicU64,
    ambient: AtomicU64,
    next_tid: AtomicU64,
    epoch: Instant,
}

impl Default for TraceCtx {
    fn default() -> Self {
        TraceCtx {
            next_id: AtomicU64::new(1),
            ambient: AtomicU64::new(0),
            next_tid: AtomicU64::new(1),
            epoch: Instant::now(),
        }
    }
}

impl TraceCtx {
    fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Small per-thread ordinal, allocated on first use per (thread,
    /// context) pair. The thread that creates the context first is 1.
    fn tid(self: &Arc<Self>) -> u64 {
        thread_local! {
            static TID: std::cell::Cell<(usize, u64)> = const { std::cell::Cell::new((0, 0)) };
        }
        let key = Arc::as_ptr(self) as usize;
        TID.with(|cell| {
            let (cached_key, cached_tid) = cell.get();
            if cached_key == key {
                return cached_tid;
            }
            let tid = self.next_tid.fetch_add(1, Ordering::Relaxed);
            cell.set((key, tid));
            tid
        })
    }
}

/// A cheaply-clonable handle fanning instrumentation out to zero or more
/// sinks. The zero-sink ("null") handle is the default and makes every
/// record call a no-op.
#[derive(Clone)]
pub struct Obs {
    sinks: Arc<[Arc<dyn Recorder>]>,
    ctx: Arc<TraceCtx>,
}

impl Default for Obs {
    fn default() -> Self {
        Obs {
            sinks: Arc::from(Vec::new().into_boxed_slice()),
            ctx: Arc::new(TraceCtx::default()),
        }
    }
}

impl Obs {
    /// The disabled handle: every call is a no-op.
    pub fn null() -> Self {
        Obs::default()
    }

    /// A handle recording into a single sink, with a fresh trace context.
    pub fn single(sink: Arc<dyn Recorder>) -> Self {
        Obs::fanout(vec![sink])
    }

    /// A handle fanning out to several sinks (e.g. a registry plus a
    /// JSON-lines trace file), with a fresh trace context.
    pub fn fanout(sinks: Vec<Arc<dyn Recorder>>) -> Self {
        Obs {
            sinks: Arc::from(sinks.into_boxed_slice()),
            ctx: Arc::new(TraceCtx::default()),
        }
    }

    /// A handle with `sink` appended, **sharing this handle's trace
    /// context** — span ids, the ambient-parent scope, and the timestamp
    /// epoch stay coherent across both. Subsystems that keep a private
    /// registry while honouring a caller's handle (the deployment engine)
    /// must use this instead of [`Obs::fanout`], which would start a
    /// second id space.
    pub fn with_sink(&self, sink: Arc<dyn Recorder>) -> Self {
        let mut sinks: Vec<Arc<dyn Recorder>> = self.sinks.to_vec();
        sinks.push(sink);
        Obs {
            sinks: Arc::from(sinks.into_boxed_slice()),
            ctx: self.ctx.clone(),
        }
    }

    /// True if at least one sink is attached. Callers building dynamic
    /// metric names or lifecycle payloads (string concatenation,
    /// fingerprint hashing) should guard on this so the null handle stays
    /// free.
    pub fn is_enabled(&self) -> bool {
        !self.sinks.is_empty()
    }

    /// See [`Recorder::counter`].
    pub fn counter(&self, name: &str, delta: u64) {
        for s in self.sinks.iter() {
            s.counter(name, delta);
        }
    }

    /// See [`Recorder::gauge_set`].
    pub fn gauge_set(&self, name: &str, value: u64) {
        for s in self.sinks.iter() {
            s.gauge_set(name, value);
        }
    }

    /// See [`Recorder::gauge_max`].
    pub fn gauge_max(&self, name: &str, observed: u64) {
        for s in self.sinks.iter() {
            s.gauge_max(name, observed);
        }
    }

    /// See [`Recorder::histogram`].
    pub fn histogram(&self, name: &str, value: u64) {
        for s in self.sinks.iter() {
            s.histogram(name, value);
        }
    }

    /// Records an already-measured span (duration only, no identity).
    pub fn span(&self, path: &str, micros: u64) {
        for s in self.sinks.iter() {
            s.span(path, micros);
        }
    }

    /// Emits a per-candidate lifecycle event keyed by check fingerprint.
    /// The event timestamp is stamped from the trace epoch. Free on a
    /// disabled handle, but callers should still gate payload construction
    /// on [`Obs::is_enabled`].
    pub fn lifecycle(&self, fingerprint: u64, kind: Lifecycle) {
        if !self.is_enabled() {
            return;
        }
        let event = CandidateEvent {
            fingerprint,
            ts_us: self.ctx.now_us(),
            kind,
        };
        for s in self.sinks.iter() {
            s.lifecycle(&event);
        }
    }

    /// Starts a *scoped* stage span: the span's parent is the current
    /// ambient span and the span becomes the ambient parent for everything
    /// started before the guard finishes. Use from straight-line pipeline
    /// code; guards must finish in LIFO order (RAII gives this for free).
    pub fn start_span(&self, path: impl Into<Cow<'static, str>>) -> SpanGuard {
        self.span_guard(path.into(), true)
    }

    /// Starts a *leaf* span: parented under the current ambient span but
    /// never installed as the ambient parent itself. Safe to use from
    /// concurrent worker threads (the deployment engine's per-request
    /// spans), where a scoped span would corrupt the shared scope stack.
    pub fn start_leaf_span(&self, path: impl Into<Cow<'static, str>>) -> SpanGuard {
        self.span_guard(path.into(), false)
    }

    fn span_guard(&self, path: Cow<'static, str>, scoped: bool) -> SpanGuard {
        let (id, parent, ts_us) = if self.is_enabled() {
            let id = self.ctx.next_id.fetch_add(1, Ordering::Relaxed);
            let parent = self.ctx.ambient.load(Ordering::Relaxed);
            if scoped {
                self.ctx.ambient.store(id, Ordering::Relaxed);
            }
            (id, parent, self.ctx.now_us())
        } else {
            (0, 0, 0)
        };
        SpanGuard {
            obs: self.clone(),
            path,
            start: Instant::now(),
            ts_us,
            id,
            parent,
            scoped,
            attrs: Vec::new(),
            done: false,
        }
    }
}

/// An [`Obs`] handle is itself a recorder, so handles can nest: a subsystem
/// can fan out to its own registry *plus* a caller-provided handle. The
/// nested handle's own trace context is unused — structured records pass
/// through verbatim.
impl Recorder for Obs {
    fn counter(&self, name: &str, delta: u64) {
        Obs::counter(self, name, delta);
    }
    fn gauge_set(&self, name: &str, value: u64) {
        Obs::gauge_set(self, name, value);
    }
    fn gauge_max(&self, name: &str, observed: u64) {
        Obs::gauge_max(self, name, observed);
    }
    fn histogram(&self, name: &str, value: u64) {
        Obs::histogram(self, name, value);
    }
    fn span(&self, path: &str, micros: u64) {
        Obs::span(self, path, micros);
    }
    fn span_record(&self, rec: &SpanRecord<'_>) {
        for s in self.sinks.iter() {
            s.span_record(rec);
        }
    }
    fn lifecycle(&self, event: &CandidateEvent) {
        for s in self.sinks.iter() {
            s.lifecycle(event);
        }
    }
}

impl fmt::Debug for Obs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Obs({} sink(s))", self.sinks.len())
    }
}

/// RAII guard for a stage span; records on drop. Literal span paths (the
/// common case — every hot serving path) borrow, so starting a span
/// allocates nothing.
pub struct SpanGuard {
    obs: Obs,
    path: Cow<'static, str>,
    start: Instant,
    ts_us: u64,
    id: u64,
    parent: u64,
    scoped: bool,
    attrs: Vec<(&'static str, AttrValue)>,
    done: bool,
}

impl SpanGuard {
    /// Attaches a structured attribute to the span (recorded at finish).
    /// Dynamic dimensions — iteration index, wave, batch size — belong
    /// here, not in the span path, so histogram names stay bounded.
    pub fn attr(&mut self, key: &'static str, value: impl Into<AttrValue>) {
        if self.obs.is_enabled() {
            self.attrs.push((key, value.into()));
        }
    }

    /// This span's id (0 on a disabled handle).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Ends the span now (instead of at scope exit) and records it.
    pub fn finish(mut self) {
        self.record();
    }

    /// Elapsed time so far.
    pub fn elapsed_micros(&self) -> u64 {
        self.start.elapsed().as_micros() as u64
    }

    fn record(&mut self) {
        if !self.done {
            self.done = true;
            if self.obs.is_enabled() {
                if self.scoped {
                    // Restore the previous ambient parent (LIFO contract).
                    self.obs.ctx.ambient.store(self.parent, Ordering::Relaxed);
                }
                let rec = SpanRecord {
                    id: self.id,
                    parent: self.parent,
                    tid: self.obs.ctx.tid(),
                    path: self.path.as_ref(),
                    ts_us: self.ts_us,
                    dur_us: self.start.elapsed().as_micros() as u64,
                    attrs: &self.attrs,
                };
                for s in self.obs.sinks.iter() {
                    s.span_record(&rec);
                }
            }
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        self.record();
    }
}

/// JSON string escaping shared by the sink and snapshot encoders.
pub(crate) fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[test]
    fn null_handle_is_disabled_and_free() {
        let obs = Obs::null();
        assert!(!obs.is_enabled());
        obs.counter("x", 1);
        obs.histogram("y", 2);
        let g = obs.start_span("a/b");
        assert_eq!(g.id(), 0);
        g.finish();
        obs.lifecycle(1, Lifecycle::Validated { via_group: false });
    }

    #[test]
    fn fanout_reaches_every_sink() {
        let a = Arc::new(MemoryRecorder::new());
        let b = Arc::new(MemoryRecorder::new());
        let obs = Obs::fanout(vec![a.clone(), b.clone()]);
        assert!(obs.is_enabled());
        obs.counter("hits", 3);
        obs.counter("hits", 2);
        assert_eq!(a.snapshot().counter("hits"), 5);
        assert_eq!(b.snapshot().counter("hits"), 5);
    }

    #[test]
    fn span_guard_records_into_registry() {
        let reg = Arc::new(MemoryRecorder::new());
        let obs = Obs::single(reg.clone());
        {
            let _g = obs.start_span("pipeline/mining");
        }
        obs.start_span("pipeline/mining").finish();
        let snap = reg.snapshot();
        let h = snap
            .histograms
            .get("span.pipeline/mining")
            .expect("span histogram present");
        assert_eq!(h.count, 2);
    }

    /// A sink that captures structured span records for assertions.
    #[derive(Default)]
    struct CaptureSink {
        spans: Mutex<Vec<(u64, u64, String)>>,
        events: Mutex<Vec<CandidateEvent>>,
    }

    impl Recorder for CaptureSink {
        fn counter(&self, _: &str, _: u64) {}
        fn gauge_set(&self, _: &str, _: u64) {}
        fn gauge_max(&self, _: &str, _: u64) {}
        fn histogram(&self, _: &str, _: u64) {}
        fn span(&self, _: &str, _: u64) {}
        fn span_record(&self, rec: &SpanRecord<'_>) {
            self.spans
                .lock()
                .unwrap()
                .push((rec.id, rec.parent, rec.path.to_string()));
        }
        fn lifecycle(&self, event: &CandidateEvent) {
            self.events.lock().unwrap().push(event.clone());
        }
    }

    #[test]
    fn scoped_spans_nest_and_leaf_spans_do_not_take_scope() {
        let sink = Arc::new(CaptureSink::default());
        let obs = Obs::single(sink.clone());
        let root = obs.start_span("pipeline");
        let root_id = root.id();
        {
            let child = obs.start_span("pipeline/validation");
            let child_id = child.id();
            // A leaf span is parented under the innermost scoped span but
            // does not become the ambient parent itself.
            let leaf = obs.start_leaf_span("deploy");
            assert_eq!(leaf.parent, child_id);
            let sibling = obs.start_leaf_span("deploy");
            assert_eq!(sibling.parent, child_id);
            sibling.finish();
            leaf.finish();
            child.finish();
        }
        // After the scoped child finished, new spans parent to the root.
        let late = obs.start_span("pipeline/report");
        assert_eq!(late.parent, root_id);
        late.finish();
        root.finish();
        let spans = sink.spans.lock().unwrap();
        assert_eq!(spans.len(), 5);
        // Root span has parent 0 and every other parent id is a live span.
        let ids: Vec<u64> = spans.iter().map(|(id, _, _)| *id).collect();
        for (id, parent, path) in spans.iter() {
            if path == "pipeline" {
                assert_eq!(*parent, 0);
            } else {
                assert!(ids.contains(parent), "span {id} has dead parent {parent}");
            }
        }
    }

    #[test]
    fn with_sink_shares_the_trace_context() {
        let a = Arc::new(CaptureSink::default());
        let b = Arc::new(CaptureSink::default());
        let obs = Obs::single(a.clone());
        let outer = obs.start_span("outer");
        let outer_id = outer.id();
        // A derived handle (extra private sink) still sees the ambient
        // parent and allocates from the same id space.
        let derived = obs.with_sink(b.clone());
        let inner = derived.start_leaf_span("inner");
        assert_eq!(inner.parent, outer_id);
        assert!(inner.id() > outer_id);
        inner.finish();
        outer.finish();
        assert_eq!(a.spans.lock().unwrap().len(), 2); // both spans
        assert_eq!(b.spans.lock().unwrap().len(), 1); // inner only
    }

    #[test]
    fn lifecycle_events_reach_sinks_with_fingerprint() {
        let sink = Arc::new(CaptureSink::default());
        let obs = Obs::single(sink.clone());
        obs.lifecycle(
            0xDEAD,
            Lifecycle::Demoted {
                reason: "counterexample".into(),
            },
        );
        let events = sink.events.lock().unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].fingerprint, 0xDEAD);
        assert!(matches!(events[0].kind, Lifecycle::Demoted { .. }));
    }

    #[test]
    fn span_attrs_are_recorded() {
        let reg = Arc::new(MemoryRecorder::new());
        let obs = Obs::single(reg.clone());
        let mut g = obs.start_span("pipeline/validation/iter");
        g.attr("iter", 3u64);
        g.attr("kind", "tp");
        g.finish();
        // The histogram name stays bounded regardless of the iteration
        // attribute (the cardinality contract).
        let snap = reg.snapshot();
        assert!(snap
            .histograms
            .contains_key("span.pipeline/validation/iter"));
        assert_eq!(snap.histograms.len(), 1);
    }

    #[test]
    fn escape_json_handles_specials() {
        let mut out = String::new();
        escape_json("a\"b\\c\nd\u{1}", &mut out);
        assert_eq!(out, "a\\\"b\\\\c\\nd\\u0001");
    }
}
