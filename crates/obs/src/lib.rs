//! Pipeline observability for the mine → filter → schedule → mutate →
//! deploy funnel.
//!
//! Zodiac's value is its funnel: candidates die at well-defined stages
//! (statistical filtering, false-positive removal, counterexample demotion)
//! and wall-clock concentrates in well-defined places (deployment, solver
//! mutation). This crate gives every stage a first-class instrumentation
//! surface instead of ad-hoc counter structs:
//!
//! * the [`Recorder`] trait — counters, gauges, histograms, and stage
//!   spans — implemented by pluggable sinks;
//! * [`MemoryRecorder`], a sharded in-memory registry whose hot path is a
//!   read-lock + atomic add (no allocation, no write-lock after first
//!   touch), cheap enough to stay enabled in benches and tests;
//! * [`JsonLinesSink`], a streaming JSON-lines event sink for the CLI's
//!   `--trace-out`: one line per completed span, plus a final metrics
//!   snapshot;
//! * [`Obs`], a cheaply-clonable fan-out handle threaded through the
//!   pipeline. A disabled (null) handle makes every call a no-op over an
//!   empty sink list, so un-instrumented callers pay nothing measurable.
//!
//! # Span naming convention
//!
//! Spans are hierarchical by *path*, slash-separated, rooted at the
//! subsystem: `pipeline/corpus`, `pipeline/mining/stats`,
//! `pipeline/validation/iter/3`, `cli/mine`. Span durations are recorded
//! into the registry as histograms named `span.<path>` (microseconds), so
//! one snapshot carries both the funnel counts and the stage timings.
//!
//! # Metric naming convention
//!
//! Dotted, lowercase, subsystem-first: `corpus.motif.<name>`,
//! `mining.filtered.confidence`, `validation.fp.deployable`,
//! `deploy.cache_hits`, `deploy.latency_us.success`. Dynamic label values
//! (motif names, template families, failure phases) go in the last
//! segment.

mod jsonl;
mod registry;
mod snapshot;

pub use jsonl::JsonLinesSink;
pub use registry::MemoryRecorder;
pub use snapshot::{HistogramSummary, MetricsSnapshot};

use std::fmt;
use std::sync::Arc;
use std::time::Instant;

/// A metrics + tracing sink. All methods take `&self`: recorders are shared
/// across worker threads (the deployment engine records from its pool).
pub trait Recorder: Send + Sync {
    /// Adds `delta` to the counter `name`.
    fn counter(&self, name: &str, delta: u64);
    /// Sets the gauge `name` to `value`.
    fn gauge_set(&self, name: &str, value: u64);
    /// Raises the gauge `name` to `observed` if higher (high-water mark).
    fn gauge_max(&self, name: &str, observed: u64);
    /// Records one observation of `value` into the histogram `name`.
    fn histogram(&self, name: &str, value: u64);
    /// Records a completed stage span: `path` per the naming convention,
    /// `micros` of monotonic elapsed time.
    fn span(&self, path: &str, micros: u64);
}

/// A cheaply-clonable handle fanning instrumentation out to zero or more
/// sinks. The zero-sink ("null") handle is the default and makes every
/// record call a no-op.
#[derive(Clone, Default)]
pub struct Obs {
    sinks: Arc<[Arc<dyn Recorder>]>,
}

impl Obs {
    /// The disabled handle: every call is a no-op.
    pub fn null() -> Self {
        Obs::default()
    }

    /// A handle recording into a single sink.
    pub fn single(sink: Arc<dyn Recorder>) -> Self {
        Obs {
            sinks: Arc::from(vec![sink].into_boxed_slice()),
        }
    }

    /// A handle fanning out to several sinks (e.g. a registry plus a
    /// JSON-lines trace file).
    pub fn fanout(sinks: Vec<Arc<dyn Recorder>>) -> Self {
        Obs {
            sinks: Arc::from(sinks.into_boxed_slice()),
        }
    }

    /// True if at least one sink is attached. Callers building dynamic
    /// metric names (string concatenation) should guard on this so the
    /// null handle stays free.
    pub fn is_enabled(&self) -> bool {
        !self.sinks.is_empty()
    }

    /// See [`Recorder::counter`].
    pub fn counter(&self, name: &str, delta: u64) {
        for s in self.sinks.iter() {
            s.counter(name, delta);
        }
    }

    /// See [`Recorder::gauge_set`].
    pub fn gauge_set(&self, name: &str, value: u64) {
        for s in self.sinks.iter() {
            s.gauge_set(name, value);
        }
    }

    /// See [`Recorder::gauge_max`].
    pub fn gauge_max(&self, name: &str, observed: u64) {
        for s in self.sinks.iter() {
            s.gauge_max(name, observed);
        }
    }

    /// See [`Recorder::histogram`].
    pub fn histogram(&self, name: &str, value: u64) {
        for s in self.sinks.iter() {
            s.histogram(name, value);
        }
    }

    /// Records an already-measured span.
    pub fn span(&self, path: &str, micros: u64) {
        for s in self.sinks.iter() {
            s.span(path, micros);
        }
    }

    /// Starts a monotonic stage span; the returned guard records the
    /// elapsed time into every sink when dropped (or on
    /// [`SpanGuard::finish`]).
    pub fn start_span(&self, path: impl Into<String>) -> SpanGuard {
        SpanGuard {
            obs: self.clone(),
            path: path.into(),
            start: Instant::now(),
            done: false,
        }
    }
}

/// An [`Obs`] handle is itself a recorder, so handles can nest: a subsystem
/// can fan out to its own registry *plus* a caller-provided handle.
impl Recorder for Obs {
    fn counter(&self, name: &str, delta: u64) {
        Obs::counter(self, name, delta);
    }
    fn gauge_set(&self, name: &str, value: u64) {
        Obs::gauge_set(self, name, value);
    }
    fn gauge_max(&self, name: &str, observed: u64) {
        Obs::gauge_max(self, name, observed);
    }
    fn histogram(&self, name: &str, value: u64) {
        Obs::histogram(self, name, value);
    }
    fn span(&self, path: &str, micros: u64) {
        Obs::span(self, path, micros);
    }
}

impl fmt::Debug for Obs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Obs({} sink(s))", self.sinks.len())
    }
}

/// RAII guard for a stage span; records on drop.
pub struct SpanGuard {
    obs: Obs,
    path: String,
    start: Instant,
    done: bool,
}

impl SpanGuard {
    /// Ends the span now (instead of at scope exit) and records it.
    pub fn finish(mut self) {
        self.record();
    }

    /// Elapsed time so far.
    pub fn elapsed_micros(&self) -> u64 {
        self.start.elapsed().as_micros() as u64
    }

    fn record(&mut self) {
        if !self.done {
            self.done = true;
            if self.obs.is_enabled() {
                let micros = self.start.elapsed().as_micros() as u64;
                self.obs.span(&self.path, micros);
            }
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        self.record();
    }
}

/// JSON string escaping shared by the sink and snapshot encoders.
pub(crate) fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_handle_is_disabled_and_free() {
        let obs = Obs::null();
        assert!(!obs.is_enabled());
        obs.counter("x", 1);
        obs.histogram("y", 2);
        let g = obs.start_span("a/b");
        g.finish();
    }

    #[test]
    fn fanout_reaches_every_sink() {
        let a = Arc::new(MemoryRecorder::new());
        let b = Arc::new(MemoryRecorder::new());
        let obs = Obs::fanout(vec![a.clone(), b.clone()]);
        assert!(obs.is_enabled());
        obs.counter("hits", 3);
        obs.counter("hits", 2);
        assert_eq!(a.snapshot().counter("hits"), 5);
        assert_eq!(b.snapshot().counter("hits"), 5);
    }

    #[test]
    fn span_guard_records_into_registry() {
        let reg = Arc::new(MemoryRecorder::new());
        let obs = Obs::single(reg.clone());
        {
            let _g = obs.start_span("pipeline/mining");
        }
        obs.start_span("pipeline/mining").finish();
        let snap = reg.snapshot();
        let h = snap
            .histograms
            .get("span.pipeline/mining")
            .expect("span histogram present");
        assert_eq!(h.count, 2);
    }

    #[test]
    fn escape_json_handles_specials() {
        let mut out = String::new();
        escape_json("a\"b\\c\nd\u{1}", &mut out);
        assert_eq!(out, "a\\\"b\\\\c\\nd\\u0001");
    }
}
