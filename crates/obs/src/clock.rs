//! Injected time sources for the rolling-window recorder.
//!
//! Live telemetry is time-indexed, and time-indexed state is untestable
//! against the wall clock: bucket expiry, partial windows, and shard merges
//! all depend on *when* an observation lands relative to ring boundaries.
//! Every consumer of rolling windows therefore takes a [`Clock`] — the
//! production [`MonotonicClock`] in daemons, a [`ManualClock`] in tests, so
//! ring advance is a pure function of the recorded sequence.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotone microsecond clock. Implementations must never go backwards;
/// the epoch is arbitrary (rolling windows only ever subtract).
pub trait Clock: Send + Sync {
    /// Microseconds since this clock's epoch.
    fn now_us(&self) -> u64;
}

/// The production clock: monotonic microseconds since construction.
pub struct MonotonicClock {
    epoch: Instant,
}

impl MonotonicClock {
    /// A clock whose epoch is now.
    pub fn new() -> Self {
        MonotonicClock {
            epoch: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        MonotonicClock::new()
    }
}

impl Clock for MonotonicClock {
    fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }
}

/// A hand-cranked clock for deterministic tests: starts at 0 and only moves
/// when told to. Shared across threads via `Arc`.
#[derive(Default)]
pub struct ManualClock {
    us: AtomicU64,
}

impl ManualClock {
    /// A clock frozen at microsecond 0.
    pub fn new() -> Self {
        ManualClock::default()
    }

    /// Jumps the clock to an absolute microsecond offset. Saturating: the
    /// clock never moves backwards even if `us` is in its past.
    pub fn set_us(&self, us: u64) {
        self.us.fetch_max(us, Ordering::Relaxed);
    }

    /// Advances the clock by `us` microseconds.
    pub fn advance_us(&self, us: u64) {
        self.us.fetch_add(us, Ordering::Relaxed);
    }

    /// Advances the clock by whole seconds.
    pub fn advance_secs(&self, secs: u64) {
        self.advance_us(secs * 1_000_000);
    }
}

impl Clock for ManualClock {
    fn now_us(&self) -> u64 {
        self.us.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_moves_only_forward() {
        let c = ManualClock::new();
        assert_eq!(c.now_us(), 0);
        c.advance_secs(2);
        assert_eq!(c.now_us(), 2_000_000);
        c.set_us(1); // in the past: ignored
        assert_eq!(c.now_us(), 2_000_000);
        c.set_us(3_000_000);
        assert_eq!(c.now_us(), 3_000_000);
    }

    #[test]
    fn monotonic_clock_is_monotone() {
        let c = MonotonicClock::new();
        let a = c.now_us();
        let b = c.now_us();
        assert!(b >= a);
    }
}
