//! Chrome/Perfetto trace-event exporter.
//!
//! Produces the legacy Chrome trace-event JSON format — an object with a
//! `traceEvents` array of complete (`"ph":"X"`) and instant (`"ph":"i"`)
//! events — which `ui.perfetto.dev` and `chrome://tracing` open directly.
//! Spans carry their zodiac span id, parent id, and attributes in `args`;
//! candidate lifecycle events become instant events named by their kind
//! with the check fingerprint in `args.fp`.
//!
//! The sink buffers events in memory and writes the file on
//! [`PerfettoSink::finish`], sorting by start timestamp so consumers (and
//! the CI monotonicity check) see a time-ordered stream — spans are
//! *recorded* at end time, so raw emission order is end-ordered, not
//! start-ordered.

use crate::{escape_json, AttrValue, CandidateEvent, Lifecycle, Recorder, SpanRecord};
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::{Mutex, PoisonError};

/// A buffered span destined for the trace-event array.
#[derive(Debug, Clone)]
pub struct TraceSpan {
    /// Span id (unique within the trace).
    pub id: u64,
    /// Parent span id, 0 for roots.
    pub parent: u64,
    /// Thread ordinal.
    pub tid: u64,
    /// Span path (becomes the event `name`).
    pub name: String,
    /// Start offset from the trace epoch, microseconds.
    pub ts_us: u64,
    /// Duration, microseconds.
    pub dur_us: u64,
    /// Attributes (merged into `args`).
    pub attrs: Vec<(String, AttrValue)>,
}

/// A buffered instant event (candidate lifecycle transition).
#[derive(Debug, Clone)]
pub struct TraceInstant {
    /// Event name (the lifecycle kind, e.g. `demoted`).
    pub name: String,
    /// Thread ordinal.
    pub tid: u64,
    /// Offset from the trace epoch, microseconds.
    pub ts_us: u64,
    /// Extra args rendered verbatim: (key, already-JSON-encoded value).
    pub args: Vec<(String, String)>,
}

/// Renders buffered spans + instants as a Chrome trace-event JSON document.
///
/// Events are emitted sorted by `ts` (stable on ties by span id), one
/// per line inside the array, so the output is diff-friendly and passes a
/// monotonic-`ts` scan. Shared by [`PerfettoSink`] and the CLI's
/// JSONL→Perfetto conversion (`zodiac report --perfetto`).
pub fn chrome_trace_json(spans: &[TraceSpan], instants: &[TraceInstant]) -> String {
    // Merge-sort both kinds by timestamp; tag spans 0 / instants 1 so the
    // order is total and deterministic.
    let mut order: Vec<(u64, u8, usize)> = Vec::with_capacity(spans.len() + instants.len());
    for (i, s) in spans.iter().enumerate() {
        order.push((s.ts_us, 0, i));
    }
    for (i, e) in instants.iter().enumerate() {
        order.push((e.ts_us, 1, i));
    }
    order.sort();

    let mut out = String::with_capacity(128 * (order.len() + 1));
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    for (n, (_, tag, i)) in order.iter().enumerate() {
        if n > 0 {
            out.push_str(",\n");
        }
        if *tag == 0 {
            let s = &spans[*i];
            out.push_str("{\"name\":\"");
            escape_json(&s.name, &mut out);
            out.push_str(&format!(
                "\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{},\"dur\":{},\"args\":{{\"id\":{}",
                s.tid, s.ts_us, s.dur_us, s.id
            ));
            if s.parent != 0 {
                out.push_str(&format!(",\"parent\":{}", s.parent));
            }
            for (key, value) in &s.attrs {
                out.push_str(",\"");
                escape_json(key, &mut out);
                out.push_str("\":");
                match value {
                    AttrValue::U64(v) => out.push_str(&v.to_string()),
                    AttrValue::Str(v) => {
                        out.push('"');
                        escape_json(v, &mut out);
                        out.push('"');
                    }
                }
            }
            out.push_str("}}");
        } else {
            let e = &instants[*i];
            out.push_str("{\"name\":\"");
            escape_json(&e.name, &mut out);
            out.push_str(&format!(
                "\",\"ph\":\"i\",\"s\":\"g\",\"pid\":1,\"tid\":{},\"ts\":{},\"args\":{{",
                e.tid, e.ts_us
            ));
            for (k, (key, value)) in e.args.iter().enumerate() {
                if k > 0 {
                    out.push(',');
                }
                out.push('"');
                escape_json(key, &mut out);
                out.push_str("\":");
                out.push_str(value);
            }
            out.push_str("}}");
        }
    }
    out.push_str("\n]}\n");
    out
}

fn instant_from_lifecycle(event: &CandidateEvent) -> TraceInstant {
    let mut args = vec![("fp".to_string(), format!("\"{:016x}\"", event.fingerprint))];
    fn push_str(args: &mut Vec<(String, String)>, key: &str, value: &str) {
        let mut enc = String::with_capacity(value.len() + 2);
        enc.push('"');
        escape_json(value, &mut enc);
        enc.push('"');
        args.push((key.to_string(), enc));
    }
    match &event.kind {
        Lifecycle::Mined {
            template,
            support,
            confidence_ppm,
        } => {
            push_str(&mut args, "template", template);
            args.push(("support".into(), support.to_string()));
            args.push(("confidence_ppm".into(), confidence_ppm.to_string()));
        }
        Lifecycle::FilterVerdict { rule, kept } => {
            push_str(&mut args, "rule", rule);
            args.push(("kept".into(), kept.to_string()));
        }
        Lifecycle::Scheduled { wave, conflicts } => {
            args.push(("wave".into(), wave.to_string()));
            args.push(("conflicts".into(), conflicts.to_string()));
        }
        Lifecycle::DeployOutcome {
            polarity,
            success,
            phase,
            rule,
            cached,
        } => {
            push_str(&mut args, "polarity", polarity.as_str());
            args.push(("success".into(), success.to_string()));
            if !phase.is_empty() {
                push_str(&mut args, "phase", phase);
            }
            if !rule.is_empty() {
                push_str(&mut args, "rule", rule);
            }
            args.push(("cached".into(), cached.to_string()));
        }
        Lifecycle::Validated { via_group } => {
            args.push(("via_group".into(), via_group.to_string()));
        }
        Lifecycle::Demoted { reason } => {
            push_str(&mut args, "reason", reason);
        }
        Lifecycle::Served {
            program,
            violations,
            cached,
        } => {
            push_str(&mut args, "program", &format!("{program:016x}"));
            args.push(("violations".into(), violations.to_string()));
            args.push(("cached".into(), cached.to_string()));
        }
        Lifecycle::RepairProposed { program, edits } => {
            push_str(&mut args, "program", &format!("{program:016x}"));
            args.push(("edits".into(), edits.to_string()));
        }
        Lifecycle::OracleVerdict {
            layer,
            pass,
            detail,
        } => {
            args.push(("layer".into(), layer.to_string()));
            args.push(("pass".into(), pass.to_string()));
            if !detail.is_empty() {
                push_str(&mut args, "detail", detail);
            }
        }
        Lifecycle::RepairAccepted { edits } => {
            args.push(("edits".into(), edits.to_string()));
        }
        Lifecycle::RepairRejected { layer, reason } => {
            args.push(("layer".into(), layer.to_string()));
            push_str(&mut args, "reason", reason);
        }
    }
    TraceInstant {
        name: event.kind.kind().to_string(),
        tid: 1,
        ts_us: event.ts_us,
        args,
    }
}

/// A [`Recorder`] that buffers structured spans and lifecycle events, then
/// writes a Chrome/Perfetto trace-event JSON file on
/// [`finish`](PerfettoSink::finish). Attach with `--perfetto-out <path>`.
pub struct PerfettoSink {
    path: PathBuf,
    spans: Mutex<Vec<TraceSpan>>,
    instants: Mutex<Vec<TraceInstant>>,
}

impl PerfettoSink {
    /// A sink that will write to `path` when finished.
    pub fn create(path: impl AsRef<Path>) -> Self {
        PerfettoSink {
            path: path.as_ref().to_path_buf(),
            spans: Mutex::new(Vec::new()),
            instants: Mutex::new(Vec::new()),
        }
    }

    /// Sorts the buffered events by timestamp and writes the trace file.
    pub fn finish(&self) -> io::Result<()> {
        let spans = self.spans.lock().unwrap_or_else(PoisonError::into_inner);
        let instants = self.instants.lock().unwrap_or_else(PoisonError::into_inner);
        let json = chrome_trace_json(&spans, &instants);
        let file = File::create(&self.path)?;
        let mut out = BufWriter::new(file);
        out.write_all(json.as_bytes())?;
        out.flush()
    }
}

impl Recorder for PerfettoSink {
    fn counter(&self, _name: &str, _delta: u64) {}
    fn gauge_set(&self, _name: &str, _value: u64) {}
    fn gauge_max(&self, _name: &str, _observed: u64) {}
    fn histogram(&self, _name: &str, _value: u64) {}
    fn span(&self, _path: &str, _micros: u64) {
        // Identity-less spans cannot be placed on the timeline; structured
        // callers go through span_record.
    }

    fn span_record(&self, rec: &SpanRecord<'_>) {
        self.spans
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(TraceSpan {
                id: rec.id,
                parent: rec.parent,
                tid: rec.tid,
                name: rec.path.to_string(),
                ts_us: rec.ts_us,
                dur_us: rec.dur_us,
                attrs: rec
                    .attrs
                    .iter()
                    .map(|(k, v)| (k.to_string(), v.clone()))
                    .collect(),
            });
    }

    fn lifecycle(&self, event: &CandidateEvent) {
        self.instants
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(instant_from_lifecycle(event));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Polarity;

    #[test]
    fn renders_sorted_well_formed_trace_events() {
        let spans = vec![
            TraceSpan {
                id: 2,
                parent: 1,
                tid: 1,
                name: "pipeline/mining".into(),
                ts_us: 50,
                dur_us: 10,
                attrs: vec![("iter".into(), AttrValue::U64(3))],
            },
            TraceSpan {
                id: 1,
                parent: 0,
                tid: 1,
                name: "pipeline".into(),
                ts_us: 0,
                dur_us: 100,
                attrs: vec![],
            },
        ];
        let instants = vec![TraceInstant {
            name: "demoted".into(),
            tid: 1,
            ts_us: 75,
            args: vec![("fp".into(), "\"00000000000000ab\"".into())],
        }];
        let json = chrome_trace_json(&spans, &instants);
        let v: serde_json::Value = serde_json::from_str(&json).expect("well-formed JSON");
        let events = v
            .get("traceEvents")
            .and_then(|e| e.as_array())
            .expect("traceEvents array");
        assert_eq!(events.len(), 3);
        // Sorted by ts: pipeline (0), mining (50), demoted (75).
        let ts: Vec<u64> = events
            .iter()
            .map(|e| e.get("ts").and_then(|t| t.as_u64()).expect("ts"))
            .collect();
        assert_eq!(ts, vec![0, 50, 75]);
        assert_eq!(
            events[0].get("name").and_then(|n| n.as_str()),
            Some("pipeline")
        );
        assert!(events[0]
            .get("args")
            .and_then(|a| a.get("parent"))
            .is_none());
        assert_eq!(
            events[1]
                .get("args")
                .and_then(|a| a.get("parent"))
                .and_then(|p| p.as_u64()),
            Some(1)
        );
        assert_eq!(
            events[1]
                .get("args")
                .and_then(|a| a.get("iter"))
                .and_then(|p| p.as_u64()),
            Some(3)
        );
        assert_eq!(events[2].get("ph").and_then(|p| p.as_str()), Some("i"));
    }

    #[test]
    fn lifecycle_instants_carry_structured_args() {
        let ev = CandidateEvent {
            fingerprint: 0xAB,
            ts_us: 9,
            kind: Lifecycle::DeployOutcome {
                polarity: Polarity::FpProbe,
                success: false,
                phase: "plugin checks".into(),
                rule: "R1".into(),
                cached: true,
            },
        };
        let inst = instant_from_lifecycle(&ev);
        let json = chrome_trace_json(&[], &[inst]);
        let v: serde_json::Value = serde_json::from_str(&json).expect("well-formed JSON");
        let args = v
            .get("traceEvents")
            .and_then(|e| e.as_array())
            .and_then(|a| a.first())
            .and_then(|e| e.get("args"))
            .expect("args");
        assert_eq!(
            args.get("fp").and_then(|f| f.as_str()),
            Some("00000000000000ab")
        );
        assert_eq!(
            args.get("polarity").and_then(|p| p.as_str()),
            Some("fp_probe")
        );
        assert_eq!(
            args.get("phase").and_then(|p| p.as_str()),
            Some("plugin checks")
        );
        assert_eq!(args.get("cached").and_then(|c| c.as_bool()), Some(true));
    }

    #[test]
    fn sink_buffers_and_writes_on_finish() {
        let dir = std::env::temp_dir().join("zodiac-obs-perfetto-test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("trace.json");
        let sink = std::sync::Arc::new(PerfettoSink::create(&path));
        let obs = crate::Obs::single(sink.clone());
        let root = obs.start_span("pipeline");
        obs.start_span("pipeline/corpus").finish();
        obs.lifecycle(1, Lifecycle::Validated { via_group: false });
        root.finish();
        sink.finish().expect("write trace");
        let text = std::fs::read_to_string(&path).expect("read back");
        let v: serde_json::Value = serde_json::from_str(&text).expect("well-formed JSON");
        let events = v
            .get("traceEvents")
            .and_then(|e| e.as_array())
            .expect("traceEvents");
        assert_eq!(events.len(), 3);
        std::fs::remove_file(&path).ok();
    }
}
