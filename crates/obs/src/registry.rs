//! The in-memory metric registry.

use crate::snapshot::{HistogramSummary, MetricsSnapshot};
use crate::{CandidateEvent, Recorder};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, PoisonError, RwLock};

const SHARDS: usize = 16;

/// Number of power-of-two histogram buckets (covers the full u64 range).
/// Shared with the rolling-window recorder so windowed and cumulative
/// quantiles agree bucket-for-bucket.
pub(crate) const BUCKETS: usize = 64;

/// A name-keyed, sharded map of atomic metric cells. After a name's first
/// touch, updates are a read-lock plus an atomic op — no allocation, no
/// write-lock, no contention between different shards.
struct NameMap<T> {
    shards: Vec<RwLock<HashMap<String, Arc<T>>>>,
}

impl<T: Default> NameMap<T> {
    fn new() -> Self {
        NameMap {
            shards: (0..SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
        }
    }

    fn shard_of(&self, name: &str) -> &RwLock<HashMap<String, Arc<T>>> {
        let mut h = DefaultHasher::new();
        name.hash(&mut h);
        &self.shards[(h.finish() as usize) % SHARDS]
    }

    /// Runs `f` on the cell for `name`, creating it on first touch.
    fn with<R>(&self, name: &str, f: impl FnOnce(&T) -> R) -> R {
        let shard = self.shard_of(name);
        {
            let read = shard.read().unwrap_or_else(PoisonError::into_inner);
            if let Some(cell) = read.get(name) {
                return f(cell);
            }
        }
        let mut write = shard.write().unwrap_or_else(PoisonError::into_inner);
        let cell = write.entry(name.to_string()).or_default().clone();
        drop(write);
        f(&cell)
    }

    /// All (name, cell) pairs, unordered.
    fn entries(&self) -> Vec<(String, Arc<T>)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let read = shard.read().unwrap_or_else(PoisonError::into_inner);
            out.extend(read.iter().map(|(k, v)| (k.clone(), v.clone())));
        }
        out
    }
}

/// A lock-free-after-registration histogram: power-of-two buckets plus
/// count/sum/min/max cells, all atomics.
struct AtomicHistogram {
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    buckets: Vec<AtomicU64>,
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        AtomicHistogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
        }
    }
}

pub(crate) fn bucket_of(value: u64) -> usize {
    // Bucket i holds values whose highest set bit is i (value 0 → bucket 0).
    (63 - value.max(1).leading_zeros()) as usize
}

/// Upper bound of a bucket, used as its representative for quantiles.
pub(crate) fn bucket_upper(i: usize) -> u64 {
    if i >= 63 {
        u64::MAX
    } else {
        (2u64 << i) - 1
    }
}

/// Quantile `num/den` over merged log₂ bucket counts, clamped to the
/// observed `max`. Integer-only (rank = ⌈total·num/den⌉), so windowed and
/// cumulative summaries are bit-deterministic for a given event sequence.
pub(crate) fn bucket_quantile(counts: &[u64], total: u64, max: u64, num: u64, den: u64) -> u64 {
    if total == 0 {
        return 0;
    }
    let rank = (total.saturating_mul(num).saturating_add(den - 1) / den).max(1);
    let mut seen = 0u64;
    for (i, &c) in counts.iter().enumerate() {
        seen += c;
        if seen >= rank {
            return bucket_upper(i).min(max);
        }
    }
    max
}

fn atomic_max(cell: &AtomicU64, observed: u64) {
    let mut cur = cell.load(Ordering::Relaxed);
    while observed > cur {
        match cell.compare_exchange_weak(cur, observed, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => break,
            Err(now) => cur = now,
        }
    }
}

fn atomic_min(cell: &AtomicU64, observed: u64) {
    let mut cur = cell.load(Ordering::Relaxed);
    while observed < cur {
        match cell.compare_exchange_weak(cur, observed, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => break,
            Err(now) => cur = now,
        }
    }
}

impl AtomicHistogram {
    fn record(&self, value: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        atomic_min(&self.min, value);
        atomic_max(&self.max, value);
        self.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
    }

    fn summary(&self) -> HistogramSummary {
        let count = self.count.load(Ordering::Relaxed);
        let max = self.max.load(Ordering::Relaxed);
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        HistogramSummary {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max,
            p50: bucket_quantile(&counts, count, max, 1, 2),
            p95: bucket_quantile(&counts, count, max, 19, 20),
            p99: bucket_quantile(&counts, count, max, 99, 100),
        }
    }
}

/// The in-memory registry sink: sharded maps of atomic counters, gauges,
/// and log-bucketed histograms. Span durations land in the histogram map
/// under `span.<path>`.
///
/// Designed for always-on use: the steady-state cost of an update is a
/// shard read-lock plus one or two atomic RMW ops.
#[derive(Default)]
pub struct MemoryRecorder {
    counters: NameMap<AtomicU64>,
    gauges: NameMap<AtomicU64>,
    histograms: NameMap<AtomicHistogram>,
}

impl<T: Default> Default for NameMap<T> {
    fn default() -> Self {
        NameMap::new()
    }
}

impl MemoryRecorder {
    /// An empty registry.
    pub fn new() -> Self {
        MemoryRecorder::default()
    }

    /// Current value of a counter (0 if never touched).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.counters.with(name, |c| c.load(Ordering::Relaxed))
    }

    /// A point-in-time snapshot of every metric, name-sorted.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::default();
        for (name, cell) in self.counters.entries() {
            snap.counters.insert(name, cell.load(Ordering::Relaxed));
        }
        for (name, cell) in self.gauges.entries() {
            snap.gauges.insert(name, cell.load(Ordering::Relaxed));
        }
        for (name, cell) in self.histograms.entries() {
            snap.histograms.insert(name, cell.summary());
        }
        snap
    }
}

impl Recorder for MemoryRecorder {
    fn counter(&self, name: &str, delta: u64) {
        self.counters
            .with(name, |c| c.fetch_add(delta, Ordering::Relaxed));
    }

    fn gauge_set(&self, name: &str, value: u64) {
        self.gauges
            .with(name, |g| g.store(value, Ordering::Relaxed));
    }

    fn gauge_max(&self, name: &str, observed: u64) {
        self.gauges.with(name, |g| atomic_max(g, observed));
    }

    fn histogram(&self, name: &str, value: u64) {
        self.histograms.with(name, |h| h.record(value));
    }

    fn span(&self, path: &str, micros: u64) {
        with_name_buf("span.", path, |name| self.histogram(name, micros));
    }

    fn lifecycle(&self, event: &CandidateEvent) {
        // Aggregate view of the provenance stream: one counter per event
        // kind (bounded — six kinds), so funnel totals survive in the
        // snapshot even when no trace file is attached.
        with_name_buf("lifecycle.", event.kind.kind(), |name| {
            self.counter(name, 1)
        });
    }
}

thread_local! {
    static NAME_BUF: std::cell::RefCell<String> = const { std::cell::RefCell::new(String::new()) };
}

/// Builds `{prefix}{rest}` in a reused per-thread buffer. Span and
/// lifecycle records fire once per served request on the daemon's hot
/// path; this keeps the derived metric name off the allocator.
fn with_name_buf<R>(prefix: &str, rest: &str, f: impl FnOnce(&str) -> R) -> R {
    NAME_BUF.with(|buf| {
        let mut buf = buf.borrow_mut();
        buf.clear();
        buf.push_str(prefix);
        buf.push_str(rest);
        f(&buf)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let r = MemoryRecorder::new();
        r.counter("a", 1);
        r.counter("a", 4);
        r.counter("b", 2);
        let snap = r.snapshot();
        assert_eq!(snap.counter("a"), 5);
        assert_eq!(snap.counter("b"), 2);
        assert_eq!(snap.counter("missing"), 0);
    }

    #[test]
    fn gauges_set_and_max() {
        let r = MemoryRecorder::new();
        r.gauge_set("depth", 3);
        r.gauge_max("depth", 7);
        r.gauge_max("depth", 5);
        assert_eq!(r.snapshot().gauge("depth"), 7);
    }

    #[test]
    fn histogram_summary_tracks_extremes_and_quantiles() {
        let r = MemoryRecorder::new();
        for v in [1u64, 2, 3, 4, 100] {
            r.histogram("lat", v);
        }
        let snap = r.snapshot();
        let h = snap.histograms.get("lat").unwrap();
        assert_eq!(h.count, 5);
        assert_eq!(h.sum, 110);
        assert_eq!(h.min, 1);
        assert_eq!(h.max, 100);
        assert!(h.p50 <= h.p95);
        assert!(h.p95 <= h.max);
    }

    #[test]
    fn concurrent_updates_do_not_lose_counts() {
        let r = Arc::new(MemoryRecorder::new());
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let r = r.clone();
                scope.spawn(move || {
                    for i in 0..1000u64 {
                        r.counter("n", 1);
                        r.histogram("h", i % 17);
                        r.gauge_max("g", i);
                    }
                });
            }
        });
        let snap = r.snapshot();
        assert_eq!(snap.counter("n"), 8000);
        assert_eq!(snap.histograms.get("h").unwrap().count, 8000);
        assert_eq!(snap.gauge("g"), 999);
    }

    #[test]
    fn lifecycle_events_count_per_kind() {
        let r = MemoryRecorder::new();
        let ev = |kind| CandidateEvent {
            fingerprint: 1,
            ts_us: 0,
            kind,
        };
        r.lifecycle(&ev(crate::Lifecycle::Validated { via_group: false }));
        r.lifecycle(&ev(crate::Lifecycle::Demoted {
            reason: "deployable".into(),
        }));
        r.lifecycle(&ev(crate::Lifecycle::Demoted {
            reason: "counterexample".into(),
        }));
        let snap = r.snapshot();
        assert_eq!(snap.counter("lifecycle.validated"), 1);
        assert_eq!(snap.counter("lifecycle.demoted"), 2);
    }

    #[test]
    fn saturation_bucket_quantiles_stay_within_max() {
        // Values with the top bit set land in the final (saturation)
        // bucket, whose upper bound is u64::MAX; quantiles must clamp to
        // the observed max instead of reporting the bucket bound.
        let r = MemoryRecorder::new();
        let big = u64::MAX - 3;
        r.histogram("sat", big);
        r.histogram("sat", big - 1);
        let snap = r.snapshot();
        let h = snap.histograms.get("sat").unwrap();
        assert_eq!(bucket_of(big), 63);
        assert_eq!(bucket_upper(63), u64::MAX);
        assert_eq!(h.max, big);
        assert_eq!(h.p50, big);
        assert_eq!(h.p95, big);
    }

    #[test]
    fn bucket_mapping_is_monotone() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 1);
        assert_eq!(bucket_of(4), 2);
        let mut prev = 0;
        for v in [1u64, 10, 100, 1_000, 1_000_000, u64::MAX] {
            let b = bucket_of(v);
            assert!(b >= prev);
            assert!(v <= bucket_upper(b));
            prev = b;
        }
    }
}
