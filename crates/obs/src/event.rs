//! Per-candidate lifecycle events: the provenance half of the trace.
//!
//! Every candidate check is identified by its 64-bit canonical-form
//! fingerprint (`zodiac_spec::Check::fingerprint`). As the candidate moves
//! through the funnel, each stage emits one [`CandidateEvent`] keyed by
//! that fingerprint, so a recorded trace can be folded into a complete
//! per-candidate ledger: why it was hypothesized, which filter rules it
//! passed, when it was scheduled, how each deployment probe went, and
//! whether it ended `Validated` or `Demoted { reason }`.

/// Which kind of deployment probe a [`Lifecycle::DeployOutcome`] reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Polarity {
    /// False-positive removal: deploying a mutated *violating* program.
    /// Success here means the check is a false positive (§5.6 step 1).
    FpProbe,
    /// True-positive validation: deploying a *satisfying* positive case.
    /// Failure here falsifies the check.
    TpProbe,
    /// Counterexample search on held-out projects (§5.6 step 2). Success
    /// of a violating deployment demotes the check.
    Counterexample,
}

impl Polarity {
    /// Stable lowercase wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            Polarity::FpProbe => "fp_probe",
            Polarity::TpProbe => "tp_probe",
            Polarity::Counterexample => "counterexample",
        }
    }
}

/// A lifecycle transition for one candidate check.
///
/// The expected order of events for a single fingerprint is:
/// `Mined` → zero or more `FilterVerdict` → (`Scheduled` → one or more
/// `DeployOutcome`)\* → `Validated` | `Demoted`. A candidate killed by
/// statistical filtering ends at its last `FilterVerdict { kept: false }`;
/// a validated check later demoted by the counterexample pass has both a
/// `Validated` and a trailing `Demoted` event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Lifecycle {
    /// The candidate was hypothesized by a mining template.
    Mined {
        /// Template family that produced the hypothesis.
        template: String,
        /// Support count over the knowledge base.
        support: u64,
        /// Confidence in parts-per-million (the funnel filters on
        /// fractions; an integer ppm keeps the event integral and
        /// byte-deterministic).
        confidence_ppm: u64,
    },
    /// A filtering rule examined the candidate.
    FilterVerdict {
        /// Rule name: `min_confidence`, `min_lift`, `oracle`, …
        rule: String,
        /// Whether the candidate survived the rule.
        kept: bool,
    },
    /// The validation scheduler placed the candidate in a deployment wave.
    Scheduled {
        /// Scheduler iteration the candidate was scheduled in.
        wave: u64,
        /// Number of co-scheduled candidates sharing a resource type with
        /// this one (conflict pressure inside the wave).
        conflicts: u64,
    },
    /// A deployment probe for this candidate completed.
    DeployOutcome {
        /// Which funnel stage issued the probe.
        polarity: Polarity,
        /// Whether the deployment succeeded.
        success: bool,
        /// Failure phase (e.g. `plugin checks`), empty on success.
        phase: String,
        /// Failing rule id reported by the cloud, empty on success.
        rule: String,
        /// Whether the result came from the deployer's memo cache.
        cached: bool,
    },
    /// The candidate survived validation into the final check set.
    Validated {
        /// True if validated transitively via an indistinguishable-group
        /// representative (§5.5 O3) rather than its own deployment.
        via_group: bool,
    },
    /// The candidate was removed, with a machine-readable reason:
    /// `deployable`, `unsatisfiable`, `no_positive_case`,
    /// `not_applicable`, or `counterexample`.
    Demoted {
        /// Machine-readable demotion reason.
        reason: String,
    },
    /// A serving daemon evaluated this check against a submitted program —
    /// the post-validation half of the ledger. Emitted per violated check
    /// per served scan, so `zodiac explain <fp>` against a daemon trace
    /// shows where a validated check is firing in production.
    Served {
        /// Canonical fingerprint of the scanned program (folded to 64
        /// bits), linking the event to a specific submission.
        program: u64,
        /// Violating instances of this check in the program.
        violations: u64,
        /// Whether the verdict came from the daemon's memo cache.
        cached: bool,
    },
    /// The repair engine proposed a candidate fix. Unlike the mining
    /// events above, repair events are keyed by the *repair fingerprint*
    /// (program fingerprint × check-set key), so one ledger collects the
    /// full funnel of candidates for a single repair request.
    RepairProposed {
        /// Canonical fingerprint of the violating program (folded to 64
        /// bits).
        program: u64,
        /// Number of attribute edits in the candidate.
        edits: u64,
    },
    /// One oracle layer judged the most recently proposed candidate.
    OracleVerdict {
        /// Layer index: 1 = deploy-succeeds, 2 = checks-pass,
        /// 3 = intent-preserved (deceptive-fix detector).
        layer: u64,
        /// Whether the candidate passed the layer.
        pass: bool,
        /// Failure detail (first failing reason), empty on pass.
        detail: String,
    },
    /// A candidate passed all oracle layers; the repair is final.
    RepairAccepted {
        /// Number of attribute edits in the accepted repair.
        edits: u64,
    },
    /// A candidate was rejected by an oracle layer.
    RepairRejected {
        /// Layer index that rejected the candidate (1–3).
        layer: u64,
        /// Machine-readable reason (e.g. `deleted-resource`,
        /// `narrowed-scope`, a failing deploy rule, a violated check).
        reason: String,
    },
}

impl Lifecycle {
    /// Stable lowercase wire name of the event kind.
    pub fn kind(&self) -> &'static str {
        match self {
            Lifecycle::Mined { .. } => "mined",
            Lifecycle::FilterVerdict { .. } => "filter_verdict",
            Lifecycle::Scheduled { .. } => "scheduled",
            Lifecycle::DeployOutcome { .. } => "deploy_outcome",
            Lifecycle::Validated { .. } => "validated",
            Lifecycle::Demoted { .. } => "demoted",
            Lifecycle::Served { .. } => "served",
            Lifecycle::RepairProposed { .. } => "repair_proposed",
            Lifecycle::OracleVerdict { .. } => "oracle_verdict",
            Lifecycle::RepairAccepted { .. } => "repair_accepted",
            Lifecycle::RepairRejected { .. } => "repair_rejected",
        }
    }
}

/// A timestamped lifecycle event for one candidate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CandidateEvent {
    /// 64-bit fingerprint of the candidate's canonical form.
    pub fingerprint: u64,
    /// Offset from the trace epoch, microseconds.
    pub ts_us: u64,
    /// The transition.
    pub kind: Lifecycle,
}

impl CandidateEvent {
    /// Encodes the event as one JSON object (no trailing newline) in the
    /// schema-v2 wire form shared by the JSONL sink and tests.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(128);
        out.push_str("{\"event\":\"lifecycle\",\"fp\":\"");
        out.push_str(&format!("{:016x}", self.fingerprint));
        out.push_str("\",\"ts\":");
        out.push_str(&self.ts_us.to_string());
        out.push_str(",\"kind\":\"");
        out.push_str(self.kind.kind());
        out.push('"');
        match &self.kind {
            Lifecycle::Mined {
                template,
                support,
                confidence_ppm,
            } => {
                out.push_str(",\"template\":\"");
                crate::escape_json(template, &mut out);
                out.push_str(&format!(
                    "\",\"support\":{support},\"confidence_ppm\":{confidence_ppm}"
                ));
            }
            Lifecycle::FilterVerdict { rule, kept } => {
                out.push_str(",\"rule\":\"");
                crate::escape_json(rule, &mut out);
                out.push_str(&format!("\",\"kept\":{kept}"));
            }
            Lifecycle::Scheduled { wave, conflicts } => {
                out.push_str(&format!(",\"wave\":{wave},\"conflicts\":{conflicts}"));
            }
            Lifecycle::DeployOutcome {
                polarity,
                success,
                phase,
                rule,
                cached,
            } => {
                out.push_str(",\"polarity\":\"");
                out.push_str(polarity.as_str());
                out.push_str(&format!("\",\"success\":{success}"));
                if !phase.is_empty() {
                    out.push_str(",\"phase\":\"");
                    crate::escape_json(phase, &mut out);
                    out.push('"');
                }
                if !rule.is_empty() {
                    out.push_str(",\"rule\":\"");
                    crate::escape_json(rule, &mut out);
                    out.push('"');
                }
                out.push_str(&format!(",\"cached\":{cached}"));
            }
            Lifecycle::Validated { via_group } => {
                out.push_str(&format!(",\"via_group\":{via_group}"));
            }
            Lifecycle::Demoted { reason } => {
                out.push_str(",\"reason\":\"");
                crate::escape_json(reason, &mut out);
                out.push('"');
            }
            Lifecycle::Served {
                program,
                violations,
                cached,
            } => {
                out.push_str(&format!(
                    ",\"program\":\"{program:016x}\",\"violations\":{violations},\"cached\":{cached}"
                ));
            }
            Lifecycle::RepairProposed { program, edits } => {
                out.push_str(&format!(
                    ",\"program\":\"{program:016x}\",\"edits\":{edits}"
                ));
            }
            Lifecycle::OracleVerdict {
                layer,
                pass,
                detail,
            } => {
                out.push_str(&format!(",\"layer\":{layer},\"pass\":{pass}"));
                if !detail.is_empty() {
                    out.push_str(",\"detail\":\"");
                    crate::escape_json(detail, &mut out);
                    out.push('"');
                }
            }
            Lifecycle::RepairAccepted { edits } => {
                out.push_str(&format!(",\"edits\":{edits}"));
            }
            Lifecycle::RepairRejected { layer, reason } => {
                out.push_str(&format!(",\"layer\":{layer},\"reason\":\""));
                crate::escape_json(reason, &mut out);
                out.push('"');
            }
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_are_stable() {
        assert_eq!(
            Lifecycle::Mined {
                template: String::new(),
                support: 0,
                confidence_ppm: 0
            }
            .kind(),
            "mined"
        );
        assert_eq!(
            Lifecycle::Demoted {
                reason: String::new()
            }
            .kind(),
            "demoted"
        );
        assert_eq!(Polarity::Counterexample.as_str(), "counterexample");
    }

    #[test]
    fn json_encoding_is_escaped_and_keyed_by_hex_fingerprint() {
        let ev = CandidateEvent {
            fingerprint: 0xAB,
            ts_us: 7,
            kind: Lifecycle::Demoted {
                reason: "counter\"example".into(),
            },
        };
        let json = ev.to_json();
        assert!(json.starts_with("{\"event\":\"lifecycle\",\"fp\":\"00000000000000ab\""));
        assert!(json.contains("\"kind\":\"demoted\""));
        assert!(json.contains("counter\\\"example"));
    }

    #[test]
    fn served_encodes_program_as_hex() {
        let ev = CandidateEvent {
            fingerprint: 2,
            ts_us: 9,
            kind: Lifecycle::Served {
                program: 0xBEEF,
                violations: 3,
                cached: true,
            },
        };
        let json = ev.to_json();
        assert!(json.contains("\"kind\":\"served\""));
        assert!(json.contains("\"program\":\"000000000000beef\""));
        assert!(json.contains("\"violations\":3"));
        assert!(json.contains("\"cached\":true"));
    }

    #[test]
    fn repair_events_encode_layer_and_reason() {
        let proposed = CandidateEvent {
            fingerprint: 3,
            ts_us: 1,
            kind: Lifecycle::RepairProposed {
                program: 0xCAFE,
                edits: 2,
            },
        };
        assert!(proposed.to_json().contains("\"kind\":\"repair_proposed\""));
        assert!(proposed
            .to_json()
            .contains("\"program\":\"000000000000cafe\",\"edits\":2"));

        let pass = CandidateEvent {
            fingerprint: 3,
            ts_us: 2,
            kind: Lifecycle::OracleVerdict {
                layer: 1,
                pass: true,
                detail: String::new(),
            },
        };
        assert!(pass.to_json().contains("\"layer\":1,\"pass\":true"));
        assert!(!pass.to_json().contains("\"detail\""));

        let rejected = CandidateEvent {
            fingerprint: 3,
            ts_us: 3,
            kind: Lifecycle::RepairRejected {
                layer: 3,
                reason: "deleted-resource \"vm\"".into(),
            },
        };
        let json = rejected.to_json();
        assert!(json.contains("\"kind\":\"repair_rejected\""));
        assert!(json.contains("\"layer\":3,\"reason\":\"deleted-resource \\\"vm\\\"\""));

        let accepted = CandidateEvent {
            fingerprint: 3,
            ts_us: 4,
            kind: Lifecycle::RepairAccepted { edits: 1 },
        };
        assert!(accepted.to_json().contains("\"kind\":\"repair_accepted\""));
        assert!(accepted.to_json().contains("\"edits\":1"));
    }

    #[test]
    fn deploy_outcome_omits_empty_phase_and_rule() {
        let ok = CandidateEvent {
            fingerprint: 1,
            ts_us: 0,
            kind: Lifecycle::DeployOutcome {
                polarity: Polarity::TpProbe,
                success: true,
                phase: String::new(),
                rule: String::new(),
                cached: true,
            },
        };
        let json = ok.to_json();
        assert!(!json.contains("\"phase\""));
        assert!(!json.contains("\"rule\""));
        assert!(json.contains("\"cached\":true"));
    }
}
