//! Tail-latency exemplars: the slowest requests, kept with enough identity
//! to replay them.
//!
//! Quantiles say *that* a p99 exists; an exemplar says *which request it
//! was*. [`TailExemplars`] keeps a bounded reservoir of the slowest N
//! observations per operation, each carrying its span id and the check
//! fingerprints it touched — so an operator can go from "scan p99 is
//! 40 ms" straight to `zodiac explain <fingerprint>` and read the causal
//! ledger of the very check that made the outlier slow.

use crate::escape_json;
use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError, RwLock};

/// One slow request: identity plus the fingerprints needed to replay it
/// through the provenance tooling.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Exemplar {
    /// Latency of the request, microseconds.
    pub latency_us: u64,
    /// Offset from the recorder's epoch when the request finished.
    pub ts_us: u64,
    /// Span id of the request inside its trace (0 if tracing was off).
    pub span_id: u64,
    /// Check fingerprints this request touched (violated checks for a
    /// scan, the repaired check set for a repair). Bounded by the caller.
    pub fingerprints: Vec<u64>,
}

/// One op's reservoir plus its admission floor.
#[derive(Default)]
struct Reservoir {
    /// Latency of the least-slow retained exemplar once the reservoir is
    /// full; 0 while filling. Read with a relaxed load on the hot path —
    /// a stale floor only costs one harmless lock acquisition.
    floor: AtomicU64,
    list: Mutex<Vec<Exemplar>>,
}

/// A bounded per-op reservoir of the slowest requests, slowest first.
///
/// The common case — a request faster than everything already retained —
/// is an atomic floor check with no lock. Insertion is O(capacity) with
/// capacity ~8–32, which is noise next to the requests worth remembering;
/// ties order by earlier `ts_us` then lower `span_id`, so the reservoir
/// is deterministic for a given observation sequence.
pub struct TailExemplars {
    capacity: usize,
    ops: RwLock<HashMap<String, Arc<Reservoir>>>,
}

impl TailExemplars {
    /// A reservoir keeping at most `capacity` exemplars per op
    /// (minimum 1).
    pub fn new(capacity: usize) -> Self {
        TailExemplars {
            capacity: capacity.max(1),
            ops: RwLock::new(HashMap::new()),
        }
    }

    fn reservoir(&self, op: &str) -> Arc<Reservoir> {
        {
            let read = self.ops.read().unwrap_or_else(PoisonError::into_inner);
            if let Some(r) = read.get(op) {
                return r.clone();
            }
        }
        let mut write = self.ops.write().unwrap_or_else(PoisonError::into_inner);
        write.entry(op.to_string()).or_default().clone()
    }

    /// Offers one observation; it is kept iff it ranks among the slowest
    /// `capacity` seen for `op`.
    pub fn observe(&self, op: &str, exemplar: Exemplar) {
        let latency_us = exemplar.latency_us;
        self.observe_with(op, latency_us, move || exemplar);
    }

    /// [`TailExemplars::observe`], but the exemplar is built only when the
    /// latency can actually rank — the serving path's common case (request
    /// faster than everything retained) pays one map read and one atomic
    /// load, never a clock read or a fingerprint copy. `make` must return
    /// an exemplar whose `latency_us` equals the one offered here.
    pub fn observe_with(&self, op: &str, latency_us: u64, make: impl FnOnce() -> Exemplar) {
        let res = self.reservoir(op);
        let floor = res.floor.load(Ordering::Relaxed);
        if floor > 0 && latency_us <= floor {
            // Full reservoir, and an equal-latency observation would rank
            // after every retained peer (later ts) — skip without locking.
            return;
        }
        let exemplar = make();
        debug_assert_eq!(exemplar.latency_us, latency_us);
        let mut slot = res.list.lock().unwrap_or_else(PoisonError::into_inner);
        let rank = |e: &Exemplar| (std::cmp::Reverse(e.latency_us), e.ts_us, e.span_id);
        let at = slot
            .binary_search_by_key(&rank(&exemplar), rank)
            .unwrap_or_else(|i| i);
        if at < self.capacity {
            slot.insert(at, exemplar);
            slot.truncate(self.capacity);
        }
        if slot.len() == self.capacity {
            if let Some(last) = slot.last() {
                res.floor.store(last.latency_us, Ordering::Relaxed);
            }
        }
    }

    /// Every op's reservoir, name-sorted, slowest first within an op.
    pub fn snapshot(&self) -> BTreeMap<String, Vec<Exemplar>> {
        let ops = self.ops.read().unwrap_or_else(PoisonError::into_inner);
        ops.iter()
            .map(|(k, v)| {
                let list = v.list.lock().unwrap_or_else(PoisonError::into_inner);
                (k.clone(), list.clone())
            })
            .collect()
    }

    /// The single slowest exemplar for `op`, if any.
    pub fn slowest(&self, op: &str) -> Option<Exemplar> {
        let ops = self.ops.read().unwrap_or_else(PoisonError::into_inner);
        ops.get(op).and_then(|r| {
            r.list
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .first()
                .cloned()
        })
    }

    /// Single-line JSON:
    /// `{"scan":[{"latency_us":N,"ts_us":N,"span_id":N,"fingerprints":[..]}]}`.
    pub fn to_json(&self) -> String {
        let snap = self.snapshot();
        let mut out = String::with_capacity(128);
        out.push('{');
        for (i, (op, exemplars)) in snap.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            escape_json(op, &mut out);
            out.push_str("\":[");
            for (j, e) in exemplars.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "{{\"latency_us\":{},\"ts_us\":{},\"span_id\":{},\"fingerprints\":[",
                    e.latency_us, e.ts_us, e.span_id
                );
                for (k, fp) in e.fingerprints.iter().enumerate() {
                    if k > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "{fp}");
                }
                out.push_str("]}");
            }
            out.push(']');
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ex(latency_us: u64, span_id: u64) -> Exemplar {
        Exemplar {
            latency_us,
            ts_us: latency_us / 2,
            span_id,
            fingerprints: vec![span_id * 1000],
        }
    }

    #[test]
    fn keeps_only_the_slowest_n() {
        let t = TailExemplars::new(3);
        for (lat, id) in [(10, 1), (50, 2), (30, 3), (5, 4), (40, 5)] {
            t.observe("scan", ex(lat, id));
        }
        let snap = t.snapshot();
        let scan = snap.get("scan").unwrap();
        let latencies: Vec<u64> = scan.iter().map(|e| e.latency_us).collect();
        assert_eq!(latencies, vec![50, 40, 30]);
        assert_eq!(t.slowest("scan").unwrap().span_id, 2);
        assert!(t.slowest("repair").is_none());
    }

    #[test]
    fn fast_requests_do_not_evict_slow_ones() {
        let t = TailExemplars::new(2);
        t.observe("scan", ex(100, 1));
        t.observe("scan", ex(90, 2));
        for i in 0..50 {
            t.observe("scan", ex(1, 10 + i));
        }
        let snap = t.snapshot();
        assert_eq!(snap.get("scan").unwrap().len(), 2);
        assert_eq!(snap.get("scan").unwrap()[0].latency_us, 100);
    }

    #[test]
    fn ties_break_deterministically() {
        let t = TailExemplars::new(2);
        let mut a = ex(10, 7);
        a.ts_us = 5;
        let mut b = ex(10, 3);
        b.ts_us = 1;
        t.observe("scan", a.clone());
        t.observe("scan", b.clone());
        // Equal latency: earlier ts ranks first, regardless of insert order.
        let u = TailExemplars::new(2);
        u.observe("scan", b.clone());
        u.observe("scan", a.clone());
        assert_eq!(t.snapshot(), u.snapshot());
        assert_eq!(t.slowest("scan").unwrap().ts_us, 1);
    }

    #[test]
    fn json_encoding_is_sorted_and_parseable() {
        let t = TailExemplars::new(2);
        t.observe("scan", ex(10, 1));
        t.observe("repair", ex(20, 2));
        let text = t.to_json();
        let v: serde_json::Value = serde_json::from_str(&text).expect("exemplar JSON parses");
        let obj = v.as_object().unwrap();
        let keys: Vec<&String> = obj.keys().collect();
        assert_eq!(keys, vec!["repair", "scan"]);
        let fp = v
            .get("scan")
            .and_then(|a| a.as_array())
            .and_then(|a| a[0].get("fingerprints"))
            .and_then(|f| f.as_array())
            .and_then(|f| f[0].as_u64())
            .unwrap();
        assert_eq!(fp, 1000);
    }

    #[test]
    fn capacity_zero_clamps_to_one() {
        let t = TailExemplars::new(0);
        t.observe("scan", ex(10, 1));
        t.observe("scan", ex(20, 2));
        assert_eq!(t.snapshot().get("scan").unwrap().len(), 1);
        assert_eq!(t.slowest("scan").unwrap().latency_us, 20);
    }
}
