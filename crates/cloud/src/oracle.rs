//! The deployment-oracle abstraction shared by every deploy consumer.
//!
//! The paper treats the cloud as an expensive, unreliable oracle: deploys
//! are slow, rate-limited, and transiently flaky. This module defines the
//! [`DeployOracle`] trait (implemented by [`CloudSim`](crate::CloudSim)
//! here, by real Azure in the paper) and the [`FaultInjector`] hook that
//! lets a harness model those real-cloud transients inside the five-phase
//! engine. Execution engines report their counters through the
//! `zodiac-obs` [`MetricsSnapshot`] surface (see the `deploy.*` metric
//! namespace) rather than a bespoke telemetry struct.
//!
//! Transient failures are distinguished from ground-truth (deterministic)
//! failures by rule id: every injected fault uses a rule id under the
//! `transient/` prefix ([`TRANSIENT_PREFIX`]), so retry policies can
//! classify an outcome without knowing the fault source.

use zodiac_model::{Program, ResourceId};
use zodiac_obs::MetricsSnapshot;

use crate::report::{DeployOutcome, DeployReport, Phase};

/// Rule-id prefix marking transient (retryable) failures.
pub const TRANSIENT_PREFIX: &str = "transient/";

/// True if a failure rule id denotes a transient fault rather than a
/// ground-truth violation.
pub fn is_transient(rule_id: &str) -> bool {
    rule_id.starts_with(TRANSIENT_PREFIX)
}

/// The kinds of real-cloud transients the simulator can model (request
/// throttling, polling timeouts on slow resources, and spurious request
/// failures).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The cloud rejected the creation request with a retry-after hint
    /// (HTTP 429-style throttling).
    Throttled {
        /// Seconds the client is told to back off before retrying.
        retry_after_secs: u64,
    },
    /// Asynchronous polling on a slow resource timed out.
    PollingTimeout,
    /// The creation request failed for no ground-truth reason
    /// (HTTP 5xx-style flake).
    SpuriousFailure,
}

impl FaultKind {
    /// The deployment phase where this fault surfaces.
    pub fn phase(&self) -> Phase {
        match self {
            FaultKind::Throttled { .. } | FaultKind::SpuriousFailure => Phase::SendingRequest,
            FaultKind::PollingTimeout => Phase::PollingRequest,
        }
    }

    /// The `transient/` rule id recorded for this fault.
    pub fn rule_id(&self) -> &'static str {
        match self {
            FaultKind::Throttled { .. } => "transient/throttled",
            FaultKind::PollingTimeout => "transient/polling-timeout",
            FaultKind::SpuriousFailure => "transient/spurious-failure",
        }
    }

    /// Cloud-API-style error message.
    pub fn message(&self, resource: &ResourceId) -> String {
        match self {
            FaultKind::Throttled { retry_after_secs } => format!(
                "TooManyRequests: request rate limit reached creating {resource}; \
                 retry after {retry_after_secs}s"
            ),
            FaultKind::PollingTimeout => {
                format!("OperationTimedOut: polling on {resource} exceeded the client deadline")
            }
            FaultKind::SpuriousFailure => {
                format!("InternalServerError: transient error creating {resource}")
            }
        }
    }
}

/// Decides, per resource and phase, whether a deployment step fails
/// transiently. Implementations must be deterministic functions of their own
/// state (they are consulted from worker threads, hence `Sync`).
pub trait FaultInjector: Sync {
    /// Returns the fault to inject at this (resource, phase) step, if any.
    /// Only the request phases ([`Phase::SendingRequest`],
    /// [`Phase::PollingRequest`]) are consulted.
    fn inject(&self, resource: &ResourceId, phase: Phase) -> Option<FaultKind>;
}

/// Anything that can deploy a program and report the outcome.
///
/// The simulator implements this; the paper's implementation shells out to
/// `terraform apply` against live Azure. Execution engines (worker pools,
/// caches) wrap another oracle and implement it too, so consumers never know
/// whether they talk to the backend directly.
pub trait DeployOracle {
    /// Attempts a deployment.
    fn deploy(&self, program: &Program) -> DeployReport;

    /// Attempts a deployment under a fault injector. Backends that cannot
    /// model transients ignore the injector.
    fn deploy_with_faults(&self, program: &Program, _injector: &dyn FaultInjector) -> DeployReport {
        self.deploy(program)
    }

    /// Deploys a batch of independent programs, returning reports in input
    /// order. The default runs sequentially; execution engines override this
    /// with a worker pool.
    fn deploy_batch(&self, programs: &[Program]) -> Vec<DeployReport> {
        programs.iter().map(|p| self.deploy(p)).collect()
    }

    /// Convenience: did the deployment succeed?
    fn deploys_ok(&self, program: &Program) -> bool {
        self.deploy(program).outcome.is_success()
    }

    /// Like [`DeployOracle::deploy`], but also reports whether the result
    /// was served from a memo cache rather than a backend deployment.
    /// Backends without a cache return `false`; execution engines override
    /// this so provenance events can attribute cached outcomes.
    fn deploy_annotated(&self, program: &Program) -> (DeployReport, bool) {
        (self.deploy(program), false)
    }

    /// Batch form of [`DeployOracle::deploy_annotated`]: reports in input
    /// order, each flagged with cache provenance.
    fn deploy_batch_annotated(&self, programs: &[Program]) -> Vec<(DeployReport, bool)> {
        self.deploy_batch(programs)
            .into_iter()
            .map(|r| (r, false))
            .collect()
    }

    /// Execution-engine metrics (the `deploy.*` namespace — requests,
    /// cache hits, retries, latency histograms), if this oracle collects
    /// any.
    fn telemetry(&self) -> Option<MetricsSnapshot> {
        None
    }
}

/// Transient outcomes never describe ground truth; helpers for classifying
/// a report.
impl DeployReport {
    /// True if this report's failure (if any) is transient and the deploy
    /// should be retried rather than interpreted.
    pub fn is_transient_failure(&self) -> bool {
        match &self.outcome {
            DeployOutcome::Failure { rule_id, .. } => is_transient(rule_id),
            DeployOutcome::Success => false,
        }
    }
}
