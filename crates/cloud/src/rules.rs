//! Ground-truth semantic rules enforced by the simulated cloud.
//!
//! Each rule mirrors a documented (or undocumented-but-real) Azure
//! requirement. Most are expressed directly in the Zodiac check language and
//! evaluated with the `zodiac-spec` evaluator; a handful need procedural
//! logic (name uniqueness, schema validation, address arithmetic) and are
//! implemented as [`CustomRule`]s.
//!
//! Every rule declares the deployment [`Phase`] at which its violation
//! surfaces and the *fix variable*: the bound resource that must change to
//! repair the violation, which drives the rollback-radius computation.

use crate::report::Phase;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use zodiac_graph::{NodeIdx, ResourceGraph};
use zodiac_kb::{docs, AttrKind, KnowledgeBase, ValueFormat};
use zodiac_model::{Cidr, Symbol, Value};
use zodiac_spec::{instances, parse_check, Check, EvalContext};

/// Category of a check, used for blast-radius bucketing (Figure 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum CheckCategory {
    /// Constrains attributes of one resource.
    IntraResource,
    /// Relates attributes across connected resources (no aggregation).
    InterResource,
    /// Uses degree/length aggregation.
    InterAgg,
    /// Quantitative rules whose parameters come from documentation tables.
    Interpolation,
}

/// A single ground-truth violation instance.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Rule id.
    pub rule_id: String,
    /// Bound resource nodes.
    pub involved: Vec<NodeIdx>,
    /// The node whose deployment step surfaced the violation.
    pub failing: NodeIdx,
    /// The node that must change to fix it.
    pub fix: NodeIdx,
    /// Error message.
    pub message: String,
}

impl Violation {
    /// Converts to the serialisable record form.
    pub fn into_record(self, graph: &ResourceGraph) -> crate::report::ViolationRecord {
        crate::report::ViolationRecord {
            rule_id: self.rule_id,
            involved: self
                .involved
                .iter()
                .map(|&n| graph.resource(n).id())
                .collect(),
            failing: graph.resource(self.failing).id(),
            fix: graph.resource(self.fix).id(),
            message: self.message,
        }
    }
}

/// The body of a ground rule.
pub enum RuleBody {
    /// A rule expressed in the check language; `fix_var` names the binding
    /// variable whose resource is the fix target.
    Spec {
        /// The check.
        check: Box<Check>,
        /// Fix-target variable.
        fix_var: Symbol,
    },
    /// A procedurally implemented rule.
    Custom(CustomRule),
}

/// Procedural rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CustomRule {
    /// Class-1/2 schema validation of the deploying resource: required
    /// attributes, enum domains, integer ranges, locations, CIDR syntax,
    /// and Class-3 endpoint target legality.
    Schema,
    /// References to resources absent from the program ("not found").
    DanglingRefs,
    /// Two deployed resources of the same type share a `name`.
    DuplicateNames,
    /// Storage-account names must be 3–24 lowercase alphanumerics.
    SaNameFormat,
    /// Reserved subnets have minimum sizes (GatewaySubnet /29,
    /// AzureFirewallSubnet /26, AzureBastionSubnet /26).
    ReservedSubnetSize,
    /// Security rules in one group with the same direction need distinct
    /// priorities.
    UniqueSgRulePriority,
    /// Data-disk attachments on one VM need distinct LUNs.
    UniqueLun,
    /// A statically allocated NIC address must lie in its subnet's range.
    PrivateIpInSubnet,
    /// VM skus are not offered in every region (§6's region-specific
    /// constraints, implemented as an extension).
    VmSkuRegionAvailability,
}

/// A ground-truth rule.
pub struct GroundRule {
    /// Stable id, e.g. `net/vm-nic-same-location`.
    pub id: String,
    /// Human-readable description.
    pub description: String,
    /// Phase at which violations surface.
    pub phase: Phase,
    /// Category for blast-radius bucketing.
    pub category: CheckCategory,
    /// The rule body.
    pub body: RuleBody,
}

impl GroundRule {
    /// Evaluates the rule at a deployment step: returns violations that are
    /// *introduced* by deploying `node` on top of `deployed`.
    pub fn eval(
        &self,
        graph: &ResourceGraph,
        kb: &KnowledgeBase,
        node: NodeIdx,
        deployed: &HashSet<NodeIdx>,
    ) -> Vec<Violation> {
        match &self.body {
            RuleBody::Spec { check, fix_var } => {
                let ctx = EvalContext {
                    graph,
                    kb: Some(kb),
                };
                instances(check, ctx)
                    .into_iter()
                    .filter(|i| i.is_violation())
                    .filter(|i| {
                        i.binding.values().any(|&n| n == node)
                            && i.binding
                                .values()
                                .all(|&n| n == node || deployed.contains(&n))
                    })
                    .map(|i| {
                        let fix = i.binding.get(fix_var).copied().unwrap_or(node);
                        Violation {
                            rule_id: self.id.clone(),
                            involved: i.binding.values().copied().collect(),
                            failing: node,
                            fix,
                            message: format!("{}: {}", self.description, check),
                        }
                    })
                    .collect()
            }
            RuleBody::Custom(rule) => eval_custom(*rule, self, graph, kb, node, deployed),
        }
    }

    /// The check text, for spec-based rules.
    pub fn check(&self) -> Option<&Check> {
        match &self.body {
            RuleBody::Spec { check, .. } => Some(check.as_ref()),
            RuleBody::Custom(_) => None,
        }
    }
}

/// Builds a spec-based rule. Returns `None` when the check source fails to
/// parse or the fix variable is unbound; a malformed entry is dropped from
/// the table rather than panicking, and `tests/rules_coverage.rs` exercises
/// every rule id so a dropped rule fails the suite.
fn spec_rule(
    id: &str,
    phase: Phase,
    category: CheckCategory,
    fix_var: &str,
    check_src: &str,
    description: &str,
) -> Option<GroundRule> {
    let check = parse_check(check_src).ok()?;
    if !check.bindings.iter().any(|b| b.var == fix_var) {
        return None;
    }
    Some(GroundRule {
        id: id.to_string(),
        description: description.to_string(),
        phase,
        category,
        body: RuleBody::Spec {
            check: Box::new(check),
            fix_var: Symbol::intern(fix_var),
        },
    })
}

/// Builds a custom (imperative) rule. Infallible, but returns `Option` so
/// the rule table composes uniformly with [`spec_rule`].
fn custom_rule(
    id: &str,
    phase: Phase,
    category: CheckCategory,
    rule: CustomRule,
    description: &str,
) -> Option<GroundRule> {
    Some(GroundRule {
        id: id.to_string(),
        description: description.to_string(),
        phase,
        category,
        body: RuleBody::Custom(rule),
    })
}

/// The full Azure ground-truth rule set.
pub fn ground_truth() -> Vec<GroundRule> {
    use CheckCategory::*;
    use Phase::*;

    let table: Vec<Option<GroundRule>> = vec![
        // ------------------------------------------------ plugin checks ---
        custom_rule(
            "schema/validate",
            PluginCheck,
            IntraResource,
            CustomRule::Schema,
            "resource must satisfy provider schema",
        ),
        custom_rule(
            "schema/sa-name-format",
            PluginCheck,
            IntraResource,
            CustomRule::SaNameFormat,
            "storage account names are 3-24 lowercase alphanumerics",
        ),
        spec_rule(
            "ip/standard-needs-static",
            PluginCheck,
            IntraResource,
            "r",
            "let r:IP in r.sku == 'Standard' => r.allocation_method == 'Static'",
            "Standard sku public IPs must use static allocation",
        ),
        spec_rule(
            "nic/static-needs-address",
            PluginCheck,
            IntraResource,
            "r",
            "let r:NIC in r.ip_configuration.private_ip_address_allocation == 'Static' => r.ip_configuration.private_ip_address != null",
            "static NIC allocation requires an explicit private IP",
        ),
        spec_rule(
            "disk/copy-needs-source",
            PluginCheck,
            IntraResource,
            "r",
            "let r:DISK in r.create_option == 'Copy' => r.source_resource_id != null",
            "copied disks need a source resource",
        ),
        spec_rule(
            "route/appliance-needs-hop-ip",
            PluginCheck,
            IntraResource,
            "r",
            "let r:ROUTE in r.next_hop_type == 'VirtualAppliance' => r.next_hop_in_ip_address != null",
            "VirtualAppliance routes need a next-hop IP",
        ),
        // ---------------------------------------------- pre-deploy sync ---
        custom_rule(
            "name/duplicate",
            PreDeploySync,
            IntraResource,
            CustomRule::DuplicateNames,
            "resource names must be unique per type",
        ),
        spec_rule(
            "disk/os-data-name-clash",
            PreDeploySync,
            InterResource,
            "r3",
            "let r1:ATTACH, r2:VM, r3:DISK in coconn(r1.virtual_machine_id -> r2.id, r1.managed_disk_id -> r3.id) => r2.os_disk.name != r3.name",
            "os disk and data disks share the Azure disk namespace",
        ),
        // ---------------------------------------------- sending request ---
        custom_rule(
            "ref/dangling",
            SendingRequest,
            InterResource,
            CustomRule::DanglingRefs,
            "referenced resource was not found",
        ),
        custom_rule(
            "vm/sku-region-availability",
            SendingRequest,
            IntraResource,
            CustomRule::VmSkuRegionAvailability,
            "the requested VM size is not available in the region",
        ),
        custom_rule(
            "nic/private-ip-in-subnet",
            SendingRequest,
            InterResource,
            CustomRule::PrivateIpInSubnet,
            "static private IP must be inside the subnet range",
        ),
        custom_rule(
            "sg/unique-rule-priority",
            SendingRequest,
            IntraResource,
            CustomRule::UniqueSgRulePriority,
            "security rules of one direction need distinct priorities",
        ),
        custom_rule(
            "attach/unique-lun",
            SendingRequest,
            InterAgg,
            CustomRule::UniqueLun,
            "data disk LUNs must be unique per VM",
        ),
        spec_rule(
            "net/vm-nic-same-location",
            SendingRequest,
            InterResource,
            "r2",
            "let r1:VM, r2:NIC in conn(r1.network_interface_ids -> r2.id) => r1.location == r2.location",
            "a VM and its NICs must share a region",
        ),
        spec_rule(
            "net/nic-vnet-same-location",
            SendingRequest,
            InterResource,
            "r1",
            "let r1:NIC, r2:VPC in path(r1 -> r2) => r1.location == r2.location",
            "a NIC must be in its virtual network's region",
        ),
        spec_rule(
            "net/subnet-in-vnet-range",
            SendingRequest,
            InterResource,
            "r1",
            "let r1:SUBNET, r2:VPC in conn(r1.virtual_network_name -> r2.name) => contain(r2.address_space, r1.address_prefixes)",
            "subnet prefixes must lie inside the VNet address space",
        ),
        spec_rule(
            "net/sibling-subnet-overlap",
            SendingRequest,
            InterResource,
            "r1",
            "let r1:SUBNET, r2:SUBNET, r3:VPC in coconn(r1.virtual_network_name -> r3.name, r2.virtual_network_name -> r3.name) => !overlap(r1.address_prefixes, r2.address_prefixes)",
            "subnets of one VNet cannot overlap",
        ),
        spec_rule(
            "net/peering-cidr-overlap",
            SendingRequest,
            InterResource,
            "r2",
            "let r1:PEERING, r2:VPC, r3:VPC in coconn(r1.virtual_network_name -> r2.name, r1.remote_virtual_network_id -> r3.id) => !overlap(r2.address_space, r3.address_space)",
            "peered VNets cannot have overlapping address spaces",
        ),
        spec_rule(
            "gw/tunnel-vpc-overlap",
            SendingRequest,
            InterResource,
            "r2",
            "let r1:TUNNEL, r2:VPC, r3:VPC in copath(r1 -> r2, r1 -> r3) => !overlap(r2.address_space, r3.address_space)",
            "tunneled VNets need exclusive CIDR ranges",
        ),
        spec_rule(
            "gw/requires-gateway-subnet",
            SendingRequest,
            InterResource,
            "r2",
            "let r1:GW, r2:SUBNET in conn(r1.ip_configuration.subnet_id -> r2.id) => r2.name == 'GatewaySubnet'",
            "virtual network gateways deploy only into GatewaySubnet",
        ),
        spec_rule(
            "gw/gateway-subnet-exclusive",
            SendingRequest,
            InterAgg,
            "r1",
            "let r1:GW, r2:SUBNET in conn(r1.ip_configuration.subnet_id -> r2.id) => indegree(r2, !GW) == 0",
            "no other resource can share a gateway's subnet",
        ),
        spec_rule(
            "fw/requires-firewall-subnet",
            SendingRequest,
            InterResource,
            "r2",
            "let r1:FW, r2:SUBNET in conn(r1.ip_configuration.subnet_id -> r2.id) => r2.name == 'AzureFirewallSubnet'",
            "firewalls deploy only into AzureFirewallSubnet",
        ),
        spec_rule(
            "fw/firewall-subnet-exclusive",
            SendingRequest,
            InterAgg,
            "r1",
            "let r1:FW, r2:SUBNET in conn(r1.ip_configuration.subnet_id -> r2.id) => indegree(r2, !FW) == 0",
            "no other resource can share a firewall's subnet",
        ),
        spec_rule(
            "fw/requires-standard-static-ip",
            SendingRequest,
            InterResource,
            "r2",
            "let r1:FW, r2:IP in conn(r1.ip_configuration.public_ip_address_id -> r2.id) => r2.sku == 'Standard'",
            "firewall public IPs must be Standard sku",
        ),
        spec_rule(
            "bastion/requires-bastion-subnet",
            SendingRequest,
            InterResource,
            "r2",
            "let r1:BASTION, r2:SUBNET in conn(r1.ip_configuration.subnet_id -> r2.id) => r2.name == 'AzureBastionSubnet'",
            "bastion hosts deploy only into AzureBastionSubnet",
        ),
        spec_rule(
            "bastion/requires-standard-ip",
            SendingRequest,
            InterResource,
            "r2",
            "let r1:BASTION, r2:IP in conn(r1.ip_configuration.public_ip_address_id -> r2.id) => r2.sku == 'Standard'",
            "bastion public IPs must be Standard sku",
        ),
        custom_rule(
            "net/reserved-subnet-size",
            SendingRequest,
            IntraResource,
            CustomRule::ReservedSubnetSize,
            "reserved subnets have minimum sizes",
        ),
        spec_rule(
            "gw/basic-no-active-active",
            SendingRequest,
            IntraResource,
            "r",
            "let r:GW in r.sku == 'Basic' => r.active_active == false",
            "Basic sku gateways do not support active-active",
        ),
        spec_rule(
            "gw/active-active-two-ipconfigs",
            SendingRequest,
            IntraResource,
            "r",
            "let r:GW in r.active_active == true => length(r.ip_configuration) >= 2",
            "active-active gateways need two IP configurations",
        ),
        spec_rule(
            "gw/vnet2vnet-needs-peer",
            SendingRequest,
            IntraResource,
            "r",
            "let r:TUNNEL in r.type == 'Vnet2Vnet' => r.peer_virtual_network_gateway_id != null",
            "Vnet2Vnet tunnels need a peer gateway",
        ),
        spec_rule(
            "gw/ipsec-needs-local-gw",
            SendingRequest,
            IntraResource,
            "r",
            "let r:TUNNEL in r.type == 'IPsec' => r.local_network_gateway_id != null",
            "IPsec tunnels need a local network gateway",
        ),
        spec_rule(
            "gw/vnet2vnet-no-ha-gw",
            SendingRequest,
            InterAgg,
            "r2",
            "let r1:TUNNEL, r2:GW in conn(r1.peer_virtual_network_gateway_id -> r2.id) => r2.active_active == false",
            "Vnet2Vnet peer gateways cannot be active-active",
        ),
        spec_rule(
            "nic/single-vm",
            SendingRequest,
            InterAgg,
            "r1",
            "let r1:VM, r2:NIC in conn(r1.network_interface_ids -> r2.id) => indegree(r2, VM) == 1",
            "a NIC attaches to at most one VM",
        ),
        spec_rule(
            "vm/spot-needs-eviction-policy",
            SendingRequest,
            IntraResource,
            "r",
            "let r:VM in r.priority == 'Spot' => r.eviction_policy != null",
            "spot VMs must set an eviction policy",
        ),
        spec_rule(
            "vm/regular-no-eviction-policy",
            SendingRequest,
            IntraResource,
            "r",
            "let r:VM in r.priority == 'Regular' => r.eviction_policy == null",
            "eviction policy applies only to spot VMs",
        ),
        spec_rule(
            "vm/zone-avset-exclusive",
            SendingRequest,
            IntraResource,
            "r",
            "let r:VM in r.zone != null => r.availability_set_id == null",
            "zonal VMs cannot join availability sets",
        ),
        spec_rule(
            "vm/image-needs-source-ref",
            SendingRequest,
            IntraResource,
            "r",
            "let r:VM in r.create_option == 'Image' => r.source_image_reference != null",
            "image-created VMs need a source image reference",
        ),
        spec_rule(
            "disk/vm-same-location",
            SendingRequest,
            InterResource,
            "r3",
            "let r1:ATTACH, r2:VM, r3:DISK in coconn(r1.virtual_machine_id -> r2.id, r1.managed_disk_id -> r3.id) => r2.location == r3.location",
            "a VM and its data disks must share a region",
        ),
        spec_rule(
            "appgw/ip-must-be-standard",
            SendingRequest,
            InterResource,
            "r2",
            "let r1:APPGW, r2:IP in conn(r1.frontend_ip_configuration.public_ip_address_id -> r2.id) => r2.sku == 'Standard'",
            "application gateway frontend IPs must be Standard sku",
        ),
        spec_rule(
            "appgw/subnet-exclusive",
            SendingRequest,
            InterAgg,
            "r1",
            "let r1:APPGW, r2:SUBNET in conn(r1.gateway_ip_configuration.subnet_id -> r2.id) => indegree(r2, !APPGW) == 0",
            "the application gateway subnet is exclusive",
        ),
        spec_rule(
            "appgw/sku-name-tier-match",
            SendingRequest,
            IntraResource,
            "r",
            "let r:APPGW in r.sku.name == 'Standard_v2' => r.sku.tier == 'Standard_v2'",
            "v2 sku names require the matching tier",
        ),
        spec_rule(
            "appgw/waf-requires-waf-tier",
            SendingRequest,
            IntraResource,
            "r",
            "let r:APPGW in r.waf_configuration != null => r.sku.tier == 'WAF_v2'",
            "WAF configuration requires a WAF_v2 tier",
        ),
        spec_rule(
            "appgw/v2-rule-needs-priority",
            SendingRequest,
            IntraResource,
            "r",
            "let r:APPGW in r.sku.name == 'Standard_v2' => r.request_routing_rule.priority != null",
            "v2 routing rules must specify a priority",
        ),
        spec_rule(
            "sa/premium-no-gzrs",
            SendingRequest,
            IntraResource,
            "r",
            "let r:SA in r.account_tier == 'Premium' => r.account_replication_type != 'GZRS'",
            "Premium storage accounts do not support GZRS",
        ),
        spec_rule(
            "sa/premium-no-ragzrs",
            SendingRequest,
            IntraResource,
            "r",
            "let r:SA in r.account_tier == 'Premium' => r.account_replication_type != 'RAGZRS'",
            "Premium storage accounts do not support RA-GZRS",
        ),
        spec_rule(
            "sa/premium-no-grs",
            SendingRequest,
            IntraResource,
            "r",
            "let r:SA in r.account_tier == 'Premium' => r.account_replication_type != 'GRS'",
            "Premium storage accounts do not support GRS",
        ),
        spec_rule(
            "sa/premium-no-ragrs",
            SendingRequest,
            IntraResource,
            "r",
            "let r:SA in r.account_tier == 'Premium' => r.account_replication_type != 'RAGRS'",
            "Premium storage accounts do not support RA-GRS",
        ),
        spec_rule(
            "nat/ip-must-be-standard",
            SendingRequest,
            InterResource,
            "r2",
            "let r1:NATIP, r2:IP in conn(r1.public_ip_address_id -> r2.id) => r2.sku == 'Standard'",
            "NAT gateway public IPs must be Standard sku",
        ),
        spec_rule(
            "lb/ip-sku-match",
            SendingRequest,
            InterResource,
            "r2",
            "let r1:LB, r2:IP in conn(r1.frontend_ip_configuration.public_ip_address_id -> r2.id) => r1.sku == r2.sku",
            "load balancer and frontend IP skus must match",
        ),
        // ---------------------------------------------- polling request ---
        spec_rule(
            "fw/no-subnet-delegation",
            PollingRequest,
            InterResource,
            "r2",
            "let r1:FW, r2:SUBNET in conn(r1.ip_configuration.subnet_id -> r2.id) => r2.delegation == null",
            "the firewall subnet cannot use delegation",
        ),
        spec_rule(
            "gw/no-subnet-delegation",
            PollingRequest,
            InterResource,
            "r2",
            "let r1:GW, r2:SUBNET in conn(r1.ip_configuration.subnet_id -> r2.id) => r2.delegation == null",
            "the gateway subnet cannot use delegation",
        ),
        spec_rule(
            "gw/policy-based-needs-basic",
            PollingRequest,
            IntraResource,
            "r",
            "let r:GW in r.vpn_type == 'PolicyBased' => r.sku == 'Basic'",
            "policy-based VPN gateways support only the Basic sku",
        ),
        spec_rule(
            "gw/policy-based-single-tunnel",
            PollingRequest,
            InterAgg,
            "r",
            "let r:GW in r.vpn_type == 'PolicyBased' => indegree(r, TUNNEL) <= 1",
            "policy-based gateways support a single tunnel",
        ),
        // --------------------------------------------- post-deploy sync ---
        spec_rule(
            "rt/subnet-single-route-table",
            PostDeploySync,
            InterAgg,
            "r1",
            "let r1:RTASSOC, r2:SUBNET in conn(r1.subnet_id -> r2.id) => indegree(r2, RTASSOC) == 1",
            "a subnet can attach to only one route table",
        ),
        spec_rule(
            "sg/subnet-single-nsg",
            PostDeploySync,
            InterAgg,
            "r1",
            "let r1:SGASSOC, r2:SUBNET in conn(r1.subnet_id -> r2.id) => indegree(r2, SGASSOC) == 1",
            "a subnet can attach to only one security group",
        ),
        spec_rule(
            "rt/duplicate-route-prefix",
            PostDeploySync,
            InterResource,
            "r1",
            "let r1:ROUTE, r2:ROUTE, r3:RT in coconn(r1.route_table_name -> r3.name, r2.route_table_name -> r3.name) => r1.address_prefix != r2.address_prefix",
            "routes in one table silently overwrite on equal prefixes",
        ),
    ];
    let mut rules: Vec<GroundRule> = table.into_iter().flatten().collect();

    // Interpolation rules: VM sku → NIC / data-disk limits, GW sku → tunnel
    // limits, generated from the documentation tables.
    for sku in docs::VM_SKUS {
        rules.extend(spec_rule(
            &format!("vm/max-nics-{}", sku.sku),
            SendingRequest,
            Interpolation,
            "r",
            &format!(
                "let r:VM in r.size == '{}' => outdegree(r, NIC) <= {}",
                sku.sku, sku.max_nics
            ),
            &format!("{} VMs attach at most {} NICs", sku.sku, sku.max_nics),
        ));
        rules.extend(spec_rule(
            &format!("vm/max-data-disks-{}", sku.sku),
            SendingRequest,
            Interpolation,
            "r",
            &format!(
                "let r:VM in r.size == '{}' => indegree(r, ATTACH) <= {}",
                sku.sku, sku.max_data_disks
            ),
            &format!(
                "{} VMs attach at most {} data disks",
                sku.sku, sku.max_data_disks
            ),
        ));
    }
    for sku in docs::GW_SKUS {
        rules.extend(spec_rule(
            &format!("gw/max-tunnels-{}", sku.sku),
            PollingRequest,
            Interpolation,
            "r",
            &format!(
                "let r:GW in r.sku == '{}' => indegree(r, TUNNEL) <= {}",
                sku.sku, sku.max_tunnels
            ),
            &format!(
                "{} gateways support at most {} tunnels",
                sku.sku, sku.max_tunnels
            ),
        ));
        if !sku.active_active {
            rules.extend(spec_rule(
                &format!("gw/no-active-active-{}", sku.sku),
                SendingRequest,
                Interpolation,
                "r",
                &format!(
                    "let r:GW in r.sku == '{}' => r.active_active == false",
                    sku.sku
                ),
                &format!("{} gateways do not support active-active", sku.sku),
            ));
        }
    }

    rules
}

// --------------------------------------------------------------------------
// Custom rule evaluation
// --------------------------------------------------------------------------

fn eval_custom(
    rule: CustomRule,
    meta: &GroundRule,
    graph: &ResourceGraph,
    kb: &KnowledgeBase,
    node: NodeIdx,
    deployed: &HashSet<NodeIdx>,
) -> Vec<Violation> {
    let mk = |fix: NodeIdx, involved: Vec<NodeIdx>, message: String| Violation {
        rule_id: meta.id.clone(),
        involved,
        failing: node,
        fix,
        message,
    };
    match rule {
        CustomRule::Schema => validate_schema(graph, kb, node)
            .into_iter()
            .map(|msg| mk(node, vec![node], msg))
            .collect(),
        CustomRule::DanglingRefs => {
            let r = graph.resource(node);
            r.references()
                .into_iter()
                .filter(|(_, reference)| graph.resolve(reference).is_none())
                .map(|(path, reference)| {
                    mk(
                        node,
                        vec![node],
                        format!("{}.{path} refers to missing {reference}", r.id()),
                    )
                })
                .collect()
        }
        CustomRule::DuplicateNames => {
            let r = graph.resource(node);
            let Some(name) = r.get_attr("name").and_then(Value::as_str) else {
                return Vec::new();
            };
            let scope = name_scope(graph, node);
            deployed
                .iter()
                .filter(|&&other| {
                    let o = graph.resource(other);
                    other != node
                        && o.rtype == r.rtype
                        && o.get_attr("name").and_then(Value::as_str) == Some(name)
                        && name_scope(graph, other) == scope
                })
                .map(|&other| {
                    mk(
                        node,
                        vec![node, other],
                        format!("{} already exists", r.id()),
                    )
                })
                .collect()
        }
        CustomRule::SaNameFormat => {
            let r = graph.resource(node);
            if r.rtype != "azurerm_storage_account" {
                return Vec::new();
            }
            let Some(name) = r.get_attr("name").and_then(Value::as_str) else {
                return Vec::new();
            };
            let ok = (3..=24).contains(&name.len())
                && name
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit());
            if ok {
                Vec::new()
            } else {
                vec![mk(
                    node,
                    vec![node],
                    format!("invalid storage account name {name:?}"),
                )]
            }
        }
        CustomRule::ReservedSubnetSize => {
            let r = graph.resource(node);
            if r.rtype != "azurerm_subnet" {
                return Vec::new();
            }
            let Some(name) = r.get_attr("name").and_then(Value::as_str) else {
                return Vec::new();
            };
            let min_prefix = match name {
                "GatewaySubnet" => 29,
                "AzureFirewallSubnet" | "AzureBastionSubnet" => 26,
                _ => return Vec::new(),
            };
            let prefixes = zodiac_spec::eval::resolve_multi(r, &["address_prefixes".to_string()]);
            prefixes
                .iter()
                .filter_map(|v| v.as_str())
                .filter_map(|s| s.parse::<Cidr>().ok())
                .filter(|c| c.prefix() > min_prefix)
                .map(|c| {
                    mk(
                        node,
                        vec![node],
                        format!("{name} must be at least /{min_prefix}, got /{}", c.prefix()),
                    )
                })
                .collect()
        }
        CustomRule::UniqueSgRulePriority => {
            let r = graph.resource(node);
            if r.rtype != "azurerm_network_security_group" {
                return Vec::new();
            }
            let Some(Value::List(sg_rules)) = r.get_attr("security_rule") else {
                return Vec::new();
            };
            let mut seen: Vec<(String, i64)> = Vec::new();
            let mut out = Vec::new();
            for rule_val in sg_rules {
                let Some(m) = rule_val.as_map() else { continue };
                let dir = m
                    .get("direction")
                    .and_then(Value::as_str)
                    .unwrap_or_default()
                    .to_string();
                let Some(priority) = m.get("priority").and_then(Value::as_int) else {
                    continue;
                };
                if seen.contains(&(dir.clone(), priority)) {
                    out.push(mk(
                        node,
                        vec![node],
                        format!("duplicate {dir} rule priority {priority}"),
                    ));
                }
                seen.push((dir, priority));
            }
            out
        }
        CustomRule::UniqueLun => {
            let r = graph.resource(node);
            if r.rtype != "azurerm_virtual_machine_data_disk_attachment" {
                return Vec::new();
            }
            let (Some(vm_ref), Some(lun)) = (
                r.get_attr("virtual_machine_id")
                    .and_then(Value::as_ref_value),
                r.get_attr("lun").and_then(Value::as_int),
            ) else {
                return Vec::new();
            };
            deployed
                .iter()
                .filter(|&&other| {
                    if other == node {
                        return false;
                    }
                    let o = graph.resource(other);
                    o.rtype == r.rtype
                        && o.get_attr("virtual_machine_id")
                            .and_then(Value::as_ref_value)
                            == Some(vm_ref)
                        && o.get_attr("lun").and_then(Value::as_int) == Some(lun)
                })
                .map(|&other| {
                    mk(
                        node,
                        vec![node, other],
                        format!("LUN {lun} already in use on {}", vm_ref),
                    )
                })
                .collect()
        }
        CustomRule::VmSkuRegionAvailability => {
            let r = graph.resource(node);
            if r.rtype != "azurerm_linux_virtual_machine" {
                return Vec::new();
            }
            let (Some(size), Some(location)) = (
                r.get_attr("size").and_then(Value::as_str),
                r.get_attr("location").and_then(Value::as_str),
            ) else {
                return Vec::new();
            };
            if docs::vm_sku_available(size, location) {
                Vec::new()
            } else {
                vec![mk(
                    node,
                    vec![node],
                    format!("size {size} is not available in {location}"),
                )]
            }
        }
        CustomRule::PrivateIpInSubnet => {
            let r = graph.resource(node);
            if r.rtype != "azurerm_network_interface" {
                return Vec::new();
            }
            let ips = zodiac_spec::eval::resolve_multi(
                r,
                &[
                    "ip_configuration".to_string(),
                    "private_ip_address".to_string(),
                ],
            );
            let mut out = Vec::new();
            for ip in ips.iter().filter_map(|v| v.as_str()) {
                let Ok(addr) = format!("{ip}/32").parse::<Cidr>() else {
                    out.push(mk(node, vec![node], format!("invalid private IP {ip}")));
                    continue;
                };
                // Find the subnet this NIC references.
                let in_range = graph.out_edges(node).any(|e| {
                    let target = graph.resource(e.dst);
                    if target.rtype != "azurerm_subnet" {
                        return false;
                    }
                    zodiac_spec::eval::resolve_multi(target, &["address_prefixes".to_string()])
                        .iter()
                        .filter_map(|v| v.as_str())
                        .filter_map(|s| s.parse::<Cidr>().ok())
                        .any(|c| c.contains(&addr))
                });
                if !in_range {
                    out.push(mk(
                        node,
                        vec![node],
                        format!("private IP {ip} outside subnet range"),
                    ));
                }
            }
            out
        }
    }
}

/// The naming scope of a resource: Azure names are unique *within a
/// container*, not globally. Subnets are scoped by their virtual network,
/// routes by their route table, peerings by their local VNet, containers by
/// their storage account; everything else shares the program-wide
/// (resource-group) scope.
fn name_scope(graph: &ResourceGraph, node: NodeIdx) -> Option<NodeIdx> {
    let r = graph.resource(node);
    let parent_type = match r.rtype.as_str() {
        "azurerm_subnet" => "azurerm_virtual_network",
        "azurerm_route" => "azurerm_route_table",
        "azurerm_virtual_network_peering" => "azurerm_virtual_network",
        "azurerm_storage_container" => "azurerm_storage_account",
        _ => return None,
    };
    graph
        .out_edges(node)
        .find(|e| graph.resource(e.dst).rtype == parent_type)
        .map(|e| e.dst)
}

/// Class-1/2 schema validation of a single resource.
fn validate_schema(graph: &ResourceGraph, kb: &KnowledgeBase, node: NodeIdx) -> Vec<String> {
    let r = graph.resource(node);
    let Some(schema) = kb.resource(&r.rtype) else {
        // Unattended resource types deploy without schema validation.
        return Vec::new();
    };
    let mut errors = Vec::new();

    // Required attributes. Top-level requirements always apply; nested
    // requirements apply within each present parent block.
    for attr in schema.attrs.values() {
        if attr.kind != AttrKind::Required {
            continue;
        }
        let segs: Vec<String> = attr.path.split('.').map(str::to_string).collect();
        if segs.len() == 1 {
            if r.get_attr(&segs[0]).is_none() {
                errors.push(format!(
                    "{}: missing required attribute {}",
                    r.id(),
                    attr.path
                ));
            }
        } else if let Some((child, parent)) = segs.split_last() {
            // Parent present, child missing in at least one instance?
            let parents = count_instances(r, parent);
            let children = zodiac_spec::eval::resolve_multi(r, &segs).len();
            if parents > 0 && children < parents {
                errors.push(format!(
                    "{}: missing required attribute {} in a {} block",
                    r.id(),
                    child,
                    parent.join(".")
                ));
            }
        }
    }

    // Value formats.
    for attr in schema.attrs.values() {
        let segs: Vec<String> = attr.path.split('.').map(str::to_string).collect();
        let values = zodiac_spec::eval::resolve_multi(r, &segs);
        for v in &values {
            match (&attr.format, v) {
                (ValueFormat::Enum { values: domain, .. }, Value::Str(s))
                    if !domain.iter().any(|d| d == s) =>
                {
                    errors.push(format!("{}: {} has invalid value {s:?}", r.id(), attr.path));
                }
                (ValueFormat::IntRange { min, max }, Value::Int(n)) if n < min || n > max => {
                    errors.push(format!(
                        "{}: {} = {n} outside [{min}, {max}]",
                        r.id(),
                        attr.path
                    ));
                }
                (ValueFormat::Location, Value::Str(s)) if !kb.locations.iter().any(|l| l == s) => {
                    errors.push(format!("{}: unknown location {s:?}", r.id()));
                }
                (ValueFormat::Cidr, Value::Str(s)) if s.parse::<Cidr>().is_err() => {
                    errors.push(format!("{}: {} is not a CIDR: {s:?}", r.id(), attr.path));
                }
                _ => {}
            }
        }
    }

    // Class-3 endpoint legality: references at declared endpoints must hit
    // the declared target type and attribute.
    for edge in graph.out_edges(node) {
        if let Some(spec) = schema.endpoint(&edge.in_endpoint) {
            let target = graph.resource(edge.dst);
            if target.rtype != spec.target_type || edge.out_attr != spec.target_attr {
                errors.push(format!(
                    "{}: {} must reference {}.{}, got {}.{}",
                    r.id(),
                    edge.in_endpoint,
                    zodiac_kb::short_name(&spec.target_type),
                    spec.target_attr,
                    zodiac_kb::short_name(&target.rtype),
                    edge.out_attr
                ));
            }
        }
    }

    errors
}

/// Number of instances of a (possibly nested, possibly repeated) block path.
fn count_instances(r: &zodiac_model::Resource, segs: &[String]) -> usize {
    let values = zodiac_spec::eval::resolve_multi(r, segs);
    if !values.is_empty() {
        return values.len();
    }
    // resolve_multi returns leaf values; a block resolves to itself when it
    // is a map. Try manual walk for the map case.
    let Some((head, rest)) = segs.split_first() else {
        return 0;
    };
    let Some(v) = r.attrs.get(head) else { return 0 };
    count_in_value(v, rest)
}

fn count_in_value(v: &Value, segs: &[String]) -> usize {
    let Some((head, rest)) = segs.split_first() else {
        return match v {
            Value::List(l) => l.len(),
            Value::Null => 0,
            _ => 1,
        };
    };
    match v {
        Value::Map(m) => m.get(head).map_or(0, |inner| count_in_value(inner, rest)),
        Value::List(l) => l.iter().map(|inner| count_in_value(inner, segs)).sum(),
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ground_truth_parses_and_is_unique() {
        let rules = ground_truth();
        assert!(rules.len() > 60, "only {} rules", rules.len());
        let mut ids: Vec<&str> = rules.iter().map(|r| r.id.as_str()).collect();
        let before = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), before, "duplicate rule ids");
    }

    #[test]
    fn every_phase_is_represented() {
        let rules = ground_truth();
        for phase in [
            Phase::PluginCheck,
            Phase::PreDeploySync,
            Phase::SendingRequest,
            Phase::PollingRequest,
            Phase::PostDeploySync,
        ] {
            assert!(
                rules.iter().any(|r| r.phase == phase),
                "no rule in phase {phase}"
            );
        }
    }

    #[test]
    fn request_phase_dominates() {
        // Table 3: ~75% of failures happen at request time; the rule set
        // should be weighted accordingly.
        let rules = ground_truth();
        let request = rules
            .iter()
            .filter(|r| r.phase == Phase::SendingRequest)
            .count();
        assert!(request * 2 > rules.len(), "{request}/{}", rules.len());
    }

    #[test]
    fn categories_cover_all_four() {
        let rules = ground_truth();
        for cat in [
            CheckCategory::IntraResource,
            CheckCategory::InterResource,
            CheckCategory::InterAgg,
            CheckCategory::Interpolation,
        ] {
            assert!(rules.iter().any(|r| r.category == cat), "missing {cat:?}");
        }
    }
}
