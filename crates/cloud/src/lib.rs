//! A deterministic Azure deployment simulator.
//!
//! The paper validates semantic checks by deploying test programs to real
//! Azure and observing the outcome. This crate substitutes a simulator that
//! reproduces the *observable* behaviour the validation pipeline depends on:
//!
//! * deployment proceeds resource-by-resource in dependency order;
//! * each resource passes through the paper's five failure phases
//!   (Table 3): plugin checks, pre-deploy sync, sending the creation
//!   request, asynchronous polling, and post-deploy state sync;
//! * a ground-truth rule set (§ [`rules`]) — region matching, CIDR
//!   containment/overlap, reserved subnets, sku limits, naming conflicts —
//!   decides which step fails;
//! * the report records which resources deployed, which were halted, and
//!   which must be rolled back (recreated) to fix the failure, enabling the
//!   blast-radius analysis of Figure 6.
//!
//! The simulator is intentionally *stricter than the mining corpus but not
//! exhaustively documented*: ground truth is the hidden oracle that
//! validation probes with positive/negative test cases, exactly as the real
//! cloud is for the paper.

pub mod oracle;
pub mod report;
pub mod rules;

pub use oracle::{is_transient, DeployOracle, FaultInjector, FaultKind, TRANSIENT_PREFIX};
pub use report::{DeployOutcome, DeployReport, Phase, ViolationRecord};
pub use rules::{CheckCategory, GroundRule, RuleBody};

use std::collections::HashSet;
use zodiac_graph::{deploy_order, descendants, NodeIdx, ResourceGraph};
use zodiac_kb::KnowledgeBase;
use zodiac_model::Program;

/// The cloud simulator: a knowledge base plus the ground-truth rule set.
pub struct CloudSim {
    kb: KnowledgeBase,
    rules: Vec<GroundRule>,
}

impl CloudSim {
    /// Creates a simulator with the full Azure ground-truth rule set.
    pub fn new_azure() -> Self {
        let kb = zodiac_kb::azure_kb();
        let rules = rules::ground_truth();
        CloudSim { kb, rules }
    }

    /// Creates a simulator with a custom rule set (used by tests).
    pub fn with_rules(kb: KnowledgeBase, rules: Vec<GroundRule>) -> Self {
        CloudSim { kb, rules }
    }

    /// The ground-truth rules.
    pub fn rules(&self) -> &[GroundRule] {
        &self.rules
    }

    /// The knowledge base the simulator validates against.
    pub fn kb(&self) -> &KnowledgeBase {
        &self.kb
    }

    /// Deploys a program, returning the full report.
    ///
    /// Deployment models Terraform's parallel apply as a discrete-event
    /// simulation: a resource starts once its dependencies finish and takes
    /// a per-type duration (gateways and firewalls are slow, §1 notes
    /// single resources can take the better part of an hour). Violations are
    /// evaluated when a resource *finishes*; on failure, in-flight resources
    /// complete (they count as deployed) while unstarted ones are halted —
    /// which is exactly why a slow tunnel failure leaves whole VNets of
    /// fast-deploying children needing rollback (Figure 6).
    pub fn deploy(&self, program: &Program) -> DeployReport {
        self.deploy_inner(program, None)
    }

    /// Like [`CloudSim::deploy`], but consults `injector` at every request
    /// phase ([`Phase::SendingRequest`], [`Phase::PollingRequest`]) before
    /// evaluating ground truth, modelling real-cloud transients. An injected
    /// fault preempts any ground-truth violation at the same step (exactly
    /// as throttling masks a real error until retried); the resulting report
    /// carries a `transient/` rule id, an empty rollback set (nothing is
    /// wrong with the program), and otherwise the same timing-derived
    /// deployed/halted split as a real failure.
    pub fn deploy_with_faults(
        &self,
        program: &Program,
        injector: &dyn FaultInjector,
    ) -> DeployReport {
        self.deploy_inner(program, Some(injector))
    }

    fn deploy_inner(
        &self,
        program: &Program,
        injector: Option<&dyn FaultInjector>,
    ) -> DeployReport {
        let graph = ResourceGraph::build(program.clone());
        let Ok(topo) = deploy_order(&graph) else {
            // A dependency cycle fails before anything deploys.
            return DeployReport {
                outcome: DeployOutcome::Failure {
                    phase: Phase::PluginCheck,
                    rule_id: "core/dependency-cycle".to_string(),
                    resource: "<program>".to_string(),
                    message: "resource dependency cycle".to_string(),
                },
                deployed: Vec::new(),
                halted: program.resources().iter().map(|r| r.id()).collect(),
                rollback: Vec::new(),
                violations: Vec::new(),
            };
        };

        // Discrete-event schedule: start = max(finish of dependencies),
        // finish = start + duration. Ties resolve by declaration order.
        let n = graph.len();
        let mut finish: Vec<u64> = vec![0; n];
        let mut start: Vec<u64> = vec![0; n];
        for &node in &topo {
            let deps_finish = graph
                .out_edges(node)
                .filter(|e| e.dst != node)
                .map(|e| finish[e.dst])
                .max()
                .unwrap_or(0);
            start[node] = deps_finish;
            finish[node] = deps_finish + duration_of(&graph.resource(node).rtype);
        }
        let mut order: Vec<NodeIdx> = topo.clone();
        order.sort_by_key(|&i| (finish[i], i));

        // In-flight resources (started before the failure finished) complete
        // and count as deployed; the failing resource itself counts as
        // halted — it cannot deploy until the violation is fixed (or, for a
        // transient fault, until the deploy is retried).
        let split_at = |step: usize, node: NodeIdx| -> (Vec<NodeIdx>, Vec<NodeIdx>) {
            let fail_time = finish[node];
            let mut completed: Vec<NodeIdx> = (0..n)
                .filter(|&i| i != node && start[i] < fail_time && !order[step..].contains(&i))
                .collect();
            let inflight: Vec<NodeIdx> = order[step + 1..]
                .iter()
                .copied()
                .filter(|&i| start[i] < fail_time)
                .collect();
            completed.extend(inflight);
            let deployed_set: HashSet<NodeIdx> = completed.iter().copied().collect();
            let halted: Vec<NodeIdx> = (0..n).filter(|&i| !deployed_set.contains(&i)).collect();
            (completed, halted)
        };

        let mut deployed: HashSet<NodeIdx> = HashSet::new();
        for (step, &node) in order.iter().enumerate() {
            for phase in [
                Phase::PluginCheck,
                Phase::PreDeploySync,
                Phase::SendingRequest,
                Phase::PollingRequest,
            ] {
                // Transients (throttling, flakes, polling timeouts) surface
                // in the request phases and mask any ground-truth error at
                // the same step, exactly as on the real cloud.
                if let Some(kind) = injector
                    .filter(|_| matches!(phase, Phase::SendingRequest | Phase::PollingRequest))
                    .and_then(|inj| inj.inject(&graph.resource(node).id(), phase))
                    .filter(|k| k.phase() == phase)
                {
                    let (completed, halted) = split_at(step, node);
                    let id = graph.resource(node).id();
                    return DeployReport {
                        outcome: DeployOutcome::Failure {
                            phase,
                            rule_id: kind.rule_id().to_string(),
                            resource: id.to_string(),
                            message: kind.message(&id),
                        },
                        deployed: completed.iter().map(|&i| graph.resource(i).id()).collect(),
                        halted: halted.iter().map(|&i| graph.resource(i).id()).collect(),
                        // Nothing is wrong with the program: no fix, no
                        // rollback — the deploy should simply be retried.
                        rollback: Vec::new(),
                        violations: Vec::new(),
                    };
                }
                if let Some(v) = self.first_violation(&graph, node, &deployed, phase) {
                    let (completed, halted) = split_at(step, node);
                    return self.fail_timed(&graph, node, &completed, &halted, v);
                }
            }
            deployed.insert(node);
        }

        // Post-deploy sync over the complete graph.
        for &node in &order {
            let mut without: HashSet<NodeIdx> = deployed.clone();
            without.remove(&node);
            if let Some(v) = self.first_violation(&graph, node, &without, Phase::PostDeploySync) {
                let deployed_ids = order.iter().map(|&n| graph.resource(n).id()).collect();
                return DeployReport {
                    outcome: DeployOutcome::Failure {
                        phase: Phase::PostDeploySync,
                        rule_id: v.rule_id.clone(),
                        resource: graph.resource(v.failing).id().to_string(),
                        message: v.message.clone(),
                    },
                    deployed: deployed_ids,
                    halted: Vec::new(),
                    rollback: self.rollback_set(&graph, v.fix, &deployed),
                    violations: vec![v.into_record(&graph)],
                };
            }
        }

        DeployReport {
            outcome: DeployOutcome::Success,
            deployed: order.iter().map(|&n| graph.resource(n).id()).collect(),
            halted: Vec::new(),
            rollback: Vec::new(),
            violations: Vec::new(),
        }
    }

    /// Evaluates all rules of `phase` on the subgraph `deployed ∪ {node}`,
    /// returning the first violation *introduced by* `node`.
    fn first_violation(
        &self,
        graph: &ResourceGraph,
        node: NodeIdx,
        deployed: &HashSet<NodeIdx>,
        phase: Phase,
    ) -> Option<rules::Violation> {
        for rule in self.rules.iter().filter(|r| r.phase == phase) {
            let violations = rule.eval(graph, &self.kb, node, deployed);
            if let Some(v) = violations.into_iter().next() {
                return Some(v);
            }
        }
        None
    }

    fn fail_timed(
        &self,
        graph: &ResourceGraph,
        failed: NodeIdx,
        completed: &[NodeIdx],
        halted: &[NodeIdx],
        v: rules::Violation,
    ) -> DeployReport {
        let phase = self
            .rules
            .iter()
            .find(|r| r.id == v.rule_id)
            .map(|r| r.phase)
            .unwrap_or(Phase::SendingRequest);
        let deployed_set: HashSet<NodeIdx> = completed.iter().copied().collect();
        DeployReport {
            outcome: DeployOutcome::Failure {
                phase,
                rule_id: v.rule_id.clone(),
                resource: graph.resource(failed).id().to_string(),
                message: v.message.clone(),
            },
            deployed: completed.iter().map(|&n| graph.resource(n).id()).collect(),
            halted: halted.iter().map(|&n| graph.resource(n).id()).collect(),
            rollback: self.rollback_set(graph, v.fix, &deployed_set),
            violations: vec![v.into_record(graph)],
        }
    }

    /// Resources that must be recreated to fix a violation whose fix target
    /// is `fix`: the target itself plus every already-deployed resource that
    /// (transitively) references it — cloud attributes like CIDR ranges are
    /// immutable, so fixing the target destroys its dependents (§5.1,
    /// "impact of failures").
    fn rollback_set(
        &self,
        graph: &ResourceGraph,
        fix: NodeIdx,
        deployed: &HashSet<NodeIdx>,
    ) -> Vec<zodiac_model::ResourceId> {
        let mut set: Vec<NodeIdx> = descendants(graph, fix)
            .into_iter()
            .filter(|n| deployed.contains(n))
            .collect();
        set.push(fix);
        set.sort_unstable();
        set.dedup();
        set.into_iter().map(|n| graph.resource(n).id()).collect()
    }

    /// Convenience: deploys and reports only success/failure.
    pub fn deploys_ok(&self, program: &Program) -> bool {
        matches!(self.deploy(program).outcome, DeployOutcome::Success)
    }
}

impl DeployOracle for CloudSim {
    fn deploy(&self, program: &Program) -> DeployReport {
        CloudSim::deploy(self, program)
    }

    fn deploy_with_faults(&self, program: &Program, injector: &dyn FaultInjector) -> DeployReport {
        CloudSim::deploy_with_faults(self, program, injector)
    }
}

/// Nominal creation duration per resource type, in seconds. Gateways,
/// firewalls, and tunnels are the slow outliers (Azure provisions VPN
/// gateways in ~30–45 minutes), which is what makes their late failures so
/// costly: everything fast has already deployed.
pub fn duration_of(rtype: &str) -> u64 {
    match rtype {
        "azurerm_virtual_network_gateway" => 2700,
        "azurerm_virtual_network_gateway_connection" => 1500,
        "azurerm_firewall" => 1200,
        "azurerm_application_gateway" => 900,
        "azurerm_bastion_host" => 600,
        "azurerm_nat_gateway" => 120,
        "azurerm_linux_virtual_machine" => 90,
        "azurerm_managed_disk" => 30,
        "azurerm_storage_account" => 45,
        "azurerm_lb" => 40,
        "azurerm_key_vault" => 40,
        "azurerm_virtual_network_peering" => 60,
        _ => 10,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zodiac_model::{Resource, Value};

    fn base_network(vm_loc: &str, nic_loc: &str) -> Program {
        Program::new()
            .with(
                Resource::new("azurerm_resource_group", "rg")
                    .with("name", "rg1")
                    .with("location", "eastus"),
            )
            .with(
                Resource::new("azurerm_virtual_network", "vnet")
                    .with("name", "vnet1")
                    .with("location", "eastus")
                    .with("address_space", Value::List(vec![Value::s("10.0.0.0/16")]))
                    .with(
                        "resource_group_name",
                        Value::r("azurerm_resource_group", "rg", "name"),
                    ),
            )
            .with(
                Resource::new("azurerm_subnet", "s")
                    .with("name", "internal")
                    .with(
                        "address_prefixes",
                        Value::List(vec![Value::s("10.0.1.0/24")]),
                    )
                    .with(
                        "resource_group_name",
                        Value::r("azurerm_resource_group", "rg", "name"),
                    )
                    .with(
                        "virtual_network_name",
                        Value::r("azurerm_virtual_network", "vnet", "name"),
                    ),
            )
            .with(
                Resource::new("azurerm_network_interface", "nic")
                    .with("name", "nic1")
                    .with("location", nic_loc)
                    .with(
                        "resource_group_name",
                        Value::r("azurerm_resource_group", "rg", "name"),
                    )
                    .with(
                        "ip_configuration",
                        Value::Map(
                            [
                                ("name".to_string(), Value::s("ipcfg")),
                                (
                                    "subnet_id".to_string(),
                                    Value::r("azurerm_subnet", "s", "id"),
                                ),
                                (
                                    "private_ip_address_allocation".to_string(),
                                    Value::s("Dynamic"),
                                ),
                            ]
                            .into_iter()
                            .collect(),
                        ),
                    ),
            )
            .with(
                Resource::new("azurerm_linux_virtual_machine", "vm")
                    .with("name", "vm1")
                    .with("location", vm_loc)
                    .with("size", "Standard_B1s")
                    .with("admin_username", "azureuser")
                    .with("admin_password", "S3cret!pass")
                    .with(
                        "resource_group_name",
                        Value::r("azurerm_resource_group", "rg", "name"),
                    )
                    .with(
                        "network_interface_ids",
                        Value::List(vec![Value::r("azurerm_network_interface", "nic", "id")]),
                    )
                    .with(
                        "os_disk",
                        Value::Map(
                            [
                                ("caching".to_string(), Value::s("ReadWrite")),
                                ("storage_account_type".to_string(), Value::s("Standard_LRS")),
                            ]
                            .into_iter()
                            .collect(),
                        ),
                    )
                    .with(
                        "source_image_reference",
                        Value::Map(
                            [
                                ("publisher".to_string(), Value::s("Canonical")),
                                ("offer".to_string(), Value::s("ubuntu")),
                                ("sku".to_string(), Value::s("22_04-lts")),
                                ("version".to_string(), Value::s("latest")),
                            ]
                            .into_iter()
                            .collect(),
                        ),
                    ),
            )
    }

    #[test]
    fn conforming_program_deploys() {
        let sim = CloudSim::new_azure();
        let report = sim.deploy(&base_network("eastus", "eastus"));
        assert!(
            matches!(report.outcome, DeployOutcome::Success),
            "unexpected failure: {:?}",
            report.outcome
        );
        assert_eq!(report.deployed.len(), 5);
    }

    #[test]
    fn vm_nic_location_mismatch_fails_at_request() {
        let sim = CloudSim::new_azure();
        let report = sim.deploy(&base_network("westus", "eastus"));
        match &report.outcome {
            DeployOutcome::Failure { phase, rule_id, .. } => {
                assert_eq!(*phase, Phase::SendingRequest);
                assert!(rule_id.contains("location"), "{rule_id}");
            }
            other => panic!("expected failure, got {other:?}"),
        }
        // Everything before the VM deployed; the VM is halted.
        assert_eq!(report.deployed.len(), 4);
        assert_eq!(report.halted.len(), 1);
    }

    #[test]
    fn missing_required_attr_fails_at_plugin() {
        let sim = CloudSim::new_azure();
        let mut p = base_network("eastus", "eastus");
        p.find_mut(&zodiac_model::ResourceId::new(
            "azurerm_virtual_network",
            "vnet",
        ))
        .unwrap()
        .unset("address_space");
        let report = sim.deploy(&p);
        match &report.outcome {
            DeployOutcome::Failure { phase, .. } => assert_eq!(*phase, Phase::PluginCheck),
            other => panic!("expected failure, got {other:?}"),
        }
    }

    #[test]
    fn rollback_includes_descendants() {
        // Make the subnet CIDR fall outside the VNet range: the fix target is
        // the subnet (deployed before the NIC references it). Failure hits at
        // subnet deploy time, so rollback is just the subnet.
        let sim = CloudSim::new_azure();
        let mut p = base_network("eastus", "eastus");
        p.find_mut(&zodiac_model::ResourceId::new("azurerm_subnet", "s"))
            .unwrap()
            .attrs
            .insert(
                "address_prefixes".to_string(),
                Value::List(vec![Value::s("192.168.1.0/24")]),
            );
        let report = sim.deploy(&p);
        assert!(matches!(report.outcome, DeployOutcome::Failure { .. }));
        assert!(!report.rollback.is_empty());
    }
}
