//! Deployment outcomes and reports.

use serde::{Deserialize, Serialize};
use std::fmt;
use zodiac_model::ResourceId;

/// The five phases at which a deployment can fail (paper Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Phase {
    /// Provider plugin checks, before any request is sent.
    PluginCheck,
    /// Pre-deploy state synchronisation ("already exists" conflicts).
    PreDeploySync,
    /// The initial creation request is rejected by the cloud.
    SendingRequest,
    /// Asynchronous polling on slow resources fails.
    PollingRequest,
    /// Deployment completes but IaC/cloud states are inconsistent.
    PostDeploySync,
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Phase::PluginCheck => "plugin checks",
            Phase::PreDeploySync => "pre-deploy sync",
            Phase::SendingRequest => "sending request",
            Phase::PollingRequest => "polling request",
            Phase::PostDeploySync => "post-deploy sync",
        };
        write!(f, "{s}")
    }
}

/// Success or classified failure.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum DeployOutcome {
    /// All resources deployed and state is consistent.
    Success,
    /// Deployment failed (or completed inconsistently, for
    /// [`Phase::PostDeploySync`]).
    Failure {
        /// The phase at which the failure surfaced.
        phase: Phase,
        /// Ground-truth rule that was violated.
        rule_id: String,
        /// The resource whose deployment step failed.
        resource: String,
        /// Human-readable error, in the style of cloud API errors.
        message: String,
    },
}

impl DeployOutcome {
    /// True for [`DeployOutcome::Success`].
    pub fn is_success(&self) -> bool {
        matches!(self, DeployOutcome::Success)
    }
}

/// A recorded ground-truth violation (for analysis; the engine stops at the
/// first one per deployment attempt).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ViolationRecord {
    /// Ground-truth rule id.
    pub rule_id: String,
    /// Resources bound by the violated rule.
    pub involved: Vec<ResourceId>,
    /// The resource whose deployment triggered the violation.
    pub failing: ResourceId,
    /// The resource that must change to fix the violation.
    pub fix: ResourceId,
    /// Error message.
    pub message: String,
}

/// Full report of one deployment attempt.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeployReport {
    /// Overall outcome.
    pub outcome: DeployOutcome,
    /// Resources that deployed successfully (in deployment order).
    pub deployed: Vec<ResourceId>,
    /// Resources that could not be attempted because of the failure —
    /// the *halting radius* of Figure 6.
    pub halted: Vec<ResourceId>,
    /// Deployed resources that must be recreated to apply the fix —
    /// the *rollback radius* of Figure 6.
    pub rollback: Vec<ResourceId>,
    /// Violations recorded during the attempt.
    pub violations: Vec<ViolationRecord>,
}

impl DeployReport {
    /// Number of distinct resource *types* in the halting radius.
    pub fn halting_radius(&self) -> usize {
        distinct_types(&self.halted)
    }

    /// Number of distinct resource *types* in the rollback radius.
    pub fn rollback_radius(&self) -> usize {
        distinct_types(&self.rollback)
    }
}

fn distinct_types(ids: &[ResourceId]) -> usize {
    let mut types: Vec<&str> = ids.iter().map(|i| i.rtype.as_str()).collect();
    types.sort_unstable();
    types.dedup();
    types.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn radius_counts_types_not_instances() {
        let report = DeployReport {
            outcome: DeployOutcome::Success,
            deployed: Vec::new(),
            halted: vec![
                ResourceId::new("azurerm_subnet", "a"),
                ResourceId::new("azurerm_subnet", "b"),
                ResourceId::new("azurerm_network_interface", "n"),
            ],
            rollback: Vec::new(),
            violations: Vec::new(),
        };
        assert_eq!(report.halting_radius(), 2);
        assert_eq!(report.rollback_radius(), 0);
    }

    #[test]
    fn phase_display() {
        assert_eq!(Phase::SendingRequest.to_string(), "sending request");
        assert_eq!(Phase::PostDeploySync.to_string(), "post-deploy sync");
    }
}
