//! Per-rule coverage of the ground-truth set: every major rule has a
//! conforming/violating program pair, and the violation is attributed to the
//! expected rule id and phase.

use zodiac_cloud::{CloudSim, DeployOutcome, Phase};
use zodiac_model::{AttrPath, Program, Resource, Value};

fn map(entries: &[(&str, Value)]) -> Value {
    Value::Map(
        entries
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect(),
    )
}

/// Base scaffold: rg + vnet + subnet.
fn base() -> Program {
    Program::new()
        .with(
            Resource::new("azurerm_resource_group", "rg")
                .with("name", "rg1")
                .with("location", "eastus"),
        )
        .with(
            Resource::new("azurerm_virtual_network", "vnet")
                .with("name", "vnet1")
                .with("location", "eastus")
                .with(
                    "resource_group_name",
                    Value::r("azurerm_resource_group", "rg", "name"),
                )
                .with("address_space", Value::List(vec![Value::s("10.0.0.0/16")])),
        )
        .with(
            Resource::new("azurerm_subnet", "snet")
                .with("name", "internal")
                .with(
                    "resource_group_name",
                    Value::r("azurerm_resource_group", "rg", "name"),
                )
                .with(
                    "virtual_network_name",
                    Value::r("azurerm_virtual_network", "vnet", "name"),
                )
                .with(
                    "address_prefixes",
                    Value::List(vec![Value::s("10.0.1.0/24")]),
                ),
        )
}

fn rg_ref() -> Value {
    Value::r("azurerm_resource_group", "rg", "name")
}

fn public_ip(name: &str, sku: &str, allocation: &str) -> Resource {
    Resource::new("azurerm_public_ip", name)
        .with("name", format!("{name}-ip"))
        .with("location", "eastus")
        .with("resource_group_name", rg_ref())
        .with("sku", sku)
        .with("allocation_method", allocation)
}

fn storage_account(tier: &str, replication: &str) -> Program {
    Program::new()
        .with(
            Resource::new("azurerm_resource_group", "rg")
                .with("name", "rg1")
                .with("location", "eastus"),
        )
        .with(
            Resource::new("azurerm_storage_account", "sa")
                .with("name", "zodiacsa001")
                .with("location", "eastus")
                .with("resource_group_name", rg_ref())
                .with("account_tier", tier)
                .with("account_replication_type", replication),
        )
}

fn assert_fails_with(program: &Program, rule_id: &str, phase: Phase) {
    let sim = CloudSim::new_azure();
    match sim.deploy(program).outcome {
        DeployOutcome::Failure {
            rule_id: got,
            phase: got_phase,
            ..
        } => {
            assert_eq!(got, rule_id, "wrong rule");
            assert_eq!(got_phase, phase, "wrong phase for {rule_id}");
        }
        DeployOutcome::Success => panic!("expected {rule_id} violation, got success"),
    }
}

fn assert_deploys(program: &Program) {
    let sim = CloudSim::new_azure();
    let report = sim.deploy(program);
    assert!(
        report.outcome.is_success(),
        "expected success, got {:?}",
        report.outcome
    );
}

// ---------------------------------------------------------------- storage --

#[test]
fn sa_premium_gzrs_fails_standard_ok() {
    assert_fails_with(
        &storage_account("Premium", "GZRS"),
        "sa/premium-no-gzrs",
        Phase::SendingRequest,
    );
    assert_deploys(&storage_account("Standard", "GZRS"));
    assert_deploys(&storage_account("Premium", "LRS"));
}

#[test]
fn sa_name_format_enforced() {
    let mut p = storage_account("Standard", "LRS");
    p.find_mut(&zodiac_model::ResourceId::new(
        "azurerm_storage_account",
        "sa",
    ))
    .unwrap()
    .attrs
    .insert("name".into(), Value::s("Has-Uppercase!"));
    assert_fails_with(&p, "schema/sa-name-format", Phase::PluginCheck);
}

// --------------------------------------------------------------- public IP --

#[test]
fn standard_ip_requires_static() {
    let p = base().with(public_ip("ip", "Standard", "Dynamic"));
    assert_fails_with(&p, "ip/standard-needs-static", Phase::PluginCheck);
    assert_deploys(&base().with(public_ip("ip", "Standard", "Static")));
    assert_deploys(&base().with(public_ip("ip", "Basic", "Dynamic")));
}

// ------------------------------------------------------------------ subnet --

#[test]
fn subnet_must_fit_vnet_space() {
    let mut p = base();
    p.find_mut(&zodiac_model::ResourceId::new("azurerm_subnet", "snet"))
        .unwrap()
        .attrs
        .insert(
            "address_prefixes".into(),
            Value::List(vec![Value::s("172.16.0.0/24")]),
        );
    assert_fails_with(&p, "net/subnet-in-vnet-range", Phase::SendingRequest);
}

#[test]
fn sibling_subnets_cannot_overlap() {
    let p = base().with(
        Resource::new("azurerm_subnet", "snet2")
            .with("name", "other")
            .with("resource_group_name", rg_ref())
            .with(
                "virtual_network_name",
                Value::r("azurerm_virtual_network", "vnet", "name"),
            )
            .with(
                "address_prefixes",
                Value::List(vec![Value::s("10.0.1.128/25")]),
            ),
    );
    assert_fails_with(&p, "net/sibling-subnet-overlap", Phase::SendingRequest);
}

#[test]
fn duplicate_subnet_names_scope_per_vnet() {
    // Same subnet name under a *different* VNet is fine.
    let p = base()
        .with(
            Resource::new("azurerm_virtual_network", "vnet2")
                .with("name", "vnet2")
                .with("location", "eastus")
                .with("resource_group_name", rg_ref())
                .with("address_space", Value::List(vec![Value::s("10.1.0.0/16")])),
        )
        .with(
            Resource::new("azurerm_subnet", "snet2")
                .with("name", "internal") // same name, different vnet
                .with("resource_group_name", rg_ref())
                .with(
                    "virtual_network_name",
                    Value::r("azurerm_virtual_network", "vnet2", "name"),
                )
                .with(
                    "address_prefixes",
                    Value::List(vec![Value::s("10.1.1.0/24")]),
                ),
        );
    assert_deploys(&p);
    // Same name under the same VNet collides.
    let bad = base().with(
        Resource::new("azurerm_subnet", "dup")
            .with("name", "internal")
            .with("resource_group_name", rg_ref())
            .with(
                "virtual_network_name",
                Value::r("azurerm_virtual_network", "vnet", "name"),
            )
            .with(
                "address_prefixes",
                Value::List(vec![Value::s("10.0.9.0/24")]),
            ),
    );
    assert_fails_with(&bad, "name/duplicate", Phase::PreDeploySync);
}

// ----------------------------------------------------------------- gateway --

fn gateway_program(subnet_name: &str, sku: &str, active_active: bool) -> Program {
    let mut p = Program::new()
        .with(
            Resource::new("azurerm_resource_group", "rg")
                .with("name", "rg1")
                .with("location", "eastus"),
        )
        .with(
            Resource::new("azurerm_virtual_network", "vnet")
                .with("name", "vnet1")
                .with("location", "eastus")
                .with("resource_group_name", rg_ref())
                .with("address_space", Value::List(vec![Value::s("10.0.0.0/16")])),
        )
        .with(
            Resource::new("azurerm_subnet", "gwsnet")
                .with("name", subnet_name)
                .with("resource_group_name", rg_ref())
                .with(
                    "virtual_network_name",
                    Value::r("azurerm_virtual_network", "vnet", "name"),
                )
                .with(
                    "address_prefixes",
                    Value::List(vec![Value::s("10.0.255.0/27")]),
                ),
        )
        .with(public_ip("ip", "Basic", "Dynamic"));
    let mut gw = Resource::new("azurerm_virtual_network_gateway", "gw")
        .with("name", "gw1")
        .with("location", "eastus")
        .with("resource_group_name", rg_ref())
        .with("type", "Vpn")
        .with("sku", sku)
        .with(
            "ip_configuration",
            map(&[
                ("name", Value::s("cfg")),
                (
                    "public_ip_address_id",
                    Value::r("azurerm_public_ip", "ip", "id"),
                ),
                ("subnet_id", Value::r("azurerm_subnet", "gwsnet", "id")),
            ]),
        );
    if active_active {
        gw = gw.with("active_active", true);
    }
    p.add(gw).unwrap();
    p
}

#[test]
fn gateway_requires_gateway_subnet() {
    assert_fails_with(
        &gateway_program("internal", "VpnGw1", false),
        "gw/requires-gateway-subnet",
        Phase::SendingRequest,
    );
    assert_deploys(&gateway_program("GatewaySubnet", "VpnGw1", false));
}

#[test]
fn basic_gateway_no_active_active() {
    assert_fails_with(
        &gateway_program("GatewaySubnet", "Basic", true),
        "gw/basic-no-active-active",
        Phase::SendingRequest,
    );
}

#[test]
fn active_active_needs_two_ipconfigs() {
    assert_fails_with(
        &gateway_program("GatewaySubnet", "VpnGw1", true),
        "gw/active-active-two-ipconfigs",
        Phase::SendingRequest,
    );
}

#[test]
fn gateway_subnet_is_exclusive() {
    let p = gateway_program("GatewaySubnet", "VpnGw1", false).with(
        Resource::new("azurerm_network_interface", "nic")
            .with("name", "nic1")
            .with("location", "eastus")
            .with("resource_group_name", rg_ref())
            .with(
                "ip_configuration",
                map(&[
                    ("name", Value::s("i")),
                    ("subnet_id", Value::r("azurerm_subnet", "gwsnet", "id")),
                    ("private_ip_address_allocation", Value::s("Dynamic")),
                ]),
            ),
    );
    assert_fails_with(&p, "gw/gateway-subnet-exclusive", Phase::SendingRequest);
}

#[test]
fn gateway_subnet_minimum_size() {
    let mut p = gateway_program("GatewaySubnet", "VpnGw1", false);
    p.find_mut(&zodiac_model::ResourceId::new("azurerm_subnet", "gwsnet"))
        .unwrap()
        .attrs
        .insert(
            "address_prefixes".into(),
            Value::List(vec![Value::s("10.0.255.0/30")]),
        );
    assert_fails_with(&p, "net/reserved-subnet-size", Phase::SendingRequest);
}

#[test]
fn policy_based_gateway_needs_basic_sku_at_polling() {
    let mut p = gateway_program("GatewaySubnet", "VpnGw1", false);
    p.find_mut(&zodiac_model::ResourceId::new(
        "azurerm_virtual_network_gateway",
        "gw",
    ))
    .unwrap()
    .attrs
    .insert("vpn_type".into(), Value::s("PolicyBased"));
    assert_fails_with(&p, "gw/policy-based-needs-basic", Phase::PollingRequest);
}

#[test]
fn gateway_subnet_cannot_delegate() {
    let mut p = gateway_program("GatewaySubnet", "VpnGw1", false);
    let path: AttrPath = "delegation.name".parse().unwrap();
    p.find_mut(&zodiac_model::ResourceId::new("azurerm_subnet", "gwsnet"))
        .unwrap()
        .set(&path, Value::s("deleg"));
    assert_fails_with(&p, "gw/no-subnet-delegation", Phase::PollingRequest);
}

// ----------------------------------------------------------------- compute --

fn vm_program(size: &str, nic_count: usize) -> Program {
    let mut p = base();
    let mut nic_refs = Vec::new();
    for i in 0..nic_count {
        let name = format!("nic{i}");
        p.add(
            Resource::new("azurerm_network_interface", &name)
                .with("name", format!("nic-{i}"))
                .with("location", "eastus")
                .with("resource_group_name", rg_ref())
                .with(
                    "ip_configuration",
                    map(&[
                        ("name", Value::s("i")),
                        ("subnet_id", Value::r("azurerm_subnet", "snet", "id")),
                        ("private_ip_address_allocation", Value::s("Dynamic")),
                    ]),
                ),
        )
        .unwrap();
        nic_refs.push(Value::r("azurerm_network_interface", &name, "id"));
    }
    p.add(
        Resource::new("azurerm_linux_virtual_machine", "vm")
            .with("name", "vm1")
            .with("location", "eastus")
            .with("resource_group_name", rg_ref())
            .with("size", size)
            .with("admin_username", "azureuser")
            .with("network_interface_ids", Value::List(nic_refs))
            .with(
                "os_disk",
                map(&[
                    ("caching", Value::s("ReadWrite")),
                    ("storage_account_type", Value::s("Standard_LRS")),
                ]),
            )
            .with(
                "source_image_reference",
                map(&[
                    ("publisher", Value::s("Canonical")),
                    ("offer", Value::s("ubuntu")),
                    ("sku", Value::s("22_04")),
                    ("version", Value::s("latest")),
                ]),
            ),
    )
    .unwrap();
    p
}

#[test]
fn vm_sku_nic_limits_enforced() {
    // Standard_B1s allows 2 NICs.
    assert_deploys(&vm_program("Standard_B1s", 2));
    assert_fails_with(
        &vm_program("Standard_B1s", 3),
        "vm/max-nics-Standard_B1s",
        Phase::SendingRequest,
    );
    // F4s_v2 allows 4.
    assert_deploys(&vm_program("Standard_F4s_v2", 4));
}

#[test]
fn spot_vm_needs_eviction_policy() {
    let mut p = vm_program("Standard_B1s", 1);
    p.find_mut(&zodiac_model::ResourceId::new(
        "azurerm_linux_virtual_machine",
        "vm",
    ))
    .unwrap()
    .attrs
    .insert("priority".into(), Value::s("Spot"));
    assert_fails_with(&p, "vm/spot-needs-eviction-policy", Phase::SendingRequest);
    p.find_mut(&zodiac_model::ResourceId::new(
        "azurerm_linux_virtual_machine",
        "vm",
    ))
    .unwrap()
    .attrs
    .insert("eviction_policy".into(), Value::s("Deallocate"));
    assert_deploys(&p);
}

#[test]
fn vm_nic_location_mismatch() {
    let mut p = vm_program("Standard_B1s", 1);
    p.find_mut(&zodiac_model::ResourceId::new(
        "azurerm_network_interface",
        "nic0",
    ))
    .unwrap()
    .attrs
    .insert("location".into(), Value::s("westus"));
    // The NIC/VNet rule fires first (the NIC deploys before the VM).
    let sim = CloudSim::new_azure();
    match sim.deploy(&p).outcome {
        DeployOutcome::Failure { rule_id, .. } => {
            assert!(
                rule_id.contains("location"),
                "expected a location rule, got {rule_id}"
            );
        }
        other => panic!("expected failure, got {other:?}"),
    }
}

#[test]
fn nic_attaches_to_one_vm() {
    let mut p = vm_program("Standard_B1s", 1);
    p.add(
        Resource::new("azurerm_linux_virtual_machine", "vm2")
            .with("name", "vm2")
            .with("location", "eastus")
            .with("resource_group_name", rg_ref())
            .with("size", "Standard_B1s")
            .with("admin_username", "azureuser")
            .with(
                "network_interface_ids",
                Value::List(vec![Value::r("azurerm_network_interface", "nic0", "id")]),
            )
            .with(
                "os_disk",
                map(&[
                    ("caching", Value::s("ReadWrite")),
                    ("storage_account_type", Value::s("Standard_LRS")),
                ]),
            )
            .with(
                "source_image_reference",
                map(&[
                    ("publisher", Value::s("Canonical")),
                    ("offer", Value::s("ubuntu")),
                    ("sku", Value::s("22_04")),
                    ("version", Value::s("latest")),
                ]),
            ),
    )
    .unwrap();
    assert_fails_with(&p, "nic/single-vm", Phase::SendingRequest);
}

#[test]
fn dangling_reference_fails_at_request() {
    let p = base().with(
        Resource::new("azurerm_network_interface", "nic")
            .with("name", "nic1")
            .with("location", "eastus")
            .with("resource_group_name", rg_ref())
            .with(
                "ip_configuration",
                map(&[
                    ("name", Value::s("i")),
                    ("subnet_id", Value::r("azurerm_subnet", "ghost", "id")),
                    ("private_ip_address_allocation", Value::s("Dynamic")),
                ]),
            ),
    );
    assert_fails_with(&p, "ref/dangling", Phase::SendingRequest);
}

#[test]
fn static_nic_needs_address_in_range() {
    let mk = |addr: Option<&str>| {
        let mut entries = vec![
            ("name", Value::s("i")),
            ("subnet_id", Value::r("azurerm_subnet", "snet", "id")),
            ("private_ip_address_allocation", Value::s("Static")),
        ];
        if let Some(a) = addr {
            entries.push(("private_ip_address", Value::s(a)));
        }
        base().with(
            Resource::new("azurerm_network_interface", "nic")
                .with("name", "nic1")
                .with("location", "eastus")
                .with("resource_group_name", rg_ref())
                .with("ip_configuration", map(&entries)),
        )
    };
    assert_fails_with(&mk(None), "nic/static-needs-address", Phase::PluginCheck);
    assert_fails_with(
        &mk(Some("10.9.9.9")),
        "nic/private-ip-in-subnet",
        Phase::SendingRequest,
    );
    assert_deploys(&mk(Some("10.0.1.10")));
}

// ------------------------------------------------------------- post-deploy --

#[test]
fn subnet_two_route_tables_is_postsync_inconsistency() {
    let mut p = base();
    for i in 0..2 {
        let rt = format!("rt{i}");
        p.add(
            Resource::new("azurerm_route_table", &rt)
                .with("name", format!("rt-{i}"))
                .with("location", "eastus")
                .with("resource_group_name", rg_ref()),
        )
        .unwrap();
        p.add(
            Resource::new(
                "azurerm_subnet_route_table_association",
                format!("assoc{i}"),
            )
            .with("subnet_id", Value::r("azurerm_subnet", "snet", "id"))
            .with("route_table_id", Value::r("azurerm_route_table", &rt, "id")),
        )
        .unwrap();
    }
    let sim = CloudSim::new_azure();
    let report = sim.deploy(&p);
    match report.outcome {
        DeployOutcome::Failure { phase, rule_id, .. } => {
            assert_eq!(phase, Phase::PostDeploySync);
            assert_eq!(rule_id, "rt/subnet-single-route-table");
        }
        other => panic!("expected post-sync failure, got {other:?}"),
    }
    // Everything deployed — the inconsistency is silent until the final sync.
    assert_eq!(report.deployed.len(), p.len());
}

#[test]
fn duplicate_route_prefixes_overwrite_silently() {
    let mut p = base();
    p.add(
        Resource::new("azurerm_route_table", "rt")
            .with("name", "rt1")
            .with("location", "eastus")
            .with("resource_group_name", rg_ref()),
    )
    .unwrap();
    for i in 0..2 {
        p.add(
            Resource::new("azurerm_route", format!("route{i}"))
                .with("name", format!("route-{i}"))
                .with("resource_group_name", rg_ref())
                .with(
                    "route_table_name",
                    Value::r("azurerm_route_table", "rt", "name"),
                )
                .with("address_prefix", "0.0.0.0/0")
                .with("next_hop_type", "Internet"),
        )
        .unwrap();
    }
    assert_fails_with(&p, "rt/duplicate-route-prefix", Phase::PostDeploySync);
}

// ---------------------------------------------------------------- firewall --

#[test]
fn firewall_requires_reserved_subnet_and_standard_ip() {
    let fw = |subnet_name: &str, ip_sku: &str, ip_alloc: &str| {
        Program::new()
            .with(
                Resource::new("azurerm_resource_group", "rg")
                    .with("name", "rg1")
                    .with("location", "eastus"),
            )
            .with(
                Resource::new("azurerm_virtual_network", "vnet")
                    .with("name", "vnet1")
                    .with("location", "eastus")
                    .with("resource_group_name", rg_ref())
                    .with("address_space", Value::List(vec![Value::s("10.0.0.0/16")])),
            )
            .with(
                Resource::new("azurerm_subnet", "fwsnet")
                    .with("name", subnet_name)
                    .with("resource_group_name", rg_ref())
                    .with(
                        "virtual_network_name",
                        Value::r("azurerm_virtual_network", "vnet", "name"),
                    )
                    .with(
                        "address_prefixes",
                        Value::List(vec![Value::s("10.0.254.0/26")]),
                    ),
            )
            .with(public_ip("ip", ip_sku, ip_alloc))
            .with(
                Resource::new("azurerm_firewall", "fw")
                    .with("name", "fw1")
                    .with("location", "eastus")
                    .with("resource_group_name", rg_ref())
                    .with("sku_name", "AZFW_VNet")
                    .with("sku_tier", "Standard")
                    .with(
                        "ip_configuration",
                        map(&[
                            ("name", Value::s("cfg")),
                            ("subnet_id", Value::r("azurerm_subnet", "fwsnet", "id")),
                            (
                                "public_ip_address_id",
                                Value::r("azurerm_public_ip", "ip", "id"),
                            ),
                        ]),
                    ),
            )
    };
    assert_deploys(&fw("AzureFirewallSubnet", "Standard", "Static"));
    assert_fails_with(
        &fw("internal", "Standard", "Static"),
        "fw/requires-firewall-subnet",
        Phase::SendingRequest,
    );
    assert_fails_with(
        &fw("AzureFirewallSubnet", "Basic", "Dynamic"),
        "fw/requires-standard-static-ip",
        Phase::SendingRequest,
    );
}
