//! Negative-path phase attribution, one case per ground-truth
//! [`CheckCategory`]: deploy a program violating a rule of that category and
//! assert the *reported* failure phase equals the phase the rule *declares*
//! in the [`CloudSim::rules`] table. Unlike `rules_coverage.rs` (which pins
//! expected phases by hand), this test is differential against the table —
//! if a rule's declared phase and its enforcement point ever drift apart,
//! exactly one of the two tests keeps passing.

use zodiac_cloud::{CheckCategory, CloudSim, DeployOutcome};
use zodiac_model::{Program, Resource, Value};

fn map(entries: &[(&str, Value)]) -> Value {
    Value::Map(
        entries
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect(),
    )
}

fn rg_ref() -> Value {
    Value::r("azurerm_resource_group", "rg", "name")
}

/// rg + vnet + one subnet, all in `eastus`.
fn base() -> Program {
    Program::new()
        .with(
            Resource::new("azurerm_resource_group", "rg")
                .with("name", "rg1")
                .with("location", "eastus"),
        )
        .with(
            Resource::new("azurerm_virtual_network", "vnet")
                .with("name", "vnet1")
                .with("location", "eastus")
                .with("resource_group_name", rg_ref())
                .with("address_space", Value::List(vec![Value::s("10.0.0.0/16")])),
        )
        .with(
            Resource::new("azurerm_subnet", "snet")
                .with("name", "internal")
                .with("resource_group_name", rg_ref())
                .with(
                    "virtual_network_name",
                    Value::r("azurerm_virtual_network", "vnet", "name"),
                )
                .with(
                    "address_prefixes",
                    Value::List(vec![Value::s("10.0.1.0/24")]),
                ),
        )
}

fn nic(name: &str, location: &str) -> Resource {
    Resource::new("azurerm_network_interface", name)
        .with("name", format!("{name}-dev"))
        .with("location", location)
        .with("resource_group_name", rg_ref())
        .with(
            "ip_configuration",
            map(&[
                ("name", Value::s("i")),
                ("subnet_id", Value::r("azurerm_subnet", "snet", "id")),
                ("private_ip_address_allocation", Value::s("Dynamic")),
            ]),
        )
}

fn vm(name: &str, location: &str, size: &str, nic_names: &[&str]) -> Resource {
    Resource::new("azurerm_linux_virtual_machine", name)
        .with("name", format!("{name}-host"))
        .with("location", location)
        .with("resource_group_name", rg_ref())
        .with("size", size)
        .with("admin_username", "azureuser")
        .with(
            "network_interface_ids",
            Value::List(
                nic_names
                    .iter()
                    .map(|n| Value::r("azurerm_network_interface", n, "id"))
                    .collect(),
            ),
        )
        .with(
            "os_disk",
            map(&[
                ("caching", Value::s("ReadWrite")),
                ("storage_account_type", Value::s("Standard_LRS")),
            ]),
        )
        .with(
            "source_image_reference",
            map(&[
                ("publisher", Value::s("Canonical")),
                ("offer", Value::s("ubuntu")),
                ("sku", Value::s("22_04")),
                ("version", Value::s("latest")),
            ]),
        )
}

/// IntraResource: a Spot VM without an eviction policy.
fn intra_resource_violation() -> Program {
    base()
        .with(nic("nic0", "eastus"))
        .with(vm("vm", "eastus", "Standard_B1s", &["nic0"]).with("priority", "Spot"))
}

/// InterResource: the VM's region differs from its NIC's.
fn inter_resource_violation() -> Program {
    base()
        .with(nic("nic0", "eastus"))
        .with(vm("vm", "westus", "Standard_B1s", &["nic0"]))
}

/// InterAgg: one NIC attached to two VMs.
fn inter_agg_violation() -> Program {
    base()
        .with(nic("nic0", "eastus"))
        .with(vm("vm1", "eastus", "Standard_B1s", &["nic0"]))
        .with(vm("vm2", "eastus", "Standard_B1s", &["nic0"]))
}

/// Interpolation: more NICs than the Standard_B1s doc table allows (2).
fn interpolation_violation() -> Program {
    base()
        .with(nic("nic0", "eastus"))
        .with(nic("nic1", "eastus"))
        .with(nic("nic2", "eastus"))
        .with(vm(
            "vm",
            "eastus",
            "Standard_B1s",
            &["nic0", "nic1", "nic2"],
        ))
}

#[test]
fn reported_phase_matches_declared_phase_per_category() {
    let cases: Vec<(CheckCategory, &str, Program)> = vec![
        (
            CheckCategory::IntraResource,
            "vm/spot-needs-eviction-policy",
            intra_resource_violation(),
        ),
        (
            CheckCategory::InterResource,
            "net/vm-nic-same-location",
            inter_resource_violation(),
        ),
        (
            CheckCategory::InterAgg,
            "nic/single-vm",
            inter_agg_violation(),
        ),
        (
            CheckCategory::Interpolation,
            "vm/max-nics-Standard_B1s",
            interpolation_violation(),
        ),
    ];

    let sim = CloudSim::new_azure();
    for (category, expected_rule, program) in cases {
        let declared = sim
            .rules()
            .iter()
            .find(|r| r.id == expected_rule)
            .unwrap_or_else(|| panic!("{expected_rule} missing from the ground-truth table"));
        assert_eq!(
            declared.category, category,
            "{expected_rule}: table category changed"
        );
        match sim.deploy(&program).outcome {
            DeployOutcome::Failure { phase, rule_id, .. } => {
                assert_eq!(rule_id, expected_rule, "{category:?}: wrong rule fired");
                assert_eq!(
                    phase, declared.phase,
                    "{expected_rule}: reported phase diverges from the declared phase"
                );
            }
            DeployOutcome::Success => {
                panic!("{category:?}: expected a {expected_rule} violation, got success")
            }
        }
    }
}
