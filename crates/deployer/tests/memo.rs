//! Crash-safety tests for the persistent deploy memo, mirroring the
//! daemon check-store harness (torn tail dropped, interior corruption is
//! a hard error, appends resume after recovery).

use std::path::{Path, PathBuf};
use zodiac_cloud::CloudSim;
use zodiac_deployer::{fingerprint, DeployMemo};
use zodiac_model::{Program, Resource, Value};

fn temp_memo(tag: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!(
        "zodiac-deploy-memo-it-{tag}-{}.log",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    path
}

fn vnet_program(cidr: &str) -> Program {
    Program::new()
        .with(
            Resource::new("azurerm_resource_group", "rg")
                .with("name", "rg1")
                .with("location", "eastus"),
        )
        .with(
            Resource::new("azurerm_virtual_network", "vnet")
                .with("name", "vnet1")
                .with("location", "eastus")
                .with("address_space", Value::List(vec![Value::s(cidr)]))
                .with(
                    "resource_group_name",
                    Value::r("azurerm_resource_group", "rg", "name"),
                ),
        )
}

/// Seeds a memo with real backend verdicts, returning the fingerprints in
/// record order.
fn seed(path: &Path, n: usize) -> Vec<u128> {
    let sim = CloudSim::new_azure();
    let (mut memo, _) = DeployMemo::open(path).unwrap();
    (0..n)
        .map(|i| {
            let p = vnet_program(&format!("10.{i}.0.0/16"));
            let fp = fingerprint(&p);
            memo.record(fp, &sim.deploy(&p)).unwrap();
            fp
        })
        .collect()
}

#[test]
fn torn_tail_is_dropped_then_appends_resume() {
    let path = temp_memo("torn");
    let fps = seed(&path, 3);

    // Simulate a crash mid-append: cut into the last record, removing its
    // trailing newline (the durability marker).
    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..bytes.len() - 7]).unwrap();

    let (mut memo, report) = DeployMemo::open(&path).unwrap();
    assert!(report.dropped_partial, "torn tail must be reported");
    assert_eq!(report.entries, 2, "torn record dropped, prefix kept");
    assert!(memo.get(fps[0]).is_some());
    assert!(memo.get(fps[1]).is_some());
    assert!(memo.get(fps[2]).is_none());

    // The truncated log accepts appends again and replays cleanly.
    let sim = CloudSim::new_azure();
    let p = vnet_program("10.2.0.0/16");
    assert!(memo.record(fingerprint(&p), &sim.deploy(&p)).unwrap());
    drop(memo);
    let (memo, report) = DeployMemo::open(&path).unwrap();
    assert!(!report.dropped_partial);
    assert_eq!(memo.len(), 3);
    assert_eq!(memo.get(fps[2]), Some(&sim.deploy(&p)));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn interior_corruption_is_a_hard_error() {
    let path = temp_memo("corrupt");
    seed(&path, 4);
    let text = std::fs::read_to_string(&path).unwrap();
    let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
    lines[2] = lines[2].replace("\"record\"", "\"rec0rd\"");
    std::fs::write(&path, lines.join("\n") + "\n").unwrap();
    assert!(
        DeployMemo::open(&path).is_err(),
        "interior corruption is not a torn tail and must not be silently dropped"
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn foreign_file_is_rejected() {
    let path = temp_memo("foreign");
    std::fs::write(&path, "{\"record\":\"zodiacd-store\",\"schema\":1}\n").unwrap();
    assert!(DeployMemo::open(&path).is_err(), "wrong header must fail");
    let _ = std::fs::remove_file(&path);
}
