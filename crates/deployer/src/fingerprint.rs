//! Canonical program fingerprints for deploy-result memoization.
//!
//! Two programs that differ only in declaration order describe the same
//! infrastructure, and the simulator's verdict depends only on the resource
//! graph — so the cache key must be *canonical*: resources are folded in
//! `(rtype, name)` order and attributes in key order (attribute maps are
//! already `BTreeMap`s), making the fingerprint invariant under reordering
//! while any change to a type, name, attribute, or nested value changes it.
//!
//! The digest is 128-bit FNV-1a. FNV is not cryptographic, but the cache is
//! an in-process optimisation over a few thousand generated test programs;
//! 128 bits of a well-mixed non-adversarial hash make collisions a
//! non-concern, and the function is dependency-free and fast.

use zodiac_model::{Program, Resource, Value};

const FNV_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
const FNV_PRIME: u128 = 0x0000000001000000000000000000013b;

/// A 128-bit FNV-1a accumulator.
struct Fnv(u128);

impl Fnv {
    fn new() -> Self {
        Fnv(FNV_OFFSET)
    }

    fn byte(&mut self, b: u8) {
        self.0 ^= b as u128;
        self.0 = self.0.wrapping_mul(FNV_PRIME);
    }

    fn bytes(&mut self, bs: &[u8]) {
        for &b in bs {
            self.byte(b);
        }
    }

    /// Length-prefixed string: avoids ambiguity between `("ab","c")` and
    /// `("a","bc")`.
    fn str(&mut self, s: &str) {
        self.bytes(&(s.len() as u64).to_le_bytes());
        self.bytes(s.as_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }
}

/// Computes the canonical fingerprint of a program.
pub fn fingerprint(program: &Program) -> u128 {
    let mut h = Fnv::new();
    let mut order: Vec<&Resource> = program.resources().iter().collect();
    order.sort_by_key(|r| (&r.rtype, &r.name));
    h.u64(order.len() as u64);
    for r in order {
        h.byte(b'R');
        h.str(&r.rtype);
        h.str(&r.name);
        h.u64(r.attrs.len() as u64);
        for (k, v) in &r.attrs {
            h.str(k);
            hash_value(&mut h, v);
        }
    }
    h.0
}

fn hash_value(h: &mut Fnv, v: &Value) {
    // A distinct tag byte per variant keeps e.g. Str("1") and Int(1) apart.
    match v {
        Value::Null => h.byte(0),
        Value::Bool(b) => {
            h.byte(1);
            h.byte(*b as u8);
        }
        Value::Int(i) => {
            h.byte(2);
            h.u64(*i as u64);
        }
        Value::Str(s) => {
            h.byte(3);
            h.str(s);
        }
        Value::List(items) => {
            // List order is semantic (e.g. address prefixes), so it hashes
            // in declared order.
            h.byte(4);
            h.u64(items.len() as u64);
            for item in items {
                hash_value(h, item);
            }
        }
        Value::Map(m) => {
            h.byte(5);
            h.u64(m.len() as u64);
            for (k, item) in m {
                h.str(k);
                hash_value(h, item);
            }
        }
        Value::Ref(r) => {
            h.byte(6);
            h.str(&r.rtype);
            h.str(&r.name);
            h.str(&r.attr);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zodiac_model::Resource;

    fn two_resources() -> (Resource, Resource) {
        let a = Resource::new("azurerm_subnet", "a")
            .with("name", "a1")
            .with(
                "address_prefixes",
                Value::List(vec![Value::s("10.0.1.0/24")]),
            );
        let b = Resource::new("azurerm_virtual_network", "b")
            .with("name", "b1")
            .with("location", "eastus");
        (a, b)
    }

    #[test]
    fn reordering_resources_preserves_fingerprint() {
        let (a, b) = two_resources();
        let p1 = Program::new().with(a.clone()).with(b.clone());
        let p2 = Program::new().with(b).with(a);
        assert_eq!(fingerprint(&p1), fingerprint(&p2));
    }

    #[test]
    fn attribute_changes_change_fingerprint() {
        let (a, b) = two_resources();
        let p1 = Program::new().with(a.clone()).with(b.clone());
        let p2 = Program::new().with(a.with("location", "westus")).with(b);
        assert_ne!(fingerprint(&p1), fingerprint(&p2));
    }

    #[test]
    fn value_variants_do_not_collide() {
        let base =
            |v: Value| Program::new().with(Resource::new("azurerm_subnet", "s").with("x", v));
        let fps = [
            fingerprint(&base(Value::s("1"))),
            fingerprint(&base(Value::Int(1))),
            fingerprint(&base(Value::Bool(true))),
            fingerprint(&base(Value::List(vec![Value::Int(1)]))),
        ];
        for i in 0..fps.len() {
            for j in i + 1..fps.len() {
                assert_ne!(fps[i], fps[j], "variants {i} and {j} collide");
            }
        }
    }
}
