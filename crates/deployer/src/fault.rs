//! Deterministic, seeded fault injection.
//!
//! # Fault model
//!
//! The engine models the three transients the paper's Azure deployments hit
//! in practice:
//!
//! * **Throttling** — the cloud rejects a creation request with an HTTP-429
//!   style retry-after hint ([`FaultKind::Throttled`], surfaces at
//!   [`Phase::SendingRequest`]);
//! * **Spurious request failures** — 5xx-style flakes with no ground-truth
//!   cause ([`FaultKind::SpuriousFailure`], also `SendingRequest`);
//! * **Polling timeouts** — asynchronous polling on slow resources exceeds
//!   the client deadline ([`FaultKind::PollingTimeout`], surfaces at
//!   [`Phase::PollingRequest`]).
//!
//! Faults are *deterministic*: whether step `(resource, phase)` of attempt
//! `k` of program `fp` fails is a pure hash of
//! `(seed, fp, k, resource, phase)` compared against the configured rates.
//! Runs with the same seed replay the exact same fault schedule — across
//! processes, thread counts, and batch orders — which is what makes the
//! engine's parallel-equals-sequential equivalence testable at all.
//!
//! Because the decision depends on the attempt number, a fault observed on
//! attempt `k` is generally gone on attempt `k + 1`, exactly like real
//! throttling; the engine additionally guarantees the final retry attempt
//! runs injector-free, so a deterministic verdict is always reached.

use zodiac_cloud::{FaultInjector, FaultKind, Phase};
use zodiac_model::ResourceId;

/// Configuration of the seeded fault injector. Rates are per *step* (one
/// resource passing one request phase), in `[0, 1]`.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Seed for the deterministic fault schedule.
    pub seed: u64,
    /// Probability a creation request is throttled.
    pub throttle_rate: f64,
    /// Probability a creation request fails spuriously.
    pub spurious_rate: f64,
    /// Probability asynchronous polling times out.
    pub polling_timeout_rate: f64,
    /// Retry-after hint attached to throttling faults, in seconds.
    pub retry_after_secs: u64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            seed: 0xFA_017,
            throttle_rate: 0.02,
            spurious_rate: 0.01,
            polling_timeout_rate: 0.01,
            retry_after_secs: 30,
        }
    }
}

/// The injector for one attempt of one program: decisions hash the config
/// seed together with the program fingerprint, the attempt number, and the
/// step identity.
pub struct AttemptInjector<'a> {
    cfg: &'a FaultConfig,
    fingerprint: u128,
    attempt: u32,
}

impl<'a> AttemptInjector<'a> {
    /// Creates the injector for attempt `attempt` (0-based) of the program
    /// with canonical fingerprint `fingerprint`.
    pub fn new(cfg: &'a FaultConfig, fingerprint: u128, attempt: u32) -> Self {
        AttemptInjector {
            cfg,
            fingerprint,
            attempt,
        }
    }

    /// A uniform draw in [0, 1) for one (step, decision-tag) pair.
    fn draw(&self, resource: &ResourceId, phase: Phase, tag: u8) -> f64 {
        let mut h = 0xcbf29ce484222325u64 ^ self.cfg.seed.rotate_left(17);
        let mut eat = |bs: &[u8]| {
            for &b in bs {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
        };
        eat(&self.fingerprint.to_le_bytes());
        eat(&self.attempt.to_le_bytes());
        eat(&[tag, phase as u8]);
        eat(resource.rtype.as_bytes());
        eat(&[0xff]);
        eat(resource.name.as_bytes());
        // Final avalanche (splitmix64 finaliser) so low rates still sample
        // uniformly.
        h ^= h >> 30;
        h = h.wrapping_mul(0xbf58476d1ce4e5b9);
        h ^= h >> 27;
        h = h.wrapping_mul(0x94d049bb133111eb);
        h ^= h >> 31;
        (h >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl FaultInjector for AttemptInjector<'_> {
    fn inject(&self, resource: &ResourceId, phase: Phase) -> Option<FaultKind> {
        match phase {
            Phase::SendingRequest => {
                if self.draw(resource, phase, b'T') < self.cfg.throttle_rate {
                    return Some(FaultKind::Throttled {
                        retry_after_secs: self.cfg.retry_after_secs,
                    });
                }
                if self.draw(resource, phase, b'S') < self.cfg.spurious_rate {
                    return Some(FaultKind::SpuriousFailure);
                }
                None
            }
            Phase::PollingRequest => {
                if self.draw(resource, phase, b'P') < self.cfg.polling_timeout_rate {
                    Some(FaultKind::PollingTimeout)
                } else {
                    None
                }
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic() {
        let cfg = FaultConfig {
            throttle_rate: 0.5,
            ..FaultConfig::default()
        };
        let id = ResourceId::new("azurerm_subnet", "s");
        let a = AttemptInjector::new(&cfg, 42, 0);
        let b = AttemptInjector::new(&cfg, 42, 0);
        for phase in [Phase::SendingRequest, Phase::PollingRequest] {
            assert_eq!(a.inject(&id, phase), b.inject(&id, phase));
        }
    }

    #[test]
    fn decisions_vary_with_attempt_and_seed() {
        let cfg = FaultConfig {
            throttle_rate: 0.5,
            spurious_rate: 0.5,
            ..FaultConfig::default()
        };
        let id = ResourceId::new("azurerm_subnet", "s");
        // Across many (fingerprint, attempt) pairs, outcomes must differ at
        // least once; a constant schedule would make retries pointless.
        let outcomes: Vec<Option<FaultKind>> = (0..32u32)
            .map(|attempt| {
                AttemptInjector::new(&cfg, 7, attempt).inject(&id, Phase::SendingRequest)
            })
            .collect();
        assert!(outcomes.iter().any(|o| o.is_some()));
        assert!(outcomes.iter().any(|o| o.is_none()));
    }

    #[test]
    fn rates_zero_injects_nothing() {
        let cfg = FaultConfig {
            throttle_rate: 0.0,
            spurious_rate: 0.0,
            polling_timeout_rate: 0.0,
            ..FaultConfig::default()
        };
        let inj = AttemptInjector::new(&cfg, 1, 0);
        for i in 0..64 {
            let id = ResourceId::new("azurerm_subnet", format!("s{i}"));
            assert_eq!(inj.inject(&id, Phase::SendingRequest), None);
            assert_eq!(inj.inject(&id, Phase::PollingRequest), None);
        }
    }
}
