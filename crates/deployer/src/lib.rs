//! Concurrent, fault-tolerant deployment execution engine with result
//! memoization.
//!
//! Deployment is the paper's dominant cost: validating ~400 candidate
//! checks takes thousands of cloud deploys, each minutes long, throttled,
//! and transiently flaky. This crate inserts an execution engine between
//! every deploy consumer and the [`DeployOracle`] backend:
//!
//! * **worker pool** — [`DeployOracle::deploy_batch`] fans independent test
//!   deployments across OS threads through a bounded request queue
//!   (mirroring cloud-side concurrency limits);
//! * **memoization** — verdicts are cached under a canonical program
//!   [`fingerprint`](fingerprint::fingerprint) that is invariant under
//!   resource/attribute declaration order, so the scheduler's repeated
//!   probes of identical test cases hit the cache instead of the cloud;
//! * **fault injection + retry** — a deterministic, seeded
//!   [`FaultConfig`] schedule models throttling, spurious request
//!   failures, and polling timeouts (see [`fault`] for the fault model);
//!   the engine's retry loop absorbs them (see
//!   [`DeployEngine::attempt_loop`'s policy][DeployEngine]) so consumers
//!   only ever observe deterministic verdicts;
//! * **metrics** — the engine records `deploy.*` counters, gauges, and
//!   latency histograms (requests, cache hits, retries, queue depth,
//!   simulated backoff) into a `zodiac-obs` registry that threads into the
//!   validation trace and the experiment binaries; pass an external
//!   [`Obs`](zodiac_obs::Obs) via [`DeployEngine::with_obs`] to mirror
//!   them into a trace sink.
//!
//! The engine implements [`DeployOracle`] itself, so swapping it in is
//! transparent: `R_v` from a parallel, cached, fault-injected run is
//! identical to a direct sequential run against the same backend.

pub mod engine;
pub mod fault;
pub mod fingerprint;
pub mod memo;

pub use engine::{DeployEngine, DeployerConfig};
pub use fault::{AttemptInjector, FaultConfig};
pub use fingerprint::fingerprint;
pub use memo::{DeployMemo, MemoLoadReport, MemoStats};
pub use zodiac_cloud::DeployOracle;

/// Retry/backoff policy for transient deploy failures.
///
/// `max_attempts` bounds *total* attempts (first try included); retries
/// sleep — in simulated time, charged to the `deploy.backoff_secs`
/// counter — for the fault's retry-after hint when throttled, or
/// `base_backoff_secs * 2^attempt` otherwise. The final attempt always
/// runs fault-free, so a deploy request never surfaces a transient failure
/// to its consumer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per deploy request, including the first (≥ 1).
    pub max_attempts: u32,
    /// Base of the exponential backoff applied to non-throttle transients.
    pub base_backoff_secs: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_backoff_secs: 2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zodiac_cloud::{CloudSim, DeployOutcome};
    use zodiac_model::{Program, Resource, Value};

    fn vnet_program(cidr: &str) -> Program {
        Program::new()
            .with(
                Resource::new("azurerm_resource_group", "rg")
                    .with("name", "rg1")
                    .with("location", "eastus"),
            )
            .with(
                Resource::new("azurerm_virtual_network", "vnet")
                    .with("name", "vnet1")
                    .with("location", "eastus")
                    .with("address_space", Value::List(vec![Value::s(cidr)]))
                    .with(
                        "resource_group_name",
                        Value::r("azurerm_resource_group", "rg", "name"),
                    ),
            )
    }

    #[test]
    fn cache_hit_skips_backend() {
        let engine = DeployEngine::new(CloudSim::new_azure(), DeployerConfig::default());
        let p = vnet_program("10.0.0.0/16");
        let first = engine.deploy(&p);
        let second = engine.deploy(&p);
        assert_eq!(
            serde_json::to_string(&first).unwrap(),
            serde_json::to_string(&second).unwrap()
        );
        let tel = engine.metrics();
        assert_eq!(tel.counter("deploy.requests"), 2);
        assert_eq!(tel.counter("deploy.cache_hits"), 1);
        assert_eq!(tel.counter("deploy.backend_deploys"), 1);
        assert_eq!(tel.histogram("deploy.latency_us.cache_hit").count, 1);
        assert_eq!(tel.histogram("deploy.latency_us.backend").count, 1);
    }

    #[test]
    fn serving_boundary_emits_op_windows() {
        let engine = DeployEngine::new(CloudSim::new_azure(), DeployerConfig::default());
        // One clean deploy, one cache hit, one deterministic failure (Spot
        // VM without an eviction policy).
        let clean = vnet_program("10.0.0.0/16");
        engine.deploy(&clean);
        engine.deploy(&clean);
        let report = engine.deploy(
            &Program::new().with(
                Resource::new("azurerm_linux_virtual_machine", "vm")
                    .with("size", "Standard_B1s")
                    .with("priority", "Spot"),
            ),
        );
        assert!(!report.outcome.is_success());
        let tel = engine.metrics();
        // Every request — cached or not, failed or not — lands in the
        // boundary histogram; only the failed verdict counts as an error.
        assert_eq!(tel.histogram("op.deploy.us").count, 3);
        assert_eq!(tel.counter("op.deploy.errors"), 1);
    }

    #[test]
    fn faults_are_absorbed_by_retries() {
        let cfg = DeployerConfig {
            faults: Some(FaultConfig {
                throttle_rate: 1.0,
                ..FaultConfig::default()
            }),
            ..DeployerConfig::default()
        };
        let engine = DeployEngine::new(CloudSim::new_azure(), cfg);
        let report = engine.deploy(&vnet_program("10.0.0.0/16"));
        assert!(
            matches!(report.outcome, DeployOutcome::Success),
            "retries must absorb transients: {:?}",
            report.outcome
        );
        let tel = engine.metrics();
        assert!(tel.counter("deploy.retries") > 0);
        assert!(tel.counter("deploy.backoff_secs") > 0);
    }

    #[test]
    fn persistent_memo_spans_engine_lifetimes() {
        let path = std::env::temp_dir().join(format!(
            "zodiac-deploy-memo-engine-{}.log",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        let cfg = DeployerConfig {
            persistent_cache: Some(path.clone()),
            ..DeployerConfig::default()
        };
        let p = vnet_program("10.0.0.0/16");
        let first = {
            let engine = DeployEngine::new(CloudSim::new_azure(), cfg.clone());
            let report = engine.deploy(&p);
            let tel = engine.metrics();
            assert_eq!(tel.counter("deploy.backend_deploys"), 1);
            assert_eq!(tel.counter("deploy.persistent_stores"), 1);
            report
        };
        // A fresh engine — a different process, as far as the memo is
        // concerned — serves the verdict without touching the backend.
        let engine = DeployEngine::new(CloudSim::new_azure(), cfg);
        let (second, cached) = engine.deploy_annotated(&p);
        assert!(cached);
        assert_eq!(
            serde_json::to_string(&first).unwrap(),
            serde_json::to_string(&second).unwrap()
        );
        let tel = engine.metrics();
        assert_eq!(tel.counter("deploy.backend_deploys"), 0);
        assert_eq!(tel.counter("deploy.persistent_hits"), 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn batch_matches_sequential_backend() {
        let sim = CloudSim::new_azure();
        let programs: Vec<Program> = (0..24)
            .map(|i| {
                if i % 3 == 0 {
                    vnet_program("10.0.0.0/16")
                } else {
                    vnet_program(&format!("10.{i}.0.0/16"))
                }
            })
            .collect();
        let expected: Vec<String> = programs
            .iter()
            .map(|p| serde_json::to_string(&sim.deploy(p)).unwrap())
            .collect();
        let engine = DeployEngine::new(sim, DeployerConfig::default());
        let got: Vec<String> = engine
            .deploy_batch(&programs)
            .iter()
            .map(|r| serde_json::to_string(r).unwrap())
            .collect();
        assert_eq!(got, expected);
        let tel = engine.metrics();
        assert_eq!(tel.counter("deploy.requests"), 24);
        assert!(
            tel.counter("deploy.backend_deploys") < tel.counter("deploy.requests"),
            "duplicates must hit the cache"
        );
    }
}
