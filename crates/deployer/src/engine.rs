//! The deployment execution engine.

use crate::fault::{AttemptInjector, FaultConfig};
use crate::fingerprint::fingerprint;
use crate::RetryPolicy;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;
use zodiac_cloud::{DeployOracle, DeployReport, DeployTelemetry};
use zodiac_model::Program;

/// Engine configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct DeployerConfig {
    /// Worker threads used by [`DeployOracle::deploy_batch`]. `1` keeps
    /// everything on the calling thread.
    pub workers: usize,
    /// Memoize deploy results by canonical program fingerprint.
    pub cache: bool,
    /// Inject deterministic transient faults (None = fault-free backend).
    pub faults: Option<FaultConfig>,
    /// Retry/backoff policy for transient failures.
    pub retry: RetryPolicy,
}

impl Default for DeployerConfig {
    fn default() -> Self {
        DeployerConfig {
            workers: 4,
            cache: true,
            faults: None,
            retry: RetryPolicy::default(),
        }
    }
}

const CACHE_SHARDS: usize = 16;

#[derive(Default)]
struct Stats {
    requests: AtomicU64,
    cache_hits: AtomicU64,
    backend_deploys: AtomicU64,
    transient_failures: AtomicU64,
    retries: AtomicU64,
    max_queue_depth: AtomicU64,
    simulated_backoff_secs: AtomicU64,
    wall_time_ms: AtomicU64,
}

impl Stats {
    fn bump_max(cell: &AtomicU64, observed: u64) {
        let mut cur = cell.load(Ordering::Relaxed);
        while observed > cur {
            match cell.compare_exchange_weak(cur, observed, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => break,
                Err(now) => cur = now,
            }
        }
    }
}

/// A concurrent, fault-tolerant, memoizing deployment engine wrapping any
/// [`DeployOracle`] backend.
///
/// The engine is itself a `DeployOracle`, so consumers (the validation
/// scheduler, the counterexample pass, the scanner) are oblivious to
/// whether they talk to the backend directly or through the engine.
///
/// # Equivalence guarantee
///
/// For a deterministic backend, `engine.deploy(p)` returns exactly
/// `backend.deploy(p)` — regardless of worker count, cache state, or fault
/// injection. Three mechanisms compose to give this:
///
/// * the cache key is a canonical fingerprint ([`crate::fingerprint()`]), so a
///   hit can only return the verdict of a semantically identical program;
/// * transient failures (rule ids under `transient/`) are never returned:
///   the retry loop consumes them, and every retry of a deterministic
///   backend that gets past the injector yields the fault-free verdict
///   (injected faults preempt evaluation but never alter it);
/// * the final retry attempt always runs injector-free, so the loop
///   terminates with the backend's own verdict even under fault rates of
///   `1.0`.
pub struct DeployEngine<B> {
    backend: B,
    cfg: DeployerConfig,
    cache: Vec<RwLock<HashMap<u128, DeployReport>>>,
    stats: Stats,
}

impl<B: DeployOracle + Sync> DeployEngine<B> {
    /// Wraps `backend` with the given configuration.
    pub fn new(backend: B, cfg: DeployerConfig) -> Self {
        DeployEngine {
            backend,
            cfg,
            cache: (0..CACHE_SHARDS)
                .map(|_| RwLock::new(HashMap::new()))
                .collect(),
            stats: Stats::default(),
        }
    }

    /// The wrapped backend.
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// The engine configuration.
    pub fn config(&self) -> &DeployerConfig {
        &self.cfg
    }

    /// A point-in-time snapshot of the engine's counters.
    pub fn telemetry_snapshot(&self) -> DeployTelemetry {
        DeployTelemetry {
            requests: self.stats.requests.load(Ordering::Relaxed),
            cache_hits: self.stats.cache_hits.load(Ordering::Relaxed),
            backend_deploys: self.stats.backend_deploys.load(Ordering::Relaxed),
            transient_failures: self.stats.transient_failures.load(Ordering::Relaxed),
            retries: self.stats.retries.load(Ordering::Relaxed),
            max_queue_depth: self.stats.max_queue_depth.load(Ordering::Relaxed),
            simulated_backoff_secs: self.stats.simulated_backoff_secs.load(Ordering::Relaxed),
            wall_time_ms: self.stats.wall_time_ms.load(Ordering::Relaxed),
        }
    }

    fn shard(&self, fp: u128) -> &RwLock<HashMap<u128, DeployReport>> {
        &self.cache[(fp % CACHE_SHARDS as u128) as usize]
    }

    /// One deploy request: cache lookup, then the retrying attempt loop.
    fn deploy_one(&self, program: &Program) -> DeployReport {
        let t0 = Instant::now();
        self.stats.requests.fetch_add(1, Ordering::Relaxed);
        let fp = fingerprint(program);
        if self.cfg.cache {
            if let Some(hit) = self.shard(fp).read().get(&fp).cloned() {
                self.stats.cache_hits.fetch_add(1, Ordering::Relaxed);
                self.stats
                    .wall_time_ms
                    .fetch_add(t0.elapsed().as_millis() as u64, Ordering::Relaxed);
                return hit;
            }
        }
        self.stats.backend_deploys.fetch_add(1, Ordering::Relaxed);
        let report = self.attempt_loop(program, fp);
        if self.cfg.cache {
            // Two workers may race to a cold fingerprint; both compute the
            // same verdict (deterministic backend), so last-write-wins is
            // harmless.
            self.shard(fp).write().insert(fp, report.clone());
        }
        self.stats
            .wall_time_ms
            .fetch_add(t0.elapsed().as_millis() as u64, Ordering::Relaxed);
        report
    }

    /// Deploys with retries until a non-transient verdict.
    ///
    /// # Retry policy
    ///
    /// A transient failure (`transient/` rule id) is retried up to
    /// [`RetryPolicy::max_attempts`] total attempts; each retry charges the
    /// fault's retry-after hint (throttling) or exponential backoff
    /// (`base_backoff_secs << attempt`) to the simulated-backoff counter.
    /// Any other outcome — success or a deterministic (ground-truth)
    /// failure — returns immediately. The last attempt runs without the
    /// injector, so the loop always terminates with a deterministic verdict.
    fn attempt_loop(&self, program: &Program, fp: u128) -> DeployReport {
        let Some(faults) = &self.cfg.faults else {
            return self.backend.deploy(program);
        };
        let attempts = self.cfg.retry.max_attempts.max(1);
        for attempt in 0..attempts {
            let report = if attempt + 1 == attempts {
                self.backend.deploy(program)
            } else {
                let injector = AttemptInjector::new(faults, fp, attempt);
                self.backend.deploy_with_faults(program, &injector)
            };
            if !report.is_transient_failure() {
                return report;
            }
            self.stats
                .transient_failures
                .fetch_add(1, Ordering::Relaxed);
            self.stats.retries.fetch_add(1, Ordering::Relaxed);
            let backoff = if matches!(
                &report.outcome,
                zodiac_cloud::DeployOutcome::Failure { rule_id, .. }
                    if rule_id == "transient/throttled"
            ) {
                faults.retry_after_secs
            } else {
                self.cfg.retry.base_backoff_secs << attempt.min(16)
            };
            self.stats
                .simulated_backoff_secs
                .fetch_add(backoff, Ordering::Relaxed);
        }
        unreachable!("final attempt runs fault-free and always returns");
    }
}

impl<B: DeployOracle + Sync> DeployOracle for DeployEngine<B> {
    fn deploy(&self, program: &Program) -> DeployReport {
        self.deploy_one(program)
    }

    /// Fans the batch across the worker pool through a bounded request
    /// queue; reports come back in input order.
    fn deploy_batch(&self, programs: &[Program]) -> Vec<DeployReport> {
        let workers = self.cfg.workers.max(1).min(programs.len());
        if workers <= 1 {
            return programs.iter().map(|p| self.deploy_one(p)).collect();
        }
        let (job_tx, job_rx) = crossbeam::channel::bounded::<(usize, &Program)>(workers * 2);
        let (res_tx, res_rx) = crossbeam::channel::bounded::<(usize, DeployReport)>(programs.len());
        let mut out: Vec<Option<DeployReport>> = vec![None; programs.len()];
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let job_rx = job_rx.clone();
                let res_tx = res_tx.clone();
                scope.spawn(move || {
                    while let Ok((idx, program)) = job_rx.recv() {
                        let report = self.deploy_one(program);
                        if res_tx.send((idx, report)).is_err() {
                            break;
                        }
                    }
                });
            }
            drop(job_rx);
            drop(res_tx);
            for job in programs.iter().enumerate() {
                job_tx.send(job).expect("workers alive while sending");
                Stats::bump_max(&self.stats.max_queue_depth, job_tx.len() as u64);
            }
            drop(job_tx);
            for (idx, report) in res_rx.iter() {
                out[idx] = Some(report);
            }
        });
        out.into_iter()
            .map(|r| r.expect("every job produced a report"))
            .collect()
    }

    fn telemetry(&self) -> Option<DeployTelemetry> {
        Some(self.telemetry_snapshot())
    }
}
