//! The deployment execution engine.

use crate::fault::{AttemptInjector, FaultConfig};
use crate::fingerprint::fingerprint;
use crate::memo::DeployMemo;
use crate::RetryPolicy;
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;
use zodiac_cloud::{DeployOracle, DeployReport};
use zodiac_model::Program;
use zodiac_obs::{MemoryRecorder, MetricsSnapshot, Obs};

/// Engine configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct DeployerConfig {
    /// Worker threads used by [`DeployOracle::deploy_batch`]. `1` keeps
    /// everything on the calling thread.
    pub workers: usize,
    /// Memoize deploy results by canonical program fingerprint.
    pub cache: bool,
    /// Inject deterministic transient faults (None = fault-free backend).
    pub faults: Option<FaultConfig>,
    /// Retry/backoff policy for transient failures.
    pub retry: RetryPolicy,
    /// Path of a cross-process persistent deploy memo ([`DeployMemo`]);
    /// verdicts recorded there survive the process and are shared between
    /// the CLI, benches, and `zodiacd`.
    pub persistent_cache: Option<PathBuf>,
}

impl Default for DeployerConfig {
    fn default() -> Self {
        DeployerConfig {
            workers: 4,
            cache: true,
            faults: None,
            retry: RetryPolicy::default(),
            persistent_cache: None,
        }
    }
}

const CACHE_SHARDS: usize = 16;

/// A concurrent, fault-tolerant, memoizing deployment engine wrapping any
/// [`DeployOracle`] backend.
///
/// The engine is itself a `DeployOracle`, so consumers (the validation
/// scheduler, the counterexample pass, the scanner) are oblivious to
/// whether they talk to the backend directly or through the engine.
///
/// # Metrics
///
/// The engine always records into an internal `zodiac-obs` registry
/// (surfaced by [`DeployOracle::telemetry`] / [`DeployEngine::metrics`]),
/// and additionally fans out to any external [`Obs`] handle passed to
/// [`DeployEngine::with_obs`] — e.g. the CLI's trace sink. Counters live
/// under the `deploy.*` namespace:
///
/// * `deploy.requests`, `deploy.cache_hits`, `deploy.backend_deploys`
/// * `deploy.persistent_hits`, `deploy.persistent_stores`,
///   `deploy.persistent_errors` (cross-process memo traffic)
/// * `deploy.transient_failures`, `deploy.retries`, `deploy.backoff_secs`
/// * gauge `deploy.queue_depth.max` (worker-pool high-water mark)
/// * histograms `deploy.latency_us.cache_hit` / `deploy.latency_us.backend`
///
/// # Equivalence guarantee
///
/// For a deterministic backend, `engine.deploy(p)` returns exactly
/// `backend.deploy(p)` — regardless of worker count, cache state, or fault
/// injection. Three mechanisms compose to give this:
///
/// * the cache key is a canonical fingerprint ([`crate::fingerprint()`]), so a
///   hit can only return the verdict of a semantically identical program;
/// * transient failures (rule ids under `transient/`) are never returned:
///   the retry loop consumes them, and every retry of a deterministic
///   backend that gets past the injector yields the fault-free verdict
///   (injected faults preempt evaluation but never alter it);
/// * the final retry attempt always runs injector-free, so the loop
///   terminates with the backend's own verdict even under fault rates of
///   `1.0`.
pub struct DeployEngine<B> {
    backend: B,
    cfg: DeployerConfig,
    cache: Vec<RwLock<HashMap<u128, DeployReport>>>,
    persistent: Option<Mutex<DeployMemo>>,
    registry: Arc<MemoryRecorder>,
    obs: Obs,
}

impl<B: DeployOracle + Sync> DeployEngine<B> {
    /// Wraps `backend` with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if [`DeployerConfig::persistent_cache`] names a file that
    /// cannot be opened as a deploy memo; use
    /// [`DeployEngine::try_with_obs`] to handle that error.
    pub fn new(backend: B, cfg: DeployerConfig) -> Self {
        DeployEngine::with_obs(backend, cfg, Obs::null())
    }

    /// Wraps `backend`, fanning metrics out to `obs` in addition to the
    /// engine's own in-memory registry. The engine derives its handle via
    /// [`Obs::with_sink`], sharing the caller's trace context, so
    /// per-request deploy spans parent correctly under whatever span is
    /// ambient when the deploy is issued (e.g. a validation wave).
    ///
    /// # Panics
    ///
    /// Panics if [`DeployerConfig::persistent_cache`] names a file that
    /// cannot be opened as a deploy memo; use
    /// [`DeployEngine::try_with_obs`] to handle that error.
    pub fn with_obs(backend: B, cfg: DeployerConfig, obs: Obs) -> Self {
        match DeployEngine::try_with_obs(backend, cfg, obs) {
            Ok(engine) => engine,
            Err(e) => panic!("deploy cache: {e}"),
        }
    }

    /// [`DeployEngine::with_obs`], surfacing persistent-memo open errors
    /// (missing parent directory, corrupt interior record, wrong header)
    /// instead of panicking.
    pub fn try_with_obs(backend: B, cfg: DeployerConfig, obs: Obs) -> Result<Self, String> {
        let persistent = match &cfg.persistent_cache {
            Some(path) => Some(Mutex::new(DeployMemo::open(path)?.0)),
            None => None,
        };
        let registry = Arc::new(MemoryRecorder::new());
        Ok(DeployEngine {
            backend,
            cfg,
            cache: (0..CACHE_SHARDS)
                .map(|_| RwLock::new(HashMap::new()))
                .collect(),
            persistent,
            obs: obs.with_sink(registry.clone()),
            registry,
        })
    }

    /// The wrapped backend.
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// Forces the persistent memo (if configured) to stable storage.
    /// Appends are plain writes — visible to other processes immediately
    /// but not yet durable; this is the durability point, also taken
    /// best-effort on drop.
    pub fn sync_persistent(&self) -> Result<(), String> {
        match &self.persistent {
            Some(memo) => memo.lock().sync(),
            None => Ok(()),
        }
    }

    /// The engine configuration.
    pub fn config(&self) -> &DeployerConfig {
        &self.cfg
    }

    /// A point-in-time snapshot of the engine's `deploy.*` metrics.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.registry.snapshot()
    }

    /// Backward-compatible alias for [`DeployEngine::metrics`].
    pub fn telemetry_snapshot(&self) -> MetricsSnapshot {
        self.metrics()
    }

    fn shard(&self, fp: u128) -> &RwLock<HashMap<u128, DeployReport>> {
        &self.cache[(fp % CACHE_SHARDS as u128) as usize]
    }

    /// One deploy request: cache lookup, then the retrying attempt loop.
    fn deploy_one(&self, program: &Program) -> DeployReport {
        self.deploy_one_annotated(program).0
    }

    /// Serving-boundary telemetry for one deploy request: `op.deploy.us`
    /// feeds rolling latency windows when a [`RollingRecorder`] sink is
    /// attached, `op.deploy.errors` counts failed deployment verdicts.
    ///
    /// [`RollingRecorder`]: zodiac_obs::RollingRecorder
    fn record_boundary(&self, t0: Instant, report: &DeployReport) {
        self.obs
            .histogram("op.deploy.us", t0.elapsed().as_micros() as u64);
        if !report.outcome.is_success() {
            self.obs.counter("op.deploy.errors", 1);
        }
    }

    /// [`DeployEngine::deploy_one`], also reporting whether the result came
    /// from the memo cache. Emits a *leaf* span (never a scoped one — this
    /// runs on pool worker threads) parented under whatever span is
    /// ambient, with the cache verdict as an attribute.
    fn deploy_one_annotated(&self, program: &Program) -> (DeployReport, bool) {
        let t0 = Instant::now();
        let mut span = self.obs.start_leaf_span("deploy");
        self.obs.counter("deploy.requests", 1);
        let fp = fingerprint(program);
        if self.cfg.cache {
            if let Some(hit) = self.shard(fp).read().get(&fp).cloned() {
                self.obs.counter("deploy.cache_hits", 1);
                self.obs.histogram(
                    "deploy.latency_us.cache_hit",
                    t0.elapsed().as_micros() as u64,
                );
                self.record_boundary(t0, &hit);
                span.attr("cached", 1u64);
                span.finish();
                return (hit, true);
            }
        }
        // The persistent memo backstops the in-memory cache: a hit from a
        // previous run still skips the backend, and is promoted into the
        // shard so repeats stay off the memo lock.
        if let Some(memo) = &self.persistent {
            if let Some(hit) = memo.lock().get(fp).cloned() {
                self.obs.counter("deploy.cache_hits", 1);
                self.obs.counter("deploy.persistent_hits", 1);
                if self.cfg.cache {
                    self.shard(fp).write().insert(fp, hit.clone());
                }
                self.obs.histogram(
                    "deploy.latency_us.cache_hit",
                    t0.elapsed().as_micros() as u64,
                );
                self.record_boundary(t0, &hit);
                span.attr("cached", 1u64);
                span.finish();
                return (hit, true);
            }
        }
        self.obs.counter("deploy.backend_deploys", 1);
        let report = self.attempt_loop(program, fp);
        if self.cfg.cache {
            // Two workers may race to a cold fingerprint; both compute the
            // same verdict (deterministic backend), so last-write-wins is
            // harmless.
            self.shard(fp).write().insert(fp, report.clone());
        }
        if let Some(memo) = &self.persistent {
            // Append failures (disk full, memo deleted under us) cost
            // persistence, never correctness; count them instead of
            // failing the deploy.
            match memo.lock().record(fp, &report) {
                Ok(true) => self.obs.counter("deploy.persistent_stores", 1),
                Ok(false) => {}
                Err(_) => self.obs.counter("deploy.persistent_errors", 1),
            }
        }
        self.obs
            .histogram("deploy.latency_us.backend", t0.elapsed().as_micros() as u64);
        self.record_boundary(t0, &report);
        span.attr("cached", 0u64);
        span.finish();
        (report, false)
    }

    /// Deploys with retries until a non-transient verdict.
    ///
    /// # Retry policy
    ///
    /// A transient failure (`transient/` rule id) is retried up to
    /// [`RetryPolicy::max_attempts`] total attempts; each retry charges the
    /// fault's retry-after hint (throttling) or exponential backoff
    /// (`base_backoff_secs << attempt`) to the simulated-backoff counter.
    /// Any other outcome — success or a deterministic (ground-truth)
    /// failure — returns immediately. The last attempt runs without the
    /// injector, so the loop always terminates with a deterministic verdict.
    fn attempt_loop(&self, program: &Program, fp: u128) -> DeployReport {
        let Some(faults) = &self.cfg.faults else {
            return self.backend.deploy(program);
        };
        let attempts = self.cfg.retry.max_attempts.max(1);
        let mut last = None;
        for attempt in 0..attempts {
            let report = if attempt + 1 == attempts {
                self.backend.deploy(program)
            } else {
                let injector = AttemptInjector::new(faults, fp, attempt);
                self.backend.deploy_with_faults(program, &injector)
            };
            if !report.is_transient_failure() {
                return report;
            }
            self.obs.counter("deploy.transient_failures", 1);
            self.obs.counter("deploy.retries", 1);
            let backoff = if matches!(
                &report.outcome,
                zodiac_cloud::DeployOutcome::Failure { rule_id, .. }
                    if rule_id == "transient/throttled"
            ) {
                faults.retry_after_secs
            } else {
                self.cfg.retry.base_backoff_secs << attempt.min(16)
            };
            self.obs.counter("deploy.backoff_secs", backoff);
            last = Some(report);
        }
        // Unreachable in practice: the final attempt runs fault-free, so the
        // loop always returns from inside. Kept panic-free regardless.
        match last {
            Some(report) => report,
            None => self.backend.deploy(program),
        }
    }
}

impl<B> Drop for DeployEngine<B> {
    fn drop(&mut self) {
        if let Some(memo) = &self.persistent {
            let _ = memo.lock().sync();
        }
    }
}

impl<B: DeployOracle + Sync> DeployOracle for DeployEngine<B> {
    fn deploy(&self, program: &Program) -> DeployReport {
        self.deploy_one(program)
    }

    /// Fans the batch across the worker pool through a bounded request
    /// queue; reports come back in input order.
    fn deploy_batch(&self, programs: &[Program]) -> Vec<DeployReport> {
        self.deploy_batch_annotated(programs)
            .into_iter()
            .map(|(report, _)| report)
            .collect()
    }

    fn deploy_annotated(&self, program: &Program) -> (DeployReport, bool) {
        self.deploy_one_annotated(program)
    }

    fn deploy_batch_annotated(&self, programs: &[Program]) -> Vec<(DeployReport, bool)> {
        let workers = self.cfg.workers.max(1).min(programs.len());
        if workers <= 1 {
            return programs
                .iter()
                .map(|p| self.deploy_one_annotated(p))
                .collect();
        }
        let (job_tx, job_rx) = crossbeam::channel::bounded::<(usize, &Program)>(workers * 2);
        let (res_tx, res_rx) =
            crossbeam::channel::bounded::<(usize, (DeployReport, bool))>(programs.len());
        let mut out: Vec<Option<(DeployReport, bool)>> = vec![None; programs.len()];
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let job_rx = job_rx.clone();
                let res_tx = res_tx.clone();
                scope.spawn(move || {
                    while let Ok((idx, program)) = job_rx.recv() {
                        let report = self.deploy_one_annotated(program);
                        if res_tx.send((idx, report)).is_err() {
                            break;
                        }
                    }
                });
            }
            drop(job_rx);
            drop(res_tx);
            for job in programs.iter().enumerate() {
                // A send can only fail if every worker already exited; any
                // job not handed off is deployed on this thread below.
                if job_tx.send(job).is_err() {
                    break;
                }
                self.obs
                    .gauge_max("deploy.queue_depth.max", job_tx.len() as u64);
            }
            drop(job_tx);
            for (idx, report) in res_rx.iter() {
                out[idx] = Some(report);
            }
        });
        out.into_iter()
            .enumerate()
            .map(|(idx, r)| match r {
                Some(report) => report,
                // Fallback for jobs the pool never reported on.
                None => self.deploy_one_annotated(&programs[idx]),
            })
            .collect()
    }

    fn telemetry(&self) -> Option<MetricsSnapshot> {
        Some(self.metrics())
    }
}
