//! The persistent deploy memo: a cross-process, append-only cache of
//! deploy verdicts.
//!
//! The in-memory memo in [`crate::DeployEngine`] only helps within one
//! process; bench reruns, experiment sweeps, and every `zodiacd` corpus
//! delta re-probe the same test deployments from scratch. This module
//! hoists the daemon check store's log machinery into a deploy-result memo
//! shared across processes and runs (`--deploy-cache PATH`):
//!
//! ```text
//! {"record":"zodiac-deploy-memo","schema":1}          header (first line)
//! {"record":"deploy","fp":"32-hex","report":{...}}    one probed deployment
//! ```
//!
//! Entries are keyed by the canonical program fingerprint
//! ([`crate::fingerprint()`]) — invariant under declaration order — and hold
//! the full [`DeployReport`] JSON, so a hit reproduces the backend verdict
//! exactly.
//!
//! Unlike the check store, the memo is a *cache*, not a ledger: losing the
//! tail of the log only costs re-deploys, never correctness. Appends are
//! therefore single `write(2)`s (immediately visible to other processes)
//! without a per-record fsync; [`DeployMemo::sync`] forces durability at
//! engine shutdown. Crash tolerance mirrors the store: a torn *final* line
//! is dropped and truncated away on open, while a malformed *interior*
//! record — which no crash of this writer can produce — is a hard error.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use zodiac_cloud::DeployReport;

const HEADER: &str = "{\"record\":\"zodiac-deploy-memo\",\"schema\":1}";

/// What [`DeployMemo::open`] found on disk.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MemoLoadReport {
    /// Record lines replayed (header excluded).
    pub records: usize,
    /// Distinct fingerprints after replay.
    pub entries: usize,
    /// Whether a torn final record was dropped and truncated away.
    pub dropped_partial: bool,
}

/// Point-in-time shape of the memo, as printed by
/// `zodiac deploy-cache stats`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MemoStats {
    /// Record lines in the log (duplicates included).
    pub records: usize,
    /// Distinct fingerprints.
    pub entries: usize,
    /// Log size in bytes.
    pub bytes: u64,
}

/// The append-only deploy-verdict memo.
#[derive(Debug)]
pub struct DeployMemo {
    path: PathBuf,
    file: File,
    entries: HashMap<u128, DeployReport>,
    records: usize,
}

impl DeployMemo {
    /// Opens (creating if needed) the memo file and replays it.
    pub fn open(path: &Path) -> Result<(DeployMemo, MemoLoadReport), String> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)
                    .map_err(|e| format!("cannot create {}: {e}", parent.display()))?;
            }
        }
        let mut report = MemoLoadReport::default();
        let mut entries = HashMap::new();
        let mut records = 0usize;

        let existing = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
            Err(e) => return Err(format!("cannot read {}: {e}", path.display())),
        };
        // Byte offset of the end of the last record that parsed, newline
        // included; everything past it is a torn tail to truncate away.
        let mut durable_end = 0usize;
        let mut offset = 0usize;
        let mut lines = existing.split_inclusive('\n').peekable();
        if existing.is_empty() {
            let mut file =
                File::create(path).map_err(|e| format!("cannot create {}: {e}", path.display()))?;
            writeln!(file, "{HEADER}")
                .and_then(|()| file.sync_all())
                .map_err(io_err(path))?;
        } else {
            let header = lines.next().unwrap_or_default();
            if header.trim_end() != HEADER {
                return Err(format!(
                    "{}: not a deploy memo (bad header)",
                    path.display()
                ));
            }
            offset += header.len();
            durable_end = offset;
            while let Some(line) = lines.next() {
                // A record is durable only when its newline made it to
                // disk; a complete-looking final line without one is
                // indistinguishable from a torn write, so it is dropped
                // before replay ever sees it.
                if !line.ends_with('\n') {
                    report.dropped_partial = true;
                    break;
                }
                let last = lines.peek().is_none();
                match Self::replay(line.trim_end_matches('\n'), &mut entries) {
                    Ok(()) => {
                        records += 1;
                        offset += line.len();
                        durable_end = offset;
                    }
                    Err(_) if last => {
                        report.dropped_partial = true;
                        break;
                    }
                    Err(e) => {
                        return Err(format!("{}: corrupt record: {e}", path.display()));
                    }
                }
            }
        }

        let file = OpenOptions::new()
            .append(true)
            .open(path)
            .map_err(|e| format!("cannot append to {}: {e}", path.display()))?;
        if report.dropped_partial {
            file.set_len(durable_end as u64).map_err(io_err(path))?;
            file.sync_all().map_err(io_err(path))?;
        }
        report.records = records;
        report.entries = entries.len();
        let memo = DeployMemo {
            path: path.to_path_buf(),
            file,
            entries,
            records,
        };
        Ok((memo, report))
    }

    /// Applies one parsed record to the entry map.
    fn replay(text: &str, entries: &mut HashMap<u128, DeployReport>) -> Result<(), String> {
        let v: serde::Value = serde_json::from_str(text).map_err(|e| e.to_string())?;
        let kind = v
            .get("record")
            .and_then(serde::Value::as_str)
            .ok_or("missing record kind")?;
        if kind != "deploy" {
            return Err(format!("unknown record kind {kind:?}"));
        }
        let fp = v
            .get("fp")
            .and_then(serde::Value::as_str)
            .and_then(|s| u128::from_str_radix(s, 16).ok())
            .ok_or("missing fp")?;
        let report = v.get("report").ok_or("missing report")?;
        let report =
            serde::Deserialize::deserialize(report).map_err(|e: serde::Error| e.to_string())?;
        // Duplicate fingerprints (concurrent writers racing the same cold
        // probe) replay last-wins; a deterministic backend makes them
        // byte-identical anyway.
        entries.insert(fp, report);
        Ok(())
    }

    /// Looks up a verdict by canonical fingerprint.
    pub fn get(&self, fp: u128) -> Option<&DeployReport> {
        self.entries.get(&fp)
    }

    /// Records a verdict, appending it to the log. Returns `false` (writing
    /// nothing) when the fingerprint is already present.
    pub fn record(&mut self, fp: u128, report: &DeployReport) -> Result<bool, String> {
        if self.entries.contains_key(&fp) {
            return Ok(false);
        }
        let line = record_line(fp, report);
        let mut buf = String::with_capacity(line.len() + 1);
        buf.push_str(&line);
        buf.push('\n');
        self.file
            .write_all(buf.as_bytes())
            .map_err(io_err(&self.path))?;
        self.records += 1;
        self.entries.insert(fp, report.clone());
        Ok(true)
    }

    /// Forces all appended records to stable storage.
    pub fn sync(&self) -> Result<(), String> {
        self.file.sync_all().map_err(io_err(&self.path))
    }

    /// Number of distinct fingerprints.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the memo holds no verdicts.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The memo's shape: records, entries, file size.
    pub fn stats(&self) -> MemoStats {
        MemoStats {
            records: self.records,
            entries: self.entries.len(),
            bytes: std::fs::metadata(&self.path).map(|m| m.len()).unwrap_or(0),
        }
    }

    /// Rewrites the log to one record per distinct fingerprint (in
    /// fingerprint order), via a temp file renamed into place.
    pub fn compact(&mut self) -> Result<(), String> {
        let tmp_path = self.path.with_extension("memo.tmp");
        {
            let mut tmp = File::create(&tmp_path).map_err(io_err(&tmp_path))?;
            let mut buf = String::new();
            buf.push_str(HEADER);
            buf.push('\n');
            let mut fps: Vec<u128> = self.entries.keys().copied().collect();
            fps.sort_unstable();
            for fp in fps {
                buf.push_str(&record_line(fp, &self.entries[&fp]));
                buf.push('\n');
            }
            tmp.write_all(buf.as_bytes())
                .and_then(|()| tmp.sync_all())
                .map_err(io_err(&tmp_path))?;
        }
        std::fs::rename(&tmp_path, &self.path).map_err(io_err(&self.path))?;
        self.file = OpenOptions::new()
            .append(true)
            .open(&self.path)
            .map_err(io_err(&self.path))?;
        self.records = self.entries.len();
        Ok(())
    }

    /// Path of the memo file.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

fn record_line(fp: u128, report: &DeployReport) -> String {
    let mut m = serde::Map::new();
    m.insert("record".into(), serde::Value::String("deploy".into()));
    m.insert("fp".into(), serde::Value::String(format!("{fp:032x}")));
    m.insert("report".into(), serde::Serialize::serialize(report));
    serde::Value::Object(m).to_string()
}

fn io_err(path: &Path) -> impl Fn(std::io::Error) -> String + '_ {
    move |e| format!("{}: {e}", path.display())
}

#[cfg(test)]
mod tests {
    use super::*;
    use zodiac_cloud::{DeployOutcome, Phase};
    use zodiac_model::ResourceId;

    fn temp_memo(tag: &str) -> PathBuf {
        let path = std::env::temp_dir().join(format!(
            "zodiac-deploy-memo-{tag}-{}.log",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        path
    }

    fn report(i: usize) -> DeployReport {
        if i.is_multiple_of(2) {
            DeployReport {
                outcome: DeployOutcome::Success,
                deployed: vec![ResourceId::new("azurerm_virtual_network", format!("v{i}"))],
                halted: Vec::new(),
                rollback: Vec::new(),
                violations: Vec::new(),
            }
        } else {
            DeployReport {
                outcome: DeployOutcome::Failure {
                    phase: Phase::SendingRequest,
                    rule_id: format!("ground/rule-{i}"),
                    resource: format!("azurerm_subnet.s{i}"),
                    message: "CIDR overlaps".into(),
                },
                deployed: Vec::new(),
                halted: vec![ResourceId::new("azurerm_subnet", format!("s{i}"))],
                rollback: Vec::new(),
                violations: Vec::new(),
            }
        }
    }

    #[test]
    fn round_trips_reports_across_reopen() {
        let path = temp_memo("roundtrip");
        {
            let (mut memo, load) = DeployMemo::open(&path).unwrap();
            assert_eq!(load, MemoLoadReport::default());
            for i in 0..4u128 {
                assert!(memo.record(i, &report(i as usize)).unwrap());
            }
            assert!(!memo.record(2, &report(2)).unwrap(), "dedup by fp");
        }
        let (memo, load) = DeployMemo::open(&path).unwrap();
        assert!(!load.dropped_partial);
        assert_eq!(load.records, 4);
        assert_eq!(load.entries, 4);
        for i in 0..4u128 {
            assert_eq!(memo.get(i), Some(&report(i as usize)));
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn compaction_drops_duplicate_records() {
        let path = temp_memo("compact");
        let (mut memo, _) = DeployMemo::open(&path).unwrap();
        for i in 0..3u128 {
            memo.record(i, &report(i as usize)).unwrap();
        }
        // A racing second writer can append a duplicate line; simulate one.
        let mut dup = OpenOptions::new().append(true).open(&path).unwrap();
        writeln!(dup, "{}", record_line(1, &report(1))).unwrap();
        drop(dup);
        drop(memo);
        let (mut memo, load) = DeployMemo::open(&path).unwrap();
        assert_eq!(load.records, 4);
        assert_eq!(load.entries, 3);
        memo.compact().unwrap();
        assert_eq!(memo.stats().records, 3);
        drop(memo);
        let (memo, load) = DeployMemo::open(&path).unwrap();
        assert_eq!(load.records, 3);
        assert_eq!(memo.len(), 3);
        let _ = std::fs::remove_file(&path);
    }
}
