//! The `zodiacd` daemon binary.
//!
//! ```text
//! zodiacd --store DIR [--checks FILE] [--socket PATH] [--oneshot]
//!         [--min-support N] [--min-confidence F] [--trace-out FILE]
//! ```
//!
//! Serves the line-delimited JSON protocol (see `zodiac client --help` or
//! DESIGN.md "Serving architecture") over a Unix domain socket at
//! `--socket PATH` (default `DIR/zodiacd.sock`), or over stdin/stdout with
//! `--oneshot`.

use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use zodiac_daemon::{http, server, Daemon, DaemonConfig};
use zodiac_obs::{CountingAlloc, JsonLinesSink, Obs, Recorder};

/// Counting allocator so live/peak heap bytes are first-class telemetry
/// (`heap.live_bytes` / `heap.peak_bytes` gauges in `/metrics` and
/// `zodiac top`). Two relaxed atomics per alloc — noise on the hot path.
#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

const USAGE: &str = "zodiacd — serve validated semantic checks over a Unix domain socket

USAGE:
    zodiacd --store DIR [OPTIONS]

OPTIONS:
    --store DIR          persistent check-store directory (required; created
                         if missing, replayed if present)
    --checks FILE        import validated checks (one per line, as written
                         by `zodiac mine --out`) before serving; idempotent
    --socket PATH        Unix socket path (default DIR/zodiacd.sock)
    --oneshot            serve stdin/stdout instead of a socket, exit at EOF
    --min-support N      re-mining support threshold (default 4)
    --min-confidence F   re-mining confidence threshold (default 0.92)
    --shards N|auto      worker threads for observing large delta upserts
                         (default 1; never changes the mined set)
    --revalidate         deploy-validate freshly mined checks before
                         admitting them on a corpus delta
    --deploy-cache FILE  persistent deploy memo for re-validation probes,
                         shared with `zodiac --deploy-cache` runs
    --trace-out FILE     stream lifecycle events (served verdicts) as JSON
                         lines, readable by `zodiac explain --trace`
    --metrics-listen ADDR
                         serve `GET /metrics` (Prometheus text) and
                         `GET /healthz` (readiness) over HTTP on ADDR,
                         e.g. 127.0.0.1:9464 (port 0 picks a free port;
                         the resolved address is printed on stderr)

Interact with a running daemon via `zodiac client`; watch it live with
`zodiac top`.";

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn take_flag(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let idx = args.iter().position(|a| a == flag)?;
    if idx + 1 >= args.len() {
        return None;
    }
    let value = args.remove(idx + 1);
    args.remove(idx);
    Some(value)
}

fn take_switch(args: &mut Vec<String>, switch: &str) -> bool {
    match args.iter().position(|a| a == switch) {
        Some(idx) => {
            args.remove(idx);
            true
        }
        None => false,
    }
}

fn run() -> Result<(), String> {
    CountingAlloc::set_global(&ALLOC);
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if take_switch(&mut args, "--help") || take_switch(&mut args, "-h") {
        println!("{USAGE}");
        return Ok(());
    }
    let store_dir = PathBuf::from(
        take_flag(&mut args, "--store").ok_or(format!("zodiacd requires --store DIR\n{USAGE}"))?,
    );
    let checks_file = take_flag(&mut args, "--checks");
    let socket = take_flag(&mut args, "--socket").map(PathBuf::from);
    let oneshot = take_switch(&mut args, "--oneshot");
    let trace_out = take_flag(&mut args, "--trace-out");
    let metrics_listen = take_flag(&mut args, "--metrics-listen");
    let mut cfg = DaemonConfig::default();
    if let Some(v) = take_flag(&mut args, "--min-support") {
        cfg.mining.min_support = v
            .parse()
            .map_err(|_| "--min-support expects a number".to_string())?;
    }
    if let Some(v) = take_flag(&mut args, "--min-confidence") {
        cfg.mining.min_confidence = v
            .parse()
            .map_err(|_| "--min-confidence expects a number".to_string())?;
    }
    cfg.revalidate = take_switch(&mut args, "--revalidate");
    cfg.deploy_cache = take_flag(&mut args, "--deploy-cache").map(PathBuf::from);
    if let Some(v) = take_flag(&mut args, "--shards") {
        cfg.mining_shards = match v.as_str() {
            "auto" => zodiac_mining::available_shards(),
            _ => v
                .parse()
                .map_err(|_| "--shards expects a number or 'auto'".to_string())?,
        };
    }
    if let Some(unknown) = args.first() {
        return Err(format!("unknown flag: {unknown}\n{USAGE}"));
    }

    let trace = match &trace_out {
        Some(path) => Some(Arc::new(
            JsonLinesSink::create(path).map_err(|e| format!("cannot create {path}: {e}"))?,
        )),
        None => None,
    };
    let obs = match &trace {
        Some(sink) => Obs::single(sink.clone() as Arc<dyn Recorder>),
        None => Obs::null(),
    };

    let (daemon, report) = Daemon::open(&store_dir, cfg, obs)?;
    eprintln!(
        "zodiacd: store {} — {} live check(s) replayed{}",
        store_dir.display(),
        report.live,
        if report.dropped_partial {
            " (torn final record dropped)"
        } else {
            ""
        }
    );
    if let Some(path) = &checks_file {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let mut checks = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            checks.push(
                zodiac_spec::parse_check(line)
                    .map_err(|e| format!("{path}:{}: {e}", lineno + 1))?,
            );
        }
        let added = daemon.import_checks(&checks)?;
        eprintln!(
            "zodiacd: imported {added} new check(s) from {path} ({} total live)",
            daemon.snapshot().len()
        );
    }

    let daemon = Arc::new(daemon);
    // Store recovered and initial import published: the daemon is ready to
    // answer with a consistent check set. `/healthz` flips here.
    daemon.set_ready();

    let metrics_thread = match &metrics_listen {
        Some(addr) => {
            let listener = std::net::TcpListener::bind(addr)
                .map_err(|e| format!("cannot bind metrics endpoint {addr}: {e}"))?;
            let resolved = listener
                .local_addr()
                .map_err(|e| format!("metrics endpoint: {e}"))?;
            eprintln!("zodiacd: metrics on http://{resolved}/metrics");
            let daemon = daemon.clone();
            Some(std::thread::spawn(move || {
                if let Err(e) = http::serve_http(daemon, listener) {
                    eprintln!("zodiacd: metrics endpoint failed: {e}");
                }
            }))
        }
        None => None,
    };

    if oneshot {
        let stdin = std::io::stdin();
        let stdout = std::io::stdout();
        server::serve_lines(&daemon, stdin.lock(), stdout.lock())
            .map_err(|e| format!("oneshot serving failed: {e}"))?;
    } else {
        let socket = socket.unwrap_or_else(|| store_dir.join("zodiacd.sock"));
        eprintln!("zodiacd: listening on {}", socket.display());
        server::serve_uds(daemon.clone(), &socket).map_err(|e| format!("serving failed: {e}"))?;
        eprintln!("zodiacd: shut down");
    }
    if let Some(t) = metrics_thread {
        // The HTTP loop polls the shutdown flag; make sure it sees it even
        // when we leave via oneshot EOF rather than a shutdown request.
        daemon.request_shutdown();
        let _ = t.join();
    }
    if let Some(sink) = &trace {
        sink.flush()
            .map_err(|e| format!("cannot flush trace file: {e}"))?;
    }
    Ok(())
}
