//! The persistent check store: an append-only log of validated checks.
//!
//! `zodiacd` must survive `kill -9` and restart serving the same check
//! set, so every mutation is one JSON line appended and fsynced before the
//! daemon acknowledges it. The log holds three record kinds:
//!
//! ```text
//! {"record":"zodiacd-store","schema":1}              header (first line)
//! {"record":"check","seq":N,"fp":"16-hex", ...}      a check entered service
//! {"record":"retire","seq":N,"fp":"16-hex"}          a check left service
//! ```
//!
//! Checks are keyed by [`zodiac_spec::Check::fingerprint`] — the 64-bit
//! FNV-1a hash of the canonical form — and stored as canonical-form text
//! snapshots, so a record is self-verifying: on load the text is re-parsed
//! and re-fingerprinted, and a mismatch is corruption, not a quiet skip.
//!
//! Crash tolerance is asymmetric by design: a torn *final* record (the
//! write that was in flight when the process died) is dropped and the file
//! truncated back to the last durable record, while a malformed record in
//! the *interior* of the log — which no crash of this writer can produce —
//! is a hard error.

use serde::{Map, Value};
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use zodiac_spec::{parse_check, Check};

/// File name of the log inside the store directory.
pub const LOG_NAME: &str = "checks.log";
const HEADER: &str = "{\"record\":\"zodiacd-store\",\"schema\":1}";

/// Where a stored check came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Origin {
    /// Loaded from a validated-checks file at startup (`--checks`).
    Imported,
    /// Produced by the incremental re-mining engine from a corpus delta.
    Mined,
}

impl Origin {
    /// Stable lowercase wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            Origin::Imported => "imported",
            Origin::Mined => "mined",
        }
    }

    fn parse(s: &str) -> Option<Origin> {
        match s {
            "imported" => Some(Origin::Imported),
            "mined" => Some(Origin::Mined),
            _ => None,
        }
    }
}

/// One live check in the store: the canonical snapshot plus the mining
/// provenance that `explain` serves.
#[derive(Debug, Clone, PartialEq)]
pub struct StoredCheck {
    /// Log sequence number of the record that admitted this check.
    pub seq: u64,
    /// The check itself.
    pub check: Check,
    /// How the check entered the store.
    pub origin: Origin,
    /// Template family (`imported` for file-loaded checks).
    pub family: String,
    /// Association-rule support at admission time.
    pub support: u64,
    /// Association-rule confidence in parts-per-million.
    pub confidence_ppm: u64,
}

impl StoredCheck {
    /// The check's canonical 64-bit fingerprint.
    pub fn fingerprint(&self) -> u64 {
        self.check.fingerprint()
    }

    fn to_line(&self) -> String {
        let mut m = Map::new();
        m.insert("record".into(), Value::String("check".into()));
        m.insert("seq".into(), num(self.seq));
        m.insert(
            "fp".into(),
            Value::String(format!("{:016x}", self.fingerprint())),
        );
        m.insert("check".into(), Value::String(self.check.to_string()));
        m.insert("origin".into(), Value::String(self.origin.as_str().into()));
        m.insert("family".into(), Value::String(self.family.clone()));
        m.insert("support".into(), num(self.support));
        m.insert("confidence_ppm".into(), num(self.confidence_ppm));
        Value::Object(m).to_string()
    }
}

fn num(n: u64) -> Value {
    Value::Number(serde::Number::from_u64(n))
}

/// What [`CheckStore::open`] found on disk.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LoadReport {
    /// Records replayed (header excluded).
    pub records: usize,
    /// Live checks after replay.
    pub live: usize,
    /// Whether a torn final record was dropped and truncated away.
    pub dropped_partial: bool,
}

/// The append-only check store.
#[derive(Debug)]
pub struct CheckStore {
    path: PathBuf,
    file: File,
    live: BTreeMap<u64, StoredCheck>,
    seq: u64,
    /// Total check+retire records in the log, live or not — the compaction
    /// trigger compares this against `live.len()`.
    records: usize,
}

impl CheckStore {
    /// Opens (creating if needed) the store under `dir` and replays the
    /// log.
    pub fn open(dir: &Path) -> Result<(CheckStore, LoadReport), String> {
        std::fs::create_dir_all(dir)
            .map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
        let path = dir.join(LOG_NAME);
        let mut report = LoadReport::default();
        let mut live = BTreeMap::new();
        let mut seq = 0u64;
        let mut records = 0usize;

        let existing = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
            Err(e) => return Err(format!("cannot read {}: {e}", path.display())),
        };
        // Byte offset of the end of the last record that parsed, newline
        // included; everything past it is a torn tail to truncate away.
        let mut durable_end = 0usize;
        let mut offset = 0usize;
        let mut lines = existing.split_inclusive('\n').peekable();
        if existing.is_empty() {
            let mut file = File::create(&path)
                .map_err(|e| format!("cannot create {}: {e}", path.display()))?;
            writeln!(file, "{HEADER}")
                .and_then(|()| file.sync_all())
                .map_err(io_err(&path))?;
        } else {
            let header = lines.next().unwrap_or_default();
            if header.trim_end() != HEADER {
                return Err(format!(
                    "{}: not a zodiacd store (bad header)",
                    path.display()
                ));
            }
            offset += header.len();
            durable_end = offset;
            while let Some(line) = lines.next() {
                // A record is durable only when its newline made it to
                // disk; a complete-looking final line without one is
                // indistinguishable from a torn write, so it is dropped
                // before replay ever sees it.
                if !line.ends_with('\n') {
                    report.dropped_partial = true;
                    break;
                }
                let last = lines.peek().is_none();
                match Self::replay(line.trim_end_matches('\n'), &mut live) {
                    Ok(record_seq) => {
                        seq = seq.max(record_seq);
                        records += 1;
                        offset += line.len();
                        durable_end = offset;
                    }
                    Err(_) if last => {
                        report.dropped_partial = true;
                        break;
                    }
                    Err(e) => {
                        return Err(format!("{}: corrupt record: {e}", path.display()));
                    }
                }
            }
        }

        let file = OpenOptions::new()
            .append(true)
            .open(&path)
            .map_err(|e| format!("cannot append to {}: {e}", path.display()))?;
        if report.dropped_partial {
            file.set_len(durable_end as u64).map_err(io_err(&path))?;
            file.sync_all().map_err(io_err(&path))?;
        }
        report.records = records;
        report.live = live.len();
        let store = CheckStore {
            path,
            file,
            live,
            seq,
            records,
        };
        Ok((store, report))
    }

    /// Applies one parsed record to the live map, returning its seq.
    fn replay(text: &str, live: &mut BTreeMap<u64, StoredCheck>) -> Result<u64, String> {
        let v: Value = serde_json::from_str(text).map_err(|e| e.to_string())?;
        let kind = v
            .get("record")
            .and_then(Value::as_str)
            .ok_or("missing record kind")?;
        let seq = v.get("seq").and_then(Value::as_u64).ok_or("missing seq")?;
        let fp = v
            .get("fp")
            .and_then(Value::as_str)
            .and_then(|s| u64::from_str_radix(s, 16).ok())
            .ok_or("missing fp")?;
        match kind {
            "check" => {
                let text = v
                    .get("check")
                    .and_then(Value::as_str)
                    .ok_or("missing check")?;
                let check = parse_check(text).map_err(|e| format!("unparseable check: {e}"))?;
                if check.fingerprint() != fp {
                    return Err(format!(
                        "fingerprint mismatch: stored {fp:016x}, computed {:016x}",
                        check.fingerprint()
                    ));
                }
                let origin = v
                    .get("origin")
                    .and_then(Value::as_str)
                    .and_then(Origin::parse)
                    .ok_or("missing origin")?;
                live.insert(
                    fp,
                    StoredCheck {
                        seq,
                        check,
                        origin,
                        family: v
                            .get("family")
                            .and_then(Value::as_str)
                            .unwrap_or_default()
                            .to_string(),
                        support: v.get("support").and_then(Value::as_u64).unwrap_or(0),
                        confidence_ppm: v
                            .get("confidence_ppm")
                            .and_then(Value::as_u64)
                            .unwrap_or(0),
                    },
                );
                Ok(seq)
            }
            "retire" => {
                live.remove(&fp);
                Ok(seq)
            }
            other => Err(format!("unknown record kind {other:?}")),
        }
    }

    /// Admits a check, assigning it the next sequence number. The record is
    /// fsynced before this returns. Re-admitting a live fingerprint
    /// replaces its provenance.
    pub fn admit(
        &mut self,
        check: Check,
        origin: Origin,
        family: &str,
        support: u64,
        confidence_ppm: u64,
    ) -> Result<u64, String> {
        self.seq += 1;
        let stored = StoredCheck {
            seq: self.seq,
            check,
            origin,
            family: family.to_string(),
            support,
            confidence_ppm,
        };
        self.write_line(&stored.to_line())?;
        self.records += 1;
        self.live.insert(stored.fingerprint(), stored);
        Ok(self.seq)
    }

    /// Retires a live check by fingerprint. Returns false (writing
    /// nothing) when the fingerprint is not live.
    pub fn retire(&mut self, fp: u64) -> Result<bool, String> {
        if !self.live.contains_key(&fp) {
            return Ok(false);
        }
        self.seq += 1;
        let line = format!(
            "{{\"record\":\"retire\",\"seq\":{},\"fp\":\"{fp:016x}\"}}",
            self.seq
        );
        self.write_line(&line)?;
        self.records += 1;
        self.live.remove(&fp);
        Ok(true)
    }

    fn write_line(&mut self, line: &str) -> Result<(), String> {
        let mut buf = String::with_capacity(line.len() + 1);
        buf.push_str(line);
        buf.push('\n');
        self.file
            .write_all(buf.as_bytes())
            .and_then(|()| self.file.sync_all())
            .map_err(io_err(&self.path))
    }

    /// The live checks, keyed by fingerprint.
    pub fn live(&self) -> &BTreeMap<u64, StoredCheck> {
        &self.live
    }

    /// The live checks in admission (seq) order — the order the daemon
    /// serves them in, which for an imported file is the file's order.
    pub fn live_in_seq_order(&self) -> Vec<&StoredCheck> {
        let mut out: Vec<&StoredCheck> = self.live.values().collect();
        out.sort_by_key(|c| c.seq);
        out
    }

    /// Highest sequence number written — the check-set version the daemon
    /// reports.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Records in the log (live or superseded), header excluded.
    pub fn records(&self) -> usize {
        self.records
    }

    /// Whether enough of the log is dead weight for compaction to pay off.
    pub fn wants_compaction(&self) -> bool {
        self.records > 2 * self.live.len() + 16
    }

    /// Rewrites the log to hold only the live records, byte-for-byte
    /// identical to their original form (same seq numbers), via a temp file
    /// renamed into place.
    pub fn compact(&mut self) -> Result<(), String> {
        let tmp_path = self.path.with_extension("log.tmp");
        {
            let mut tmp = File::create(&tmp_path).map_err(io_err(&tmp_path))?;
            let mut buf = String::new();
            buf.push_str(HEADER);
            buf.push('\n');
            for c in self.live_in_seq_order() {
                buf.push_str(&c.to_line());
                buf.push('\n');
            }
            tmp.write_all(buf.as_bytes())
                .and_then(|()| tmp.sync_all())
                .map_err(io_err(&tmp_path))?;
        }
        std::fs::rename(&tmp_path, &self.path).map_err(io_err(&self.path))?;
        self.file = OpenOptions::new()
            .append(true)
            .open(&self.path)
            .map_err(io_err(&self.path))?;
        self.records = self.live.len();
        Ok(())
    }

    /// Path of the log file.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

fn io_err(path: &Path) -> impl Fn(std::io::Error) -> String + '_ {
    move |e| format!("{}: {e}", path.display())
}
