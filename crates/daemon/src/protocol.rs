//! The line-delimited JSON protocol `zodiacd` speaks.
//!
//! One request per line, one response line per request, over a Unix domain
//! socket (or stdin/stdout in `--oneshot` mode). Requests carry an `"op"`
//! discriminator; responses always carry `"ok"` plus either the op's
//! payload or an `"error"` string. The grammar:
//!
//! ```text
//! request  = scan | repair | delta | list | explain | status | metrics
//!          | shutdown
//! scan     = {"op":"scan", "source":STRING, "format":"tf"|"plan", "id":STRING?}
//! repair   = {"op":"repair", "source":STRING, "format":"tf"|"plan", "id":STRING?,
//!             "max_edits":NUMBER?}
//! delta    = {"op":"submit_corpus_delta",
//!             "upsert":[{"project":STRING,"source":STRING}]?,
//!             "remove":[STRING]?}
//! list     = {"op":"list_checks"}
//! explain  = {"op":"explain", "fp":16-HEX}
//! status   = {"op":"status"}
//! metrics  = {"op":"metrics"}
//! shutdown = {"op":"shutdown"}
//! ```
//!
//! Responses serialise with sorted keys (the compat `Value` object is a
//! `BTreeMap`), so a given daemon state answers a given request with one
//! exact byte string — the property the smoke test's batch-vs-daemon
//! comparison rests on.

use serde::{Map, Number, Value};

/// A parsed request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Scan one program against the current check set.
    Scan {
        /// Client-chosen echo tag (e.g. the file path), echoed back.
        id: Option<String>,
        /// Program text.
        source: String,
        /// `"tf"` (Terraform source) or `"plan"` (`terraform show -json`).
        format: SourceFormat,
    },
    /// Repair one program against the current check set through the
    /// three-layer oracle stack.
    Repair {
        /// Client-chosen echo tag (e.g. the file path), echoed back.
        id: Option<String>,
        /// Program text.
        source: String,
        /// `"tf"` (Terraform source) or `"plan"` (`terraform show -json`).
        format: SourceFormat,
        /// Optional edit budget override.
        max_edits: Option<usize>,
    },
    /// Apply a corpus delta and incrementally re-mine.
    SubmitCorpusDelta {
        /// Projects added or changed: `(project id, Terraform source)`.
        upsert: Vec<(String, String)>,
        /// Project ids removed.
        remove: Vec<String>,
    },
    /// List the live check set.
    ListChecks,
    /// Explain one check by 16-hex fingerprint.
    Explain {
        /// The fingerprint.
        fp: u64,
    },
    /// Serving counters.
    Status,
    /// Full telemetry: metric snapshot, rolling windows, tail exemplars,
    /// and the rendered Prometheus exposition page.
    Metrics,
    /// Graceful shutdown.
    Shutdown,
}

/// Program source encodings accepted by `scan`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SourceFormat {
    /// Terraform HCL source.
    #[default]
    Tf,
    /// `terraform show -json` plan output.
    Plan,
}

impl Request {
    /// Parses one request line.
    pub fn parse(line: &str) -> Result<Request, String> {
        let v: Value = serde_json::from_str(line).map_err(|e| format!("bad json: {e}"))?;
        let op = v
            .get("op")
            .and_then(Value::as_str)
            .ok_or("missing \"op\"")?;
        match op {
            "scan" => {
                let source = v
                    .get("source")
                    .and_then(Value::as_str)
                    .ok_or("scan: missing \"source\"")?
                    .to_string();
                let format = match v.get("format").and_then(Value::as_str) {
                    None | Some("tf") => SourceFormat::Tf,
                    Some("plan") => SourceFormat::Plan,
                    Some(other) => return Err(format!("scan: unknown format {other:?}")),
                };
                Ok(Request::Scan {
                    id: v.get("id").and_then(Value::as_str).map(String::from),
                    source,
                    format,
                })
            }
            "repair" => {
                let source = v
                    .get("source")
                    .and_then(Value::as_str)
                    .ok_or("repair: missing \"source\"")?
                    .to_string();
                let format = match v.get("format").and_then(Value::as_str) {
                    None | Some("tf") => SourceFormat::Tf,
                    Some("plan") => SourceFormat::Plan,
                    Some(other) => return Err(format!("repair: unknown format {other:?}")),
                };
                let max_edits = match v.get("max_edits") {
                    None => None,
                    Some(n) => Some(
                        n.as_u64()
                            .filter(|&n| n >= 1)
                            .ok_or("repair: \"max_edits\" must be a number >= 1")?
                            as usize,
                    ),
                };
                Ok(Request::Repair {
                    id: v.get("id").and_then(Value::as_str).map(String::from),
                    source,
                    format,
                    max_edits,
                })
            }
            "submit_corpus_delta" => {
                let mut upsert = Vec::new();
                if let Some(items) = v.get("upsert").and_then(Value::as_array) {
                    for item in items {
                        let project = item
                            .get("project")
                            .and_then(Value::as_str)
                            .ok_or("delta: upsert entry missing \"project\"")?;
                        let source = item
                            .get("source")
                            .and_then(Value::as_str)
                            .ok_or("delta: upsert entry missing \"source\"")?;
                        upsert.push((project.to_string(), source.to_string()));
                    }
                }
                let mut remove = Vec::new();
                if let Some(items) = v.get("remove").and_then(Value::as_array) {
                    for item in items {
                        remove.push(
                            item.as_str()
                                .ok_or("delta: remove entries must be strings")?
                                .to_string(),
                        );
                    }
                }
                Ok(Request::SubmitCorpusDelta { upsert, remove })
            }
            "list_checks" => Ok(Request::ListChecks),
            "explain" => {
                let fp = v
                    .get("fp")
                    .and_then(Value::as_str)
                    .and_then(|s| u64::from_str_radix(s, 16).ok())
                    .ok_or("explain: \"fp\" must be a hex fingerprint string")?;
                Ok(Request::Explain { fp })
            }
            "status" => Ok(Request::Status),
            "metrics" => Ok(Request::Metrics),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(format!("unknown op {other:?}")),
        }
    }

    /// The wire name of this request's op — the label used for per-op
    /// latency windows (`op.<name>.us`) and exemplar reservoirs.
    pub fn op_name(&self) -> &'static str {
        match self {
            Request::Scan { .. } => "scan",
            Request::Repair { .. } => "repair",
            Request::SubmitCorpusDelta { .. } => "submit_corpus_delta",
            Request::ListChecks => "list_checks",
            Request::Explain { .. } => "explain",
            Request::Status => "status",
            Request::Metrics => "metrics",
            Request::Shutdown => "shutdown",
        }
    }

    /// The trace span path for serving this request. Static (the op set is
    /// closed) so starting the per-request span allocates nothing, and
    /// per-op so span histograms separate without a dynamic attribute.
    pub fn span_path(&self) -> &'static str {
        match self {
            Request::Scan { .. } => "daemon/request/scan",
            Request::Repair { .. } => "daemon/request/repair",
            Request::SubmitCorpusDelta { .. } => "daemon/request/submit_corpus_delta",
            Request::ListChecks => "daemon/request/list_checks",
            Request::Explain { .. } => "daemon/request/explain",
            Request::Status => "daemon/request/status",
            Request::Metrics => "daemon/request/metrics",
            Request::Shutdown => "daemon/request/shutdown",
        }
    }

    /// The serving-boundary metric names for this request:
    /// `(op.<name>.us, op.<name>.errors)`. Static for the same reason as
    /// [`Request::span_path`] — the boundary fires on every request.
    pub fn boundary_metrics(&self) -> (&'static str, &'static str) {
        match self {
            Request::Scan { .. } => ("op.scan.us", "op.scan.errors"),
            Request::Repair { .. } => ("op.repair.us", "op.repair.errors"),
            Request::SubmitCorpusDelta { .. } => {
                ("op.submit_corpus_delta.us", "op.submit_corpus_delta.errors")
            }
            Request::ListChecks => ("op.list_checks.us", "op.list_checks.errors"),
            Request::Explain { .. } => ("op.explain.us", "op.explain.errors"),
            Request::Status => ("op.status.us", "op.status.errors"),
            Request::Metrics => ("op.metrics.us", "op.metrics.errors"),
            Request::Shutdown => ("op.shutdown.us", "op.shutdown.errors"),
        }
    }
}

/// Builder for one response line.
#[derive(Debug, Default)]
pub struct Response(Map<String, Value>);

impl Response {
    /// A successful response for `op`.
    pub fn ok(op: &str) -> Response {
        let mut m = Map::new();
        m.insert("ok".into(), Value::Bool(true));
        m.insert("op".into(), Value::String(op.into()));
        Response(m)
    }

    /// An error response.
    pub fn err(message: &str) -> Response {
        let mut m = Map::new();
        m.insert("ok".into(), Value::Bool(false));
        m.insert("error".into(), Value::String(message.into()));
        Response(m)
    }

    /// Adds a string field.
    pub fn str(mut self, key: &str, value: &str) -> Response {
        self.0.insert(key.into(), Value::String(value.into()));
        self
    }

    /// Adds an integer field.
    pub fn num(mut self, key: &str, value: u64) -> Response {
        self.0
            .insert(key.into(), Value::Number(Number::from_u64(value)));
        self
    }

    /// Adds a boolean field.
    pub fn bool(mut self, key: &str, value: bool) -> Response {
        self.0.insert(key.into(), Value::Bool(value));
        self
    }

    /// Adds an arbitrary field.
    pub fn field(mut self, key: &str, value: Value) -> Response {
        self.0.insert(key.into(), value);
        self
    }

    /// Whether this response reports success (used to derive per-op error
    /// counters at the serving boundary).
    pub fn is_ok(&self) -> bool {
        matches!(self.0.get("ok"), Some(Value::Bool(true)))
    }

    /// Renders the response as one JSON line (no trailing newline).
    pub fn render(self) -> String {
        Value::Object(self.0).to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scan_defaults_to_tf() {
        let r = Request::parse(r#"{"op":"scan","source":"x","id":"a.tf"}"#).unwrap();
        assert_eq!(
            r,
            Request::Scan {
                id: Some("a.tf".into()),
                source: "x".into(),
                format: SourceFormat::Tf
            }
        );
    }

    #[test]
    fn parses_delta_lists() {
        let r = Request::parse(
            r#"{"op":"submit_corpus_delta","upsert":[{"project":"p1","source":"s"}],"remove":["p2"]}"#,
        )
        .unwrap();
        assert_eq!(
            r,
            Request::SubmitCorpusDelta {
                upsert: vec![("p1".into(), "s".into())],
                remove: vec!["p2".into()]
            }
        );
    }

    #[test]
    fn parses_repair_with_optional_edit_budget() {
        let r =
            Request::parse(r#"{"op":"repair","source":"x","id":"a.tf","max_edits":4}"#).unwrap();
        assert_eq!(
            r,
            Request::Repair {
                id: Some("a.tf".into()),
                source: "x".into(),
                format: SourceFormat::Tf,
                max_edits: Some(4)
            }
        );
        let r = Request::parse(r#"{"op":"repair","source":"x"}"#).unwrap();
        assert!(matches!(
            r,
            Request::Repair {
                max_edits: None,
                ..
            }
        ));
        assert!(Request::parse(r#"{"op":"repair","source":"x","max_edits":0}"#).is_err());
    }

    #[test]
    fn rejects_unknown_op_and_bad_fp() {
        assert!(Request::parse(r#"{"op":"frob"}"#).is_err());
        assert!(Request::parse(r#"{"op":"explain","fp":"zz"}"#).is_err());
        assert!(Request::parse("not json").is_err());
    }

    #[test]
    fn responses_render_with_sorted_keys() {
        let line = Response::ok("status").num("scans", 3).render();
        assert_eq!(line, r#"{"ok":true,"op":"status","scans":3}"#);
        let err = Response::err("nope").render();
        assert_eq!(err, r#"{"error":"nope","ok":false}"#);
    }

    #[test]
    fn parses_metrics_op_and_names_every_op() {
        assert_eq!(
            Request::parse(r#"{"op":"metrics"}"#).unwrap(),
            Request::Metrics
        );
        for (line, name) in [
            (r#"{"op":"scan","source":"x"}"#, "scan"),
            (r#"{"op":"repair","source":"x"}"#, "repair"),
            (r#"{"op":"submit_corpus_delta"}"#, "submit_corpus_delta"),
            (r#"{"op":"list_checks"}"#, "list_checks"),
            (r#"{"op":"explain","fp":"00000000000000ff"}"#, "explain"),
            (r#"{"op":"status"}"#, "status"),
            (r#"{"op":"metrics"}"#, "metrics"),
            (r#"{"op":"shutdown"}"#, "shutdown"),
        ] {
            assert_eq!(Request::parse(line).unwrap().op_name(), name);
        }
    }

    #[test]
    fn responses_know_whether_they_succeeded() {
        assert!(Response::ok("scan").is_ok());
        assert!(!Response::err("boom").is_ok());
    }
}
