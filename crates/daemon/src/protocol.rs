//! The line-delimited JSON protocol `zodiacd` speaks.
//!
//! One request per line, one response line per request, over a Unix domain
//! socket (or stdin/stdout in `--oneshot` mode). Requests carry an `"op"`
//! discriminator; responses always carry `"ok"` plus either the op's
//! payload or an `"error"` string. The grammar:
//!
//! ```text
//! request  = scan | repair | delta | list | explain | status | shutdown
//! scan     = {"op":"scan", "source":STRING, "format":"tf"|"plan", "id":STRING?}
//! repair   = {"op":"repair", "source":STRING, "format":"tf"|"plan", "id":STRING?,
//!             "max_edits":NUMBER?}
//! delta    = {"op":"submit_corpus_delta",
//!             "upsert":[{"project":STRING,"source":STRING}]?,
//!             "remove":[STRING]?}
//! list     = {"op":"list_checks"}
//! explain  = {"op":"explain", "fp":16-HEX}
//! status   = {"op":"status"}
//! shutdown = {"op":"shutdown"}
//! ```
//!
//! Responses serialise with sorted keys (the compat `Value` object is a
//! `BTreeMap`), so a given daemon state answers a given request with one
//! exact byte string — the property the smoke test's batch-vs-daemon
//! comparison rests on.

use serde::{Map, Number, Value};

/// A parsed request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Scan one program against the current check set.
    Scan {
        /// Client-chosen echo tag (e.g. the file path), echoed back.
        id: Option<String>,
        /// Program text.
        source: String,
        /// `"tf"` (Terraform source) or `"plan"` (`terraform show -json`).
        format: SourceFormat,
    },
    /// Repair one program against the current check set through the
    /// three-layer oracle stack.
    Repair {
        /// Client-chosen echo tag (e.g. the file path), echoed back.
        id: Option<String>,
        /// Program text.
        source: String,
        /// `"tf"` (Terraform source) or `"plan"` (`terraform show -json`).
        format: SourceFormat,
        /// Optional edit budget override.
        max_edits: Option<usize>,
    },
    /// Apply a corpus delta and incrementally re-mine.
    SubmitCorpusDelta {
        /// Projects added or changed: `(project id, Terraform source)`.
        upsert: Vec<(String, String)>,
        /// Project ids removed.
        remove: Vec<String>,
    },
    /// List the live check set.
    ListChecks,
    /// Explain one check by 16-hex fingerprint.
    Explain {
        /// The fingerprint.
        fp: u64,
    },
    /// Serving counters.
    Status,
    /// Graceful shutdown.
    Shutdown,
}

/// Program source encodings accepted by `scan`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SourceFormat {
    /// Terraform HCL source.
    #[default]
    Tf,
    /// `terraform show -json` plan output.
    Plan,
}

impl Request {
    /// Parses one request line.
    pub fn parse(line: &str) -> Result<Request, String> {
        let v: Value = serde_json::from_str(line).map_err(|e| format!("bad json: {e}"))?;
        let op = v
            .get("op")
            .and_then(Value::as_str)
            .ok_or("missing \"op\"")?;
        match op {
            "scan" => {
                let source = v
                    .get("source")
                    .and_then(Value::as_str)
                    .ok_or("scan: missing \"source\"")?
                    .to_string();
                let format = match v.get("format").and_then(Value::as_str) {
                    None | Some("tf") => SourceFormat::Tf,
                    Some("plan") => SourceFormat::Plan,
                    Some(other) => return Err(format!("scan: unknown format {other:?}")),
                };
                Ok(Request::Scan {
                    id: v.get("id").and_then(Value::as_str).map(String::from),
                    source,
                    format,
                })
            }
            "repair" => {
                let source = v
                    .get("source")
                    .and_then(Value::as_str)
                    .ok_or("repair: missing \"source\"")?
                    .to_string();
                let format = match v.get("format").and_then(Value::as_str) {
                    None | Some("tf") => SourceFormat::Tf,
                    Some("plan") => SourceFormat::Plan,
                    Some(other) => return Err(format!("repair: unknown format {other:?}")),
                };
                let max_edits = match v.get("max_edits") {
                    None => None,
                    Some(n) => Some(
                        n.as_u64()
                            .filter(|&n| n >= 1)
                            .ok_or("repair: \"max_edits\" must be a number >= 1")?
                            as usize,
                    ),
                };
                Ok(Request::Repair {
                    id: v.get("id").and_then(Value::as_str).map(String::from),
                    source,
                    format,
                    max_edits,
                })
            }
            "submit_corpus_delta" => {
                let mut upsert = Vec::new();
                if let Some(items) = v.get("upsert").and_then(Value::as_array) {
                    for item in items {
                        let project = item
                            .get("project")
                            .and_then(Value::as_str)
                            .ok_or("delta: upsert entry missing \"project\"")?;
                        let source = item
                            .get("source")
                            .and_then(Value::as_str)
                            .ok_or("delta: upsert entry missing \"source\"")?;
                        upsert.push((project.to_string(), source.to_string()));
                    }
                }
                let mut remove = Vec::new();
                if let Some(items) = v.get("remove").and_then(Value::as_array) {
                    for item in items {
                        remove.push(
                            item.as_str()
                                .ok_or("delta: remove entries must be strings")?
                                .to_string(),
                        );
                    }
                }
                Ok(Request::SubmitCorpusDelta { upsert, remove })
            }
            "list_checks" => Ok(Request::ListChecks),
            "explain" => {
                let fp = v
                    .get("fp")
                    .and_then(Value::as_str)
                    .and_then(|s| u64::from_str_radix(s, 16).ok())
                    .ok_or("explain: \"fp\" must be a hex fingerprint string")?;
                Ok(Request::Explain { fp })
            }
            "status" => Ok(Request::Status),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(format!("unknown op {other:?}")),
        }
    }
}

/// Builder for one response line.
#[derive(Debug, Default)]
pub struct Response(Map<String, Value>);

impl Response {
    /// A successful response for `op`.
    pub fn ok(op: &str) -> Response {
        let mut m = Map::new();
        m.insert("ok".into(), Value::Bool(true));
        m.insert("op".into(), Value::String(op.into()));
        Response(m)
    }

    /// An error response.
    pub fn err(message: &str) -> Response {
        let mut m = Map::new();
        m.insert("ok".into(), Value::Bool(false));
        m.insert("error".into(), Value::String(message.into()));
        Response(m)
    }

    /// Adds a string field.
    pub fn str(mut self, key: &str, value: &str) -> Response {
        self.0.insert(key.into(), Value::String(value.into()));
        self
    }

    /// Adds an integer field.
    pub fn num(mut self, key: &str, value: u64) -> Response {
        self.0
            .insert(key.into(), Value::Number(Number::from_u64(value)));
        self
    }

    /// Adds a boolean field.
    pub fn bool(mut self, key: &str, value: bool) -> Response {
        self.0.insert(key.into(), Value::Bool(value));
        self
    }

    /// Adds an arbitrary field.
    pub fn field(mut self, key: &str, value: Value) -> Response {
        self.0.insert(key.into(), value);
        self
    }

    /// Renders the response as one JSON line (no trailing newline).
    pub fn render(self) -> String {
        Value::Object(self.0).to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scan_defaults_to_tf() {
        let r = Request::parse(r#"{"op":"scan","source":"x","id":"a.tf"}"#).unwrap();
        assert_eq!(
            r,
            Request::Scan {
                id: Some("a.tf".into()),
                source: "x".into(),
                format: SourceFormat::Tf
            }
        );
    }

    #[test]
    fn parses_delta_lists() {
        let r = Request::parse(
            r#"{"op":"submit_corpus_delta","upsert":[{"project":"p1","source":"s"}],"remove":["p2"]}"#,
        )
        .unwrap();
        assert_eq!(
            r,
            Request::SubmitCorpusDelta {
                upsert: vec![("p1".into(), "s".into())],
                remove: vec!["p2".into()]
            }
        );
    }

    #[test]
    fn parses_repair_with_optional_edit_budget() {
        let r =
            Request::parse(r#"{"op":"repair","source":"x","id":"a.tf","max_edits":4}"#).unwrap();
        assert_eq!(
            r,
            Request::Repair {
                id: Some("a.tf".into()),
                source: "x".into(),
                format: SourceFormat::Tf,
                max_edits: Some(4)
            }
        );
        let r = Request::parse(r#"{"op":"repair","source":"x"}"#).unwrap();
        assert!(matches!(
            r,
            Request::Repair {
                max_edits: None,
                ..
            }
        ));
        assert!(Request::parse(r#"{"op":"repair","source":"x","max_edits":0}"#).is_err());
    }

    #[test]
    fn rejects_unknown_op_and_bad_fp() {
        assert!(Request::parse(r#"{"op":"frob"}"#).is_err());
        assert!(Request::parse(r#"{"op":"explain","fp":"zz"}"#).is_err());
        assert!(Request::parse("not json").is_err());
    }

    #[test]
    fn responses_render_with_sorted_keys() {
        let line = Response::ok("status").num("scans", 3).render();
        assert_eq!(line, r#"{"ok":true,"op":"status","scans":3}"#);
        let err = Response::err("nope").render();
        assert_eq!(err, r#"{"error":"nope","ok":false}"#);
    }
}
