//! Serving loops: Unix domain socket (thread per connection) and the
//! `--oneshot` stdin/stdout mode.
//!
//! Both loops are line-oriented front-ends over [`Daemon::handle_line`];
//! every concurrency concern (snapshot capture, memoization, store
//! locking) lives in the daemon itself, so a connection thread is just
//! read-line → handle → write-line.

use crate::Daemon;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

/// Serves requests from `reader`, answering on `writer`, until EOF or a
/// `shutdown` request. This is `--oneshot` mode, and also the per-connection
/// loop of the socket server.
pub fn serve_lines(
    daemon: &Daemon,
    reader: impl BufRead,
    mut writer: impl Write,
) -> std::io::Result<()> {
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let response = daemon.handle_line(&line);
        writer.write_all(response.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
        if daemon.is_shutdown() {
            break;
        }
    }
    Ok(())
}

/// Binds `path` and serves until a `shutdown` request. Removes a stale
/// socket file first and cleans it up on exit; connection threads are
/// joined before returning, so a `shutdown` acknowledgement implies all
/// in-flight responses were written.
pub fn serve_uds(daemon: Arc<Daemon>, path: &Path) -> std::io::Result<()> {
    match std::fs::remove_file(path) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
        Err(e) => return Err(e),
    }
    let listener = UnixListener::bind(path)?;
    // Nonblocking accept + poll keeps shutdown purely cooperative: no
    // self-connect wakeups, no signal handling.
    listener.set_nonblocking(true)?;
    let mut workers = Vec::new();
    while !daemon.is_shutdown() {
        match listener.accept() {
            Ok((stream, _)) => {
                stream.set_nonblocking(false)?;
                let daemon = daemon.clone();
                workers.push(std::thread::spawn(move || {
                    let _ = serve_connection(&daemon, stream);
                }));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) => {
                let _ = std::fs::remove_file(path);
                return Err(e);
            }
        }
        workers.retain(|w| !w.is_finished());
    }
    for w in workers {
        let _ = w.join();
    }
    let _ = std::fs::remove_file(path);
    Ok(())
}

fn serve_connection(daemon: &Daemon, stream: UnixStream) -> std::io::Result<()> {
    let reader = BufReader::new(stream.try_clone()?);
    serve_lines(daemon, reader, stream)
}
