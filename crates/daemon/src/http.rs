//! The metrics TCP endpoint: a deliberately tiny HTTP/1.x responder for
//! `GET /metrics` (Prometheus exposition) and `GET /healthz` (readiness).
//!
//! Scrapers speak plain HTTP/1.1 with no exotic features, so this is a
//! request-line parser plus a header drain — no external dependencies, no
//! keep-alive (every response closes the connection, which Prometheus
//! handles fine and which keeps the loop identical in shape to the UDS
//! server: nonblocking accept, cooperative shutdown, worker join).
//!
//! Readiness semantics: `/healthz` answers `503 starting` until
//! [`Daemon::set_ready`] ran (store recovered + initial check import
//! published), then `200 ok`. `/metrics` serves at any time — partial
//! telemetry during start-up is better than none.

use crate::Daemon;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

/// Serves HTTP on an already-bound listener until daemon shutdown. Bind
/// first, then spawn this on a thread — binding in the caller lets the
/// binary print the resolved address (port 0 is useful in tests/CI).
pub fn serve_http(daemon: Arc<Daemon>, listener: TcpListener) -> std::io::Result<()> {
    listener.set_nonblocking(true)?;
    let mut workers = Vec::new();
    while !daemon.is_shutdown() {
        match listener.accept() {
            Ok((stream, _)) => {
                stream.set_nonblocking(false)?;
                let daemon = daemon.clone();
                workers.push(std::thread::spawn(move || {
                    let _ = serve_connection(&daemon, stream);
                }));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) => return Err(e),
        }
        workers.retain(|w| !w.is_finished());
    }
    for w in workers {
        let _ = w.join();
    }
    Ok(())
}

fn serve_connection(daemon: &Daemon, stream: TcpStream) -> std::io::Result<()> {
    // A scraper that stalls mid-request must not pin a worker forever.
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut request_line = String::new();
    if reader.read_line(&mut request_line)? == 0 {
        return Ok(());
    }
    // Drain headers; this server ignores them all.
    let mut header = String::new();
    loop {
        header.clear();
        let n = reader.read_line(&mut header)?;
        if n == 0 || header == "\r\n" || header == "\n" {
            break;
        }
    }
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("/");
    let (status, content_type, body) = respond(daemon, method, path);
    daemon.obs().counter("daemon.http_requests", 1);
    write_response(stream, status, content_type, &body)
}

fn respond(daemon: &Daemon, method: &str, path: &str) -> (&'static str, &'static str, String) {
    if method != "GET" {
        return (
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            "method not allowed\n".into(),
        );
    }
    match path {
        "/metrics" => (
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            daemon.metrics_page(),
        ),
        "/healthz" => {
            if daemon.is_ready() {
                ("200 OK", "text/plain; charset=utf-8", "ok\n".into())
            } else {
                (
                    "503 Service Unavailable",
                    "text/plain; charset=utf-8",
                    "starting\n".into(),
                )
            }
        }
        _ => (
            "404 Not Found",
            "text/plain; charset=utf-8",
            "not found\n".into(),
        ),
    }
}

fn write_response(
    mut stream: TcpStream,
    status: &str,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}
