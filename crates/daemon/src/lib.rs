//! # zodiacd — the check-serving daemon
//!
//! The batch pipeline (`zodiac mine` → `zodiac scan`) treats check mining
//! as a one-shot job. This crate turns the validated check set into a
//! long-running service:
//!
//! * a **persistent check store** ([`store`]) — an append-only, fsynced
//!   log of canonical-form check snapshots keyed by
//!   [`zodiac_spec::Check::fingerprint`], replayed on start and compacted
//!   when mostly dead;
//! * an **incremental re-mining engine** — corpus deltas (project
//!   added/removed/changed) feed a [`zodiac_mining::IncrementalStats`], and
//!   only templates anchored on resource types whose supporting projects
//!   changed are re-scored ([`zodiac_mining::mine_types_with_stats`]);
//! * a **concurrent scan API** ([`protocol`], [`server`]) — LDJSON over a
//!   Unix domain socket, with verdicts memoized in a
//!   [`zodiac::ScanCache`] keyed by (canonical program fingerprint,
//!   check-set key).
//!
//! Check-set swaps are atomic: the daemon publishes immutable
//! [`CheckSet`] snapshots behind an `RwLock<Arc<..>>`, so an in-flight
//! scan holds one consistent set end-to-end and never observes a
//! half-applied delta.

pub mod http;
pub mod protocol;
pub mod server;
pub mod store;

use protocol::{Request, Response, SourceFormat};
use serde::Value;
use std::collections::{BTreeMap, HashMap};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError, RwLock};
use store::{CheckStore, LoadReport, Origin, StoredCheck};
use zodiac::{check_set_key, ScanCache};
use zodiac_kb::KnowledgeBase;
use zodiac_mining::{mine_types_with_stats, IncrementalStats, MinedCheck, MiningConfig};
use zodiac_model::{Program, Symbol};
use zodiac_obs::{
    render_prometheus, Clock, CountingAlloc, Exemplar, Lifecycle, MemoryRecorder, MonotonicClock,
    Obs, Recorder, RollingRecorder, TailExemplars,
};
use zodiac_spec::Check;

/// Slowest requests retained per op for exemplar replay.
const EXEMPLARS_PER_OP: usize = 8;
/// Check fingerprints retained per exemplar.
const FINGERPRINTS_PER_EXEMPLAR: usize = 8;

/// Daemon configuration.
#[derive(Debug, Clone, Default)]
pub struct DaemonConfig {
    /// Mining thresholds for incremental re-mining. `oracle_noise` must be
    /// zero: a noisy oracle's RNG stream depends on the global candidate
    /// order, which breaks the incremental-equals-batch equivalence.
    pub mining: MiningConfig,
    /// Deploy-validate freshly mined checks against the in-memory corpus
    /// before admitting them: `submit_corpus_delta` only serves checks that
    /// survive the same wave-scheduled validation the batch pipeline runs.
    pub revalidate: bool,
    /// Persistent deploy memo shared with the CLI and benches
    /// ([`zodiac_deployer::DeployMemo`]); re-validation probes recorded
    /// there are reused across deltas and daemon restarts.
    pub deploy_cache: Option<std::path::PathBuf>,
    /// Worker shards for per-project observation when a delta upserts many
    /// projects at once (0 or 1 = on the serving thread). The incremental
    /// database absorbs shard-built observations through the same exact
    /// merge the batch shard driver uses, so this never changes the mined
    /// set.
    pub mining_shards: usize,
}

/// An immutable snapshot of the served check set.
///
/// Scans capture one `Arc<CheckSet>` at request start; delta application
/// builds a complete replacement before swapping it in, so `version`,
/// `key`, and the checks themselves are always mutually consistent.
#[derive(Debug)]
pub struct CheckSet {
    /// Store sequence number at publish time.
    pub version: u64,
    /// Content-based identity ([`zodiac::check_set_key`]) — the memo-cache
    /// key half, so re-publishing an identical set keeps cache hits.
    pub key: u64,
    /// The checks with provenance, in admission order.
    pub entries: Vec<StoredCheck>,
    plain: Vec<Check>,
}

impl CheckSet {
    fn build(store: &CheckStore) -> CheckSet {
        let entries: Vec<StoredCheck> = store.live_in_seq_order().into_iter().cloned().collect();
        let plain: Vec<Check> = entries.iter().map(|c| c.check.clone()).collect();
        CheckSet {
            version: store.seq(),
            key: check_set_key(&plain),
            entries,
            plain,
        }
    }

    /// The bare checks, parallel to `entries`.
    pub fn plain(&self) -> &[Check] {
        &self.plain
    }

    /// Number of live checks.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Compiled programs with their canonical fingerprints, keyed by the
/// request's (format, source text).
type ProgramMemo = HashMap<(SourceFormat, String), (Arc<Program>, u128)>;

/// Session state of the incremental re-mining engine. The corpus lives in
/// memory (deltas are session state; only checks are durable), while the
/// mined check set it maintains is diffed into the store on every delta.
struct Remine {
    stats: IncrementalStats,
    /// Surviving mined checks grouped by anchor type
    /// (`check.bindings[0].rtype`) — the granularity at which deltas
    /// invalidate.
    mined: BTreeMap<Symbol, Vec<MinedCheck>>,
}

/// The daemon: shared state behind the serving loops.
pub struct Daemon {
    kb: KnowledgeBase,
    cfg: DaemonConfig,
    store: Mutex<CheckStore>,
    checks: RwLock<Arc<CheckSet>>,
    cache: ScanCache,
    /// Compile memo: source text → (program, canonical fingerprint).
    /// Compilation is deterministic and check-set independent, so entries
    /// never need invalidating; repeat scans of the same source skip
    /// straight to the fingerprint-keyed verdict cache.
    programs: Mutex<ProgramMemo>,
    remine: Mutex<Remine>,
    obs: Obs,
    /// Cumulative metric registry: every subsystem recording through
    /// [`Daemon::obs`] lands here, so one snapshot covers deploy, mining,
    /// validation, repair, and the daemon's own serving counters.
    registry: Arc<MemoryRecorder>,
    /// Live windows fed by the `op.<name>.us` serving-boundary convention.
    rolling: Arc<RollingRecorder>,
    /// Slowest-N requests per op, replayable via `zodiac explain`.
    exemplars: TailExemplars,
    clock: Arc<dyn Clock>,
    scans: AtomicU64,
    repairs: AtomicU64,
    cache_hits: AtomicU64,
    deltas: AtomicU64,
    ready: AtomicBool,
    shutdown: AtomicBool,
}

impl Daemon {
    /// Opens the store under `dir` (compacting it when mostly garbage) and
    /// builds the serving state.
    pub fn open(dir: &Path, cfg: DaemonConfig, obs: Obs) -> Result<(Daemon, LoadReport), String> {
        if cfg.mining.oracle_noise != 0.0 {
            return Err("incremental re-mining requires oracle_noise = 0".into());
        }
        let (mut store, report) = CheckStore::open(dir)?;
        if store.wants_compaction() {
            store.compact()?;
        }
        let snapshot = Arc::new(CheckSet::build(&store));
        // Operational telemetry: a cumulative registry plus rolling windows
        // join whatever sinks the caller configured (trace files), sharing
        // the caller's trace context so span ids stay coherent.
        let clock: Arc<dyn Clock> = Arc::new(MonotonicClock::new());
        let registry = Arc::new(MemoryRecorder::new());
        let rolling = Arc::new(RollingRecorder::new(clock.clone()));
        let obs = obs
            .with_sink(registry.clone())
            .with_sink(rolling.clone() as Arc<dyn zodiac_obs::Recorder>);
        let daemon = Daemon {
            kb: zodiac_kb::azure_kb(),
            remine: Mutex::new(Remine {
                stats: IncrementalStats::new(cfg.mining.use_kb),
                mined: BTreeMap::new(),
            }),
            cfg,
            store: Mutex::new(store),
            checks: RwLock::new(snapshot),
            cache: ScanCache::new(),
            programs: Mutex::new(HashMap::new()),
            obs,
            registry,
            rolling,
            exemplars: TailExemplars::new(EXEMPLARS_PER_OP),
            clock,
            scans: AtomicU64::new(0),
            repairs: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            deltas: AtomicU64::new(0),
            ready: AtomicBool::new(false),
            shutdown: AtomicBool::new(false),
        };
        Ok((daemon, report))
    }

    /// Imports checks (idempotently) as `origin = imported`, e.g. from a
    /// `zodiac mine` output file at startup. Returns how many were new.
    pub fn import_checks(&self, checks: &[Check]) -> Result<usize, String> {
        let mut store = self.store.lock().unwrap_or_else(PoisonError::into_inner);
        let mut added = 0usize;
        for check in checks {
            if !store.live().contains_key(&check.fingerprint()) {
                store.admit(check.clone(), Origin::Imported, "imported", 0, 0)?;
                added += 1;
            }
        }
        self.publish(&store);
        Ok(added)
    }

    /// The daemon's composed observability handle: the caller's sinks plus
    /// the telemetry registry and rolling windows.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// The current check-set snapshot.
    pub fn snapshot(&self) -> Arc<CheckSet> {
        self.checks
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// Whether a graceful shutdown was requested.
    pub fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Whether the daemon finished start-up (store recovered and any
    /// initial check import applied). `GET /healthz` keys on this.
    pub fn is_ready(&self) -> bool {
        self.ready.load(Ordering::SeqCst)
    }

    /// Marks start-up complete. Called by the binary once the store is
    /// recovered and the initial `--checks` import (if any) has been
    /// published.
    pub fn set_ready(&self) {
        self.ready.store(true, Ordering::SeqCst);
    }

    /// Requests a graceful shutdown of the serving loops.
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    fn publish(&self, store: &CheckStore) {
        let next = Arc::new(CheckSet::build(store));
        *self.checks.write().unwrap_or_else(PoisonError::into_inner) = next;
    }

    /// Handles one request line, returning one response line (no newline).
    pub fn handle_line(&self, line: &str) -> String {
        match Request::parse(line) {
            Ok(req) => self.handle(req).render(),
            Err(e) => Response::err(&e).render(),
        }
    }

    /// Handles one parsed request, timing it at the serving boundary:
    /// every request lands one `op.<name>.us` observation (cumulative
    /// registry + rolling windows), errored responses bump
    /// `op.<name>.errors`, and slow requests enter the exemplar reservoir
    /// with the check fingerprints they touched.
    pub fn handle(&self, req: Request) -> Response {
        let op = req.op_name();
        let (latency_metric, error_metric) = req.boundary_metrics();
        let span = self.obs.start_leaf_span(req.span_path());
        let span_id = span.id();
        let mut touched: Vec<u64> = Vec::new();
        let resp = self.dispatch(req, &mut touched);
        let latency_us = span.elapsed_micros();
        span.finish();
        self.obs.histogram(latency_metric, latency_us);
        if !resp.is_ok() {
            self.obs.counter(error_metric, 1);
        }
        self.exemplars.observe_with(op, latency_us, || {
            touched.truncate(FINGERPRINTS_PER_EXEMPLAR);
            Exemplar {
                latency_us,
                ts_us: self.clock.now_us(),
                span_id,
                fingerprints: touched,
            }
        });
        resp
    }

    /// [`Daemon::handle`] minus the serving-boundary telemetry: no request
    /// span, no `op.<name>.*` observations, no exemplar offer. Exists so
    /// the CI overhead gate (`obs_smoke`) can measure the boundary's cost
    /// A/B within one process; not part of the protocol surface.
    #[doc(hidden)]
    pub fn handle_unmetered(&self, req: Request) -> Response {
        let mut touched: Vec<u64> = Vec::new();
        self.dispatch(req, &mut touched)
    }

    fn dispatch(&self, req: Request, touched: &mut Vec<u64>) -> Response {
        match req {
            Request::Scan { id, source, format } => self.scan(id, &source, format, touched),
            Request::Repair {
                id,
                source,
                format,
                max_edits,
            } => self.repair(id, &source, format, max_edits, touched),
            Request::SubmitCorpusDelta { upsert, remove } => self.delta(upsert, remove),
            Request::ListChecks => self.list_checks(),
            Request::Explain { fp } => {
                touched.push(fp);
                self.explain(fp)
            }
            Request::Status => self.status(),
            Request::Metrics => self.metrics(),
            Request::Shutdown => {
                self.request_shutdown();
                Response::ok("shutdown")
            }
        }
    }

    /// Compiles a request's program through the compile memo.
    fn compile_memoized(
        &self,
        source: &str,
        format: SourceFormat,
    ) -> Result<(Arc<Program>, u128), String> {
        let memo = self
            .programs
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(&(format, source.to_string()))
            .cloned();
        if let Some(hit) = memo {
            return Ok(hit);
        }
        let compiled = match format {
            SourceFormat::Tf => zodiac_hcl::compile(source),
            SourceFormat::Plan => zodiac_hcl::from_plan_json(source),
        };
        let program = match compiled {
            Ok(p) => Arc::new(p),
            Err(e) => return Err(e.to_string()),
        };
        let fp = zodiac_deployer::fingerprint(&program);
        self.programs
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert((format, source.to_string()), (program.clone(), fp));
        Ok((program, fp))
    }

    fn scan(
        &self,
        id: Option<String>,
        source: &str,
        format: SourceFormat,
        touched: &mut Vec<u64>,
    ) -> Response {
        let (program, fp) = match self.compile_memoized(source, format) {
            Ok(hit) => hit,
            Err(e) => return Response::err(&format!("scan: {e}")),
        };
        let snapshot = self.snapshot();
        let (verdict, cached) =
            self.cache
                .scan_fingerprinted(fp, &program, snapshot.plain(), snapshot.key, &self.kb);
        self.scans.fetch_add(1, Ordering::Relaxed);
        self.obs.counter("daemon.scans", 1);
        if cached {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
            self.obs.counter("daemon.cache_hits", 1);
        }
        // Violated-check fingerprints, deduped in check order: the
        // exemplar payload that lets an operator replay a slow scan's
        // causal ledger, and the key of its Served lifecycle events.
        let mut per_check: BTreeMap<usize, u64> = BTreeMap::new();
        for v in verdict.iter() {
            *per_check.entry(v.check_index).or_default() += 1;
        }
        touched.extend(
            per_check
                .keys()
                .map(|idx| snapshot.entries[*idx].fingerprint()),
        );
        if self.obs.is_enabled() {
            // One Served lifecycle event per violated check, so `zodiac
            // explain <fp> --trace` over a daemon trace shows where a
            // validated check fires in production.
            let folded = (fp as u64) ^ ((fp >> 64) as u64);
            for (idx, count) in per_check {
                self.obs.lifecycle(
                    snapshot.entries[idx].fingerprint(),
                    Lifecycle::Served {
                        program: folded,
                        violations: count,
                        cached,
                    },
                );
            }
        }
        let violations: Vec<Value> = verdict
            .iter()
            .map(|v| {
                Value::Object(
                    [
                        (
                            "check_index".to_string(),
                            Value::Number(serde::Number::from_u64(v.check_index as u64)),
                        ),
                        ("check".to_string(), Value::String(v.check.clone())),
                        (
                            "resources".to_string(),
                            Value::Array(
                                v.resources
                                    .iter()
                                    .map(|r| Value::String(r.to_string()))
                                    .collect(),
                            ),
                        ),
                    ]
                    .into_iter()
                    .collect(),
                )
            })
            .collect();
        let mut resp = Response::ok("scan")
            .str("program_fp", &format!("{fp:032x}"))
            .num("resources", program.len() as u64)
            .num("check_set_version", snapshot.version)
            .bool("cached", cached)
            .field("violations", Value::Array(violations));
        if let Some(id) = id {
            resp = resp.str("id", &id);
        }
        resp
    }

    /// Repairs one program against the current check-set snapshot. The
    /// search runs per-request behind a single-worker [`DeployEngine`]
    /// sharing the daemon's persistent deploy memo, so oracle probes are
    /// replayed across requests and restarts; lifecycle events keyed by the
    /// repair fingerprint land in the daemon trace for `zodiac explain`.
    fn repair(
        &self,
        id: Option<String>,
        source: &str,
        format: SourceFormat,
        max_edits: Option<usize>,
        touched: &mut Vec<u64>,
    ) -> Response {
        let (program, _fp) = match self.compile_memoized(source, format) {
            Ok(hit) => hit,
            Err(e) => return Response::err(&format!("repair: {e}")),
        };
        let snapshot = self.snapshot();
        let engine = match zodiac_deployer::DeployEngine::try_with_obs(
            zodiac_cloud::CloudSim::new_azure(),
            zodiac_deployer::DeployerConfig {
                workers: 1,
                persistent_cache: self.cfg.deploy_cache.clone(),
                ..Default::default()
            },
            self.obs.clone(),
        ) {
            Ok(engine) => engine,
            Err(e) => return Response::err(&format!("repair: {e}")),
        };
        let mut rcfg = zodiac_repair::RepairConfig::default();
        if let Some(n) = max_edits {
            rcfg.max_edits = n;
        }
        let report = zodiac_repair::repair_program(
            &program,
            snapshot.plain(),
            &self.kb,
            &engine,
            &rcfg,
            &self.obs,
        );
        if let Err(e) = engine.sync_persistent() {
            return Response::err(&format!("repair: {e}"));
        }
        self.repairs.fetch_add(1, Ordering::Relaxed);
        self.obs.counter("daemon.repairs", 1);
        // The repair fingerprint keys the accepted/rejected ledger, so a
        // slow repair's exemplar replays through `zodiac explain` directly.
        touched.push(report.fingerprint);

        let attempts: Vec<Value> = report
            .attempts
            .iter()
            .map(|a| {
                let layers: Vec<Value> = a
                    .layers
                    .iter()
                    .map(|l| {
                        Value::Object(
                            [
                                (
                                    "layer".to_string(),
                                    Value::Number(serde::Number::from_u64(l.layer.index())),
                                ),
                                ("label".to_string(), Value::String(l.layer.label().into())),
                                ("pass".to_string(), Value::Bool(l.passed)),
                                ("reason".to_string(), Value::String(l.reason.clone())),
                            ]
                            .into_iter()
                            .collect(),
                        )
                    })
                    .collect();
                Value::Object(
                    [
                        (
                            "edits".to_string(),
                            Value::Array(
                                a.edits
                                    .iter()
                                    .map(|e| Value::String(e.to_string()))
                                    .collect(),
                            ),
                        ),
                        ("layers".to_string(), Value::Array(layers)),
                    ]
                    .into_iter()
                    .collect(),
                )
            })
            .collect();
        let outcome = match &report.outcome {
            zodiac_repair::RepairOutcome::Clean => "clean",
            zodiac_repair::RepairOutcome::Accepted { .. } => "accepted",
            zodiac_repair::RepairOutcome::Exhausted => "exhausted",
            zodiac_repair::RepairOutcome::Unrepairable { .. } => "unrepairable",
        };
        let mut resp = Response::ok("repair")
            .str("fingerprint", &format!("{:016x}", report.fingerprint))
            .str("outcome", outcome)
            .num("violations_before", report.violations as u64)
            .num("violated_checks", report.violated.len() as u64)
            .num("check_set_version", snapshot.version)
            .field("attempts", Value::Array(attempts));
        match &report.outcome {
            zodiac_repair::RepairOutcome::Accepted { program, edits } => {
                resp = resp
                    .field(
                        "edits",
                        Value::Array(edits.iter().map(|e| Value::String(e.to_string())).collect()),
                    )
                    .str("repaired_source", &zodiac_hcl::to_hcl(program));
            }
            zodiac_repair::RepairOutcome::Unrepairable { reason } => {
                resp = resp.str("reason", reason);
            }
            _ => {}
        }
        if let Some(id) = id {
            resp = resp.str("id", &id);
        }
        resp
    }

    fn delta(&self, upsert: Vec<(String, String)>, remove: Vec<String>) -> Response {
        // Compile every upserted source before touching any state: a delta
        // applies atomically or not at all.
        let mut compiled = Vec::with_capacity(upsert.len());
        for (project, source) in upsert {
            match zodiac_hcl::compile(&source) {
                Ok(p) => compiled.push((project, p)),
                Err(e) => return Response::err(&format!("delta: {project}: {e}")),
            }
        }

        let mut remine = self.remine.lock().unwrap_or_else(PoisonError::into_inner);
        let mut upserted = 0u64;
        let mut removed = 0u64;
        for id in &remove {
            if remine.stats.retract(id, &self.kb) {
                removed += 1;
            }
        }
        upserted += compiled.len() as u64;
        remine.stats.observe_batch(
            compiled,
            &self.kb,
            &zodiac_mining::ShardConfig::with_shards(self.cfg.mining_shards),
        );
        let changed = remine.stats.take_affected_types();
        let fresh =
            mine_types_with_stats(remine.stats.stats(), &self.kb, &self.cfg.mining, &changed);
        let mut by_type: BTreeMap<Symbol, Vec<MinedCheck>> = BTreeMap::new();
        for c in fresh {
            by_type
                .entry(c.check.bindings[0].rtype)
                .or_default()
                .push(c);
        }
        for t in &changed {
            match by_type.remove(t) {
                Some(group) => {
                    remine.mined.insert(*t, group);
                }
                None => {
                    remine.mined.remove(t);
                }
            }
        }

        // Diff the maintained mined set against the store: admit newcomers,
        // retire mined-origin checks that no longer survive. Imported
        // checks are never auto-retired by corpus deltas.
        let desired: BTreeMap<u64, &MinedCheck> = remine
            .mined
            .values()
            .flatten()
            .map(|c| (c.check.fingerprint(), c))
            .collect();
        let mut store = self.store.lock().unwrap_or_else(PoisonError::into_inner);
        // Re-validation gate: deploy-test the checks this delta would newly
        // admit, against the current in-memory corpus, through the shared
        // persistent deploy memo. Checks that fail stay out of the store
        // (they remain in the maintained mined set, so a later corpus
        // change re-tests them — cheaply, since the memo replays every
        // already-probed deployment).
        let mut checks_rejected = 0u64;
        let rejected: std::collections::BTreeSet<u64> = if self.cfg.revalidate {
            let fresh_mined: Vec<MinedCheck> = desired
                .iter()
                .filter(|(fp, _)| !store.live().contains_key(*fp))
                .map(|(_, c)| (*c).clone())
                .collect();
            if fresh_mined.is_empty() {
                Default::default()
            } else {
                match self.revalidate(&remine, fresh_mined) {
                    Ok(r) => r,
                    Err(e) => return Response::err(&format!("delta: revalidate: {e}")),
                }
            }
        } else {
            Default::default()
        };
        let mut checks_added = 0u64;
        let mut checks_retired = 0u64;
        let stale: Vec<u64> = store
            .live()
            .iter()
            .filter(|(fp, c)| c.origin == Origin::Mined && !desired.contains_key(fp))
            .map(|(fp, _)| *fp)
            .collect();
        for fp in stale {
            if let Err(e) = store.retire(fp) {
                return Response::err(&format!("delta: store: {e}"));
            }
            checks_retired += 1;
        }
        let mut checks_updated = 0u64;
        for (fp, c) in &desired {
            if rejected.contains(fp) {
                checks_rejected += 1;
                continue;
            }
            let support = c.support as u64;
            let confidence_ppm = (c.confidence * 1e6) as u64;
            // A surviving check's statistics drift as the corpus does;
            // re-admit (same fingerprint, fresh provenance) so `explain`
            // reports the current support. Imported checks keep their
            // imported provenance.
            let (new, refresh) = match store.live().get(fp) {
                None => (true, true),
                Some(live) => (
                    false,
                    live.origin == Origin::Mined
                        && (live.family != c.family
                            || live.support != support
                            || live.confidence_ppm != confidence_ppm),
                ),
            };
            if refresh {
                if let Err(e) = store.admit(
                    c.check.clone(),
                    Origin::Mined,
                    c.family,
                    support,
                    confidence_ppm,
                ) {
                    return Response::err(&format!("delta: store: {e}"));
                }
                if new {
                    checks_added += 1;
                } else {
                    checks_updated += 1;
                }
            }
        }
        self.publish(&store);
        let version = store.seq();
        drop(store);
        let projects = remine.stats.projects() as u64;
        drop(remine);

        self.deltas.fetch_add(1, Ordering::Relaxed);
        self.obs.counter("daemon.deltas", 1);
        Response::ok("submit_corpus_delta")
            .num("upserted", upserted)
            .num("removed", removed)
            .num("corpus_projects", projects)
            .num("types_rescored", changed.len() as u64)
            .num("checks_added", checks_added)
            .num("checks_updated", checks_updated)
            .num("checks_retired", checks_retired)
            .num("checks_rejected", checks_rejected)
            .num("check_set_version", version)
    }

    /// Deploy-validates freshly mined checks against the current corpus,
    /// returning the fingerprints that must NOT be admitted (demoted as
    /// false positives or left unresolved). Runs the same wave-scheduled
    /// validation as the batch pipeline, behind a [`DeployEngine`] that
    /// replays and extends the configured persistent deploy memo.
    fn revalidate(
        &self,
        remine: &Remine,
        fresh: Vec<MinedCheck>,
    ) -> Result<std::collections::BTreeSet<u64>, String> {
        use zodiac_validation::{Scheduler, SchedulerConfig};
        let corpus: Vec<Program> = remine.stats.observed_programs().cloned().collect();
        let engine = zodiac_deployer::DeployEngine::try_with_obs(
            zodiac_cloud::CloudSim::new_azure(),
            zodiac_deployer::DeployerConfig {
                workers: 1,
                persistent_cache: self.cfg.deploy_cache.clone(),
                ..Default::default()
            },
            self.obs.clone(),
        )?;
        let candidates: Vec<u64> = fresh.iter().map(|c| c.check.fingerprint()).collect();
        let outcome = Scheduler::new(&engine, &self.kb, &corpus, SchedulerConfig::default())
            .with_obs(self.obs.clone())
            .run(fresh);
        let validated: std::collections::BTreeSet<u64> = outcome
            .validated
            .iter()
            .map(|v| v.mined.check.fingerprint())
            .collect();
        self.obs.counter("daemon.revalidations", 1);
        engine.sync_persistent()?;
        Ok(candidates
            .into_iter()
            .filter(|fp| !validated.contains(fp))
            .collect())
    }

    fn list_checks(&self) -> Response {
        let snapshot = self.snapshot();
        let checks: Vec<Value> = snapshot
            .entries
            .iter()
            .map(|c| {
                Value::Object(
                    [
                        (
                            "fp".to_string(),
                            Value::String(format!("{:016x}", c.fingerprint())),
                        ),
                        ("check".to_string(), Value::String(c.check.to_string())),
                        (
                            "origin".to_string(),
                            Value::String(c.origin.as_str().into()),
                        ),
                        ("family".to_string(), Value::String(c.family.clone())),
                        (
                            "seq".to_string(),
                            Value::Number(serde::Number::from_u64(c.seq)),
                        ),
                    ]
                    .into_iter()
                    .collect(),
                )
            })
            .collect();
        Response::ok("list_checks")
            .num("check_set_version", snapshot.version)
            .num("count", snapshot.len() as u64)
            .field("checks", Value::Array(checks))
    }

    fn explain(&self, fp: u64) -> Response {
        let snapshot = self.snapshot();
        let Some(c) = snapshot.entries.iter().find(|c| c.fingerprint() == fp) else {
            return Response::err(&format!("no live check with fingerprint {fp:016x}"));
        };
        Response::ok("explain")
            .str("fp", &format!("{fp:016x}"))
            .str("check", &c.check.to_string())
            .str("origin", c.origin.as_str())
            .str("family", &c.family)
            .num("support", c.support)
            .num("confidence_ppm", c.confidence_ppm)
            .num("seq", c.seq)
            .str("insight", &zodiac::insights::explain(&c.check))
    }

    /// Publishes point-in-time process gauges (heap, cache sizes, live
    /// checks) into the registry so snapshots and exposition carry them.
    fn publish_process_gauges(&self) {
        if let Some(alloc) = CountingAlloc::global() {
            alloc.publish_gauges(self.registry.as_ref());
        }
        self.registry
            .gauge_set("daemon.cache_entries", self.cache.len() as u64);
        self.registry
            .gauge_set("daemon.checks_live", self.snapshot().len() as u64);
    }

    /// The Prometheus exposition page: cumulative registry + rolling
    /// windows + tail exemplars. Served by `GET /metrics` and embedded in
    /// the `metrics` op.
    pub fn metrics_page(&self) -> String {
        self.publish_process_gauges();
        render_prometheus(
            &self.registry.snapshot(),
            Some(&self.rolling.snapshot()),
            Some(&self.exemplars),
        )
    }

    /// Parses one of the obs crate's hand-rolled JSON encodings into a
    /// protocol `Value` for embedding in a response.
    fn embed_json(text: &str) -> Value {
        serde_json::from_str(text).unwrap_or(Value::Null)
    }

    fn metrics(&self) -> Response {
        self.publish_process_gauges();
        let snapshot = self.registry.snapshot();
        let rolling = self.rolling.snapshot();
        let page = render_prometheus(&snapshot, Some(&rolling), Some(&self.exemplars));
        Response::ok("metrics")
            .bool("ready", self.is_ready())
            .field("snapshot", Self::embed_json(&snapshot.to_json()))
            .field("rolling", Self::embed_json(&rolling.to_json()))
            .field("exemplars", Self::embed_json(&self.exemplars.to_json()))
            .str("prometheus", &page)
    }

    fn status(&self) -> Response {
        let snapshot = self.snapshot();
        let (records, projects) = {
            let store = self.store.lock().unwrap_or_else(PoisonError::into_inner);
            let remine = self.remine.lock().unwrap_or_else(PoisonError::into_inner);
            (store.records() as u64, remine.stats.projects() as u64)
        };
        self.publish_process_gauges();
        Response::ok("status")
            .num("checks", snapshot.len() as u64)
            .num("check_set_version", snapshot.version)
            .str("check_set_key", &format!("{:016x}", snapshot.key))
            .num("scans", self.scans.load(Ordering::Relaxed))
            .num("repairs", self.repairs.load(Ordering::Relaxed))
            .num("cache_hits", self.cache_hits.load(Ordering::Relaxed))
            .num("cache_entries", self.cache.len() as u64)
            .num("corpus_projects", projects)
            .num("deltas", self.deltas.load(Ordering::Relaxed))
            .num("store_records", records)
            .bool("ready", self.is_ready())
            .field(
                "metrics",
                Self::embed_json(&self.registry.snapshot().to_json()),
            )
            .field(
                "rolling",
                Self::embed_json(&self.rolling.snapshot().to_json()),
            )
    }
}
