//! Differential test for incremental re-mining: a random sequence of
//! corpus deltas (projects added, replaced, removed) applied through the
//! daemon must leave it serving exactly the checks a full batch re-mining
//! of the final corpus produces — and the incremental statistics must be
//! field-for-field identical to a batch rebuild.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::path::PathBuf;
use zodiac_daemon::{protocol::Request, store::Origin, Daemon, DaemonConfig};
use zodiac_mining::{CorpusStats, IncrementalStats};
use zodiac_obs::Obs;

fn temp_store(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("zodiacd-inc-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// One delta round: projects to upsert (id, source) and ids to remove.
type DeltaRound = (Vec<(String, String)>, Vec<String>);

/// Seeded random delta schedule over a generated corpus: each round
/// removes a few live projects, adds unseen ones, and rewrites some
/// existing project ids with a different source (a modify). Returns the
/// rounds plus the final corpus they leave behind.
fn delta_schedule(seed: u64) -> (Vec<DeltaRound>, BTreeMap<String, String>) {
    let corpus = zodiac_corpus::generate(&zodiac_corpus::CorpusConfig {
        seed,
        projects: 28,
        noise_rate: 0.1,
        ..Default::default()
    });
    let sources: Vec<String> = corpus.iter().map(|p| p.to_hcl()).collect();
    let mut rng = StdRng::seed_from_u64(seed ^ 0xD1FF);
    let mut current: BTreeMap<String, String> = BTreeMap::new();
    let mut next_unseen = 0usize;
    let mut rounds = Vec::new();
    for round in 0..5 {
        let mut remove = Vec::new();
        if round > 0 {
            let live: Vec<String> = current.keys().cloned().collect();
            for id in &live {
                if remove.len() < 4 && rng.gen_bool(0.2) {
                    remove.push(id.clone());
                    current.remove(id);
                }
            }
        }
        let mut upsert = Vec::new();
        for _ in 0..8 {
            if next_unseen < sources.len() && rng.gen_bool(0.7) {
                let id = format!("p{next_unseen:02}");
                upsert.push((id.clone(), sources[next_unseen].clone()));
                current.insert(id, sources[next_unseen].clone());
                next_unseen += 1;
            } else if let Some(id) = current
                .keys()
                .nth(rng.gen_range(0..current.len().max(1)))
                .cloned()
            {
                let replacement = sources[rng.gen_range(0..sources.len())].clone();
                upsert.push((id.clone(), replacement.clone()));
                current.insert(id, replacement);
            }
        }
        rounds.push((upsert, remove));
    }
    (rounds, current)
}

#[test]
fn random_deltas_match_full_remining_from_scratch() {
    let dir = temp_store("diff");
    let cfg = DaemonConfig::default();
    let (daemon, _) = Daemon::open(&dir, cfg.clone(), Obs::null()).unwrap();
    let (rounds, final_corpus) = delta_schedule(0xA11CE);

    for (upsert, remove) in &rounds {
        let resp = daemon.handle(Request::SubmitCorpusDelta {
            upsert: upsert.clone(),
            remove: remove.clone(),
        });
        let line = resp.render();
        assert!(line.contains("\"ok\":true"), "delta rejected: {line}");
    }

    // Full re-mining from scratch over the final corpus.
    let kb = zodiac_kb::azure_kb();
    let programs: Vec<_> = final_corpus
        .values()
        .map(|src| zodiac_hcl::compile(src).unwrap())
        .collect();
    let report = zodiac_mining::mine(&programs, &kb, &cfg.mining);
    let expected: BTreeMap<u64, (&'static str, u64, u64)> = report
        .checks
        .iter()
        .map(|c| {
            (
                c.check.fingerprint(),
                (c.family, c.support as u64, (c.confidence * 1e6) as u64),
            )
        })
        .collect();
    assert!(!expected.is_empty(), "differential corpus mined nothing");

    let snapshot = daemon.snapshot();
    let served: BTreeMap<u64, (&str, u64, u64)> = snapshot
        .entries
        .iter()
        .filter(|c| c.origin == Origin::Mined)
        .map(|c| {
            (
                c.fingerprint(),
                (c.family.as_str(), c.support, c.confidence_ppm),
            )
        })
        .collect();

    let missing: Vec<_> = expected
        .keys()
        .filter(|fp| !served.contains_key(fp))
        .collect();
    let extra: Vec<_> = served
        .keys()
        .filter(|fp| !expected.contains_key(fp))
        .collect();
    assert!(
        missing.is_empty() && extra.is_empty(),
        "incremental != full re-mining: missing {missing:x?}, extra {extra:x?}"
    );
    for (fp, (family, support, conf)) in &expected {
        let got = &served[fp];
        assert_eq!(
            (got.0, got.1, got.2),
            (*family, *support, *conf),
            "check {fp:016x}"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn incremental_stats_equal_batch_rebuild_after_random_deltas() {
    let kb = zodiac_kb::azure_kb();
    let (rounds, final_corpus) = delta_schedule(0xBEEF);
    let mut inc = IncrementalStats::new(true);
    for (upsert, remove) in &rounds {
        for id in remove {
            inc.retract(id, &kb);
        }
        for (id, src) in upsert {
            inc.observe(id.clone(), zodiac_hcl::compile(src).unwrap(), &kb);
        }
    }
    let programs: Vec<_> = final_corpus
        .values()
        .map(|src| zodiac_hcl::compile(src).unwrap())
        .collect();
    let batch = CorpusStats::build(&programs, &kb, true);
    assert_eq!(
        inc.stats(),
        &batch,
        "incremental statistics diverged from batch rebuild"
    );
    assert_eq!(inc.projects(), final_corpus.len());
}
