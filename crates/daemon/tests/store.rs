//! Crash-safety and compaction tests for the append-only check store.

use std::path::{Path, PathBuf};
use zodiac_daemon::store::{CheckStore, Origin};
use zodiac_spec::{parse_check, Check};

fn temp_store(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("zodiacd-store-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn check(i: usize) -> Check {
    let srcs = [
        "let r:VM in r.priority == 'Spot' => r.eviction_policy != null",
        "let r:IP in r.allocation_method == 'Dynamic' => r.sku == 'Basic'",
        "let r:VM in r.size == 'Standard_F2s_v2' => indegree(r, NIC) <= 2",
        "let r:GW in r.active_active == true => length(r.ip_configuration) >= 2",
        "let r:VM in r.size == 'Standard_B1s' => r.priority != null",
    ];
    parse_check(srcs[i % srcs.len()]).unwrap()
}

/// The file's record lines (everything after the header), verbatim.
fn record_lines(dir: &Path) -> Vec<String> {
    let text = std::fs::read_to_string(dir.join("checks.log")).unwrap();
    text.lines().skip(1).map(str::to_string).collect()
}

#[test]
fn torn_tail_is_dropped_then_appends_resume() {
    let dir = temp_store("torn");
    {
        let (mut store, report) = CheckStore::open(&dir).unwrap();
        assert!(!report.dropped_partial);
        for i in 0..3 {
            store
                .admit(check(i), Origin::Imported, "imported", 0, 0)
                .unwrap();
        }
    }
    // Simulate a crash mid-append: cut into the last record, removing its
    // trailing newline (the durability marker).
    let log = dir.join("checks.log");
    let bytes = std::fs::read(&log).unwrap();
    std::fs::write(&log, &bytes[..bytes.len() - 7]).unwrap();

    let (mut store, report) = CheckStore::open(&dir).unwrap();
    assert!(report.dropped_partial, "torn tail must be reported");
    assert_eq!(store.live().len(), 2, "torn record dropped, prefix kept");
    assert_eq!(report.live, 2);

    // The truncated log accepts appends again and replays cleanly.
    store
        .admit(check(3), Origin::Mined, "conn/attr-eq", 5, 990_000)
        .unwrap();
    drop(store);
    let (store, report) = CheckStore::open(&dir).unwrap();
    assert!(!report.dropped_partial);
    assert_eq!(store.live().len(), 3);
    assert!(store.live().contains_key(&check(3).fingerprint()));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn compaction_preserves_live_records_byte_for_byte() {
    let dir = temp_store("compact");
    let (mut store, _) = CheckStore::open(&dir).unwrap();
    for i in 0..5 {
        store
            .admit(
                check(i),
                Origin::Mined,
                "intra/eq-eq",
                4 + i as u64,
                950_000,
            )
            .unwrap();
    }
    // Create garbage: retire two, re-admit one of them (new seq).
    assert!(store.retire(check(1).fingerprint()).unwrap());
    assert!(store.retire(check(2).fingerprint()).unwrap());
    store
        .admit(check(1), Origin::Mined, "intra/eq-eq", 9, 970_000)
        .unwrap();

    // Expected survivors: the record lines whose seq is still live, in seq
    // order, byte-identical to how they were first written.
    let live_seqs: Vec<u64> = {
        let mut seqs: Vec<u64> = store.live().values().map(|c| c.seq).collect();
        seqs.sort_unstable();
        seqs
    };
    let pre_lines = record_lines(&dir);
    let expected: Vec<String> = pre_lines
        .iter()
        .filter(|line| {
            let v: serde::Value = serde_json::from_str(line).unwrap();
            let seq = v.get("seq").and_then(serde::Value::as_u64).unwrap();
            live_seqs.contains(&seq)
        })
        .cloned()
        .collect();
    let live_before: Vec<(u64, String)> = store
        .live_in_seq_order()
        .iter()
        .map(|c| (c.fingerprint(), c.check.to_string()))
        .collect();

    store.compact().unwrap();
    assert_eq!(
        record_lines(&dir),
        expected,
        "live records must survive byte-for-byte"
    );
    let live_after: Vec<(u64, String)> = store
        .live_in_seq_order()
        .iter()
        .map(|c| (c.fingerprint(), c.check.to_string()))
        .collect();
    assert_eq!(live_before, live_after);

    // And a fresh replay of the compacted log agrees.
    drop(store);
    let (store, report) = CheckStore::open(&dir).unwrap();
    assert!(!report.dropped_partial);
    let live_replayed: Vec<(u64, String)> = store
        .live_in_seq_order()
        .iter()
        .map(|c| (c.fingerprint(), c.check.to_string()))
        .collect();
    assert_eq!(live_before, live_replayed);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn interior_corruption_is_a_hard_error() {
    let dir = temp_store("corrupt");
    {
        let (mut store, _) = CheckStore::open(&dir).unwrap();
        for i in 0..4 {
            store
                .admit(check(i), Origin::Imported, "imported", 0, 0)
                .unwrap();
        }
    }
    let log = dir.join("checks.log");
    let text = std::fs::read_to_string(&log).unwrap();
    let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
    lines[2] = lines[2].replace("\"record\"", "\"rec0rd\"");
    std::fs::write(&log, lines.join("\n") + "\n").unwrap();
    assert!(
        CheckStore::open(&dir).is_err(),
        "interior corruption is not a torn tail and must not be silently dropped"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
