//! Operational-telemetry integration: per-op windows fed by real requests,
//! the `metrics` op, exemplar → explain round-trips, and the HTTP endpoint.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;
use zodiac_daemon::{http, Daemon, DaemonConfig};
use zodiac_model::{Program, Resource};
use zodiac_obs::Obs;
use zodiac_spec::parse_check;

fn temp_store(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("zodiacd-telem-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn spot_violation_source() -> String {
    zodiac_hcl::to_hcl(
        &Program::new().with(
            Resource::new("azurerm_linux_virtual_machine", "vm")
                .with("size", "Standard_D2s_v3")
                .with("priority", "Spot"),
        ),
    )
}

fn scan_request(source: &str) -> String {
    format!(
        "{{\"op\":\"scan\",\"source\":{}}}",
        serde_json::to_string(&serde::Value::String(source.to_string())).unwrap()
    )
}

#[test]
fn metrics_op_reports_windows_and_replayable_exemplars() {
    let dir = temp_store("metrics-op");
    let (daemon, _) = Daemon::open(&dir, DaemonConfig::default(), Obs::null()).unwrap();
    let check =
        parse_check("let r:VM in r.priority == 'Spot' => r.eviction_policy != null").unwrap();
    let expected_fp = check.fingerprint();
    daemon.import_checks(&[check]).unwrap();

    let source = spot_violation_source();
    for _ in 0..5 {
        let line = daemon.handle_line(&scan_request(&source));
        assert!(line.contains("\"ok\":true"), "{line}");
    }
    // One parse-able but failing request lands in the error window.
    let bad = daemon.handle_line("{\"op\":\"scan\",\"source\":\"resource \\\"\"}");
    assert!(bad.contains("\"ok\":false"), "{bad}");

    let line = daemon.handle_line("{\"op\":\"metrics\"}");
    let v: serde::Value = serde_json::from_str(&line).unwrap();
    assert_eq!(v.get("ok").and_then(serde::Value::as_bool), Some(true));

    // Rolling windows saw all six scans (five ok + one error).
    let scan_1m = v
        .get("rolling")
        .and_then(|r| r.get("ops"))
        .and_then(|o| o.get("scan"))
        .and_then(|s| s.get("last_1m"))
        .expect("rolling scan window present");
    assert_eq!(scan_1m.get("count").and_then(serde::Value::as_u64), Some(6));
    assert_eq!(
        scan_1m.get("errors").and_then(serde::Value::as_u64),
        Some(1)
    );
    assert!(
        scan_1m
            .get("p99_us")
            .and_then(serde::Value::as_u64)
            .unwrap()
            > 0
    );

    // The cumulative registry carries the same boundary histogram.
    let snap = v.get("snapshot").expect("metrics embeds the snapshot");
    let op_scan = snap
        .get("histograms")
        .and_then(|h| h.get("op.scan.us"))
        .expect("op.scan.us histogram present");
    assert_eq!(op_scan.get("count").and_then(serde::Value::as_u64), Some(6));
    assert_eq!(
        snap.get("counters")
            .and_then(|c| c.get("op.scan.errors"))
            .and_then(serde::Value::as_u64),
        Some(1)
    );

    // The slowest scan exemplar carries the violated check's fingerprint…
    let exemplars = v
        .get("exemplars")
        .and_then(|e| e.get("scan"))
        .and_then(serde::Value::as_array)
        .expect("scan exemplars present");
    assert!(!exemplars.is_empty());
    let with_fp = exemplars
        .iter()
        .find_map(|e| {
            e.get("fingerprints")
                .and_then(serde::Value::as_array)
                .and_then(|f| f.first())
                .and_then(serde::Value::as_u64)
        })
        .expect("an exemplar retains a violated-check fingerprint");
    assert_eq!(with_fp, expected_fp);

    // …which round-trips through the explain op to a live check.
    let explain = daemon.handle_line(&format!("{{\"op\":\"explain\",\"fp\":\"{with_fp:016x}\"}}"));
    assert!(explain.contains("\"ok\":true"), "{explain}");
    assert!(explain.contains("eviction_policy"), "{explain}");

    // The Prometheus page is embedded too, with per-op series.
    let page = v
        .get("prometheus")
        .and_then(serde::Value::as_str)
        .expect("metrics embeds the exposition page");
    assert!(page.contains("# TYPE zodiac_op_requests gauge"));
    assert!(page.contains("zodiac_op_requests{op=\"scan\",window=\"1m\"} 6"));
    // The failed scan never reached the scan body, so the cumulative
    // subsystem counter stays one behind the boundary window.
    assert!(page.contains("zodiac_daemon_scans_total 5"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn status_embeds_snapshot_and_readiness() {
    let dir = temp_store("status-embed");
    let (daemon, _) = Daemon::open(&dir, DaemonConfig::default(), Obs::null()).unwrap();
    let status = daemon.handle_line("{\"op\":\"status\"}");
    let v: serde::Value = serde_json::from_str(&status).unwrap();
    // Old flat fields survive for compatibility…
    assert_eq!(v.get("scans").and_then(serde::Value::as_u64), Some(0));
    assert_eq!(v.get("checks").and_then(serde::Value::as_u64), Some(0));
    // …alongside readiness and the full embedded snapshot.
    assert_eq!(v.get("ready").and_then(serde::Value::as_bool), Some(false));
    assert!(v.get("metrics").and_then(|m| m.get("counters")).is_some());
    assert!(v.get("rolling").and_then(|r| r.get("ops")).is_some());
    daemon.set_ready();
    let status = daemon.handle_line("{\"op\":\"status\"}");
    let v: serde::Value = serde_json::from_str(&status).unwrap();
    assert_eq!(v.get("ready").and_then(serde::Value::as_bool), Some(true));
    // The status round-trip itself was measured at the boundary.
    assert!(v
        .get("metrics")
        .and_then(|m| m.get("histograms"))
        .and_then(|h| h.get("op.status.us"))
        .is_some());
    let _ = std::fs::remove_dir_all(&dir);
}

fn http_get(addr: std::net::SocketAddr, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).unwrap();
    write!(stream, "GET {path} HTTP/1.1\r\nHost: localhost\r\n\r\n").unwrap();
    let mut out = String::new();
    stream.read_to_string(&mut out).unwrap();
    out
}

#[test]
fn http_endpoint_serves_metrics_and_readiness() {
    let dir = temp_store("http");
    let (daemon, _) = Daemon::open(&dir, DaemonConfig::default(), Obs::null()).unwrap();
    daemon
        .import_checks(&[parse_check(
            "let r:VM in r.priority == 'Spot' => r.eviction_policy != null",
        )
        .unwrap()])
        .unwrap();
    let daemon = Arc::new(daemon);
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server = {
        let daemon = daemon.clone();
        std::thread::spawn(move || http::serve_http(daemon, listener))
    };

    // Not ready yet: healthz refuses, metrics still serves.
    let health = http_get(addr, "/healthz");
    assert!(health.starts_with("HTTP/1.1 503"), "{health}");
    assert!(health.ends_with("starting\n"), "{health}");
    daemon.set_ready();
    let health = http_get(addr, "/healthz");
    assert!(health.starts_with("HTTP/1.1 200"), "{health}");
    assert!(health.ends_with("ok\n"), "{health}");

    // Drive a scan through the daemon, then scrape.
    let line = daemon.handle_line(&scan_request(&spot_violation_source()));
    assert!(line.contains("\"ok\":true"), "{line}");
    let scrape = http_get(addr, "/metrics");
    assert!(scrape.starts_with("HTTP/1.1 200"), "{scrape}");
    assert!(scrape.contains("text/plain; version=0.0.4"), "{scrape}");
    assert!(scrape.contains("zodiac_op_requests{op=\"scan\",window=\"1m\"} 1"));
    // Content-Length matches the body exactly.
    let (head, body) = scrape.split_once("\r\n\r\n").unwrap();
    let len: usize = head
        .lines()
        .find_map(|l| l.strip_prefix("Content-Length: "))
        .unwrap()
        .parse()
        .unwrap();
    assert_eq!(len, body.len());

    assert!(http_get(addr, "/nope").starts_with("HTTP/1.1 404"));
    let mut stream = TcpStream::connect(addr).unwrap();
    write!(stream, "POST /metrics HTTP/1.1\r\n\r\n").unwrap();
    let mut out = String::new();
    stream.read_to_string(&mut out).unwrap();
    assert!(out.starts_with("HTTP/1.1 405"), "{out}");

    daemon.request_shutdown();
    server.join().unwrap().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}
