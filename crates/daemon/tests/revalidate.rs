//! Delta re-validation through the shared persistent deploy memo: a
//! `--revalidate` daemon deploy-tests freshly mined checks before
//! admission, records every probe in the `--deploy-cache` memo, and a
//! restarted daemon replays those probes instead of re-deploying.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use zodiac_daemon::{protocol::Request, Daemon, DaemonConfig};
use zodiac_deployer::DeployMemo;
use zodiac_obs::{MemoryRecorder, Obs};

fn temp_path(tag: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!("zodiacd-reval-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    let _ = std::fs::remove_file(&p);
    p
}

/// A small corpus as (project id, HCL source) upserts.
fn corpus_upserts() -> Vec<(String, String)> {
    zodiac_corpus::generate(&zodiac_corpus::CorpusConfig {
        seed: 0xA11CE,
        projects: 24,
        noise_rate: 0.1,
        ..Default::default()
    })
    .iter()
    .enumerate()
    .map(|(i, p)| (format!("p{i:02}"), p.to_hcl()))
    .collect()
}

fn run_delta(cfg: &DaemonConfig, store: &Path, obs: Obs) -> (BTreeSet<u64>, String) {
    let (daemon, _) = Daemon::open(store, cfg.clone(), obs).unwrap();
    let resp = daemon
        .handle(Request::SubmitCorpusDelta {
            upsert: corpus_upserts(),
            remove: Vec::new(),
        })
        .render();
    assert!(resp.contains("\"ok\":true"), "delta rejected: {resp}");
    let live: BTreeSet<u64> = daemon
        .snapshot()
        .entries
        .iter()
        .map(|c| c.fingerprint())
        .collect();
    (live, resp)
}

#[test]
fn revalidation_gates_admission_and_reuses_the_memo() {
    let memo_path = temp_path("memo.log");
    let cfg = DaemonConfig {
        revalidate: true,
        deploy_cache: Some(memo_path.clone()),
        ..DaemonConfig::default()
    };

    // Cold daemon: every re-validation probe hits the backend and lands in
    // the memo.
    let cold = Arc::new(MemoryRecorder::new());
    let store1 = temp_path("store1");
    let (live_cold, resp) = run_delta(&cfg, &store1, Obs::single(cold.clone()));
    assert!(!live_cold.is_empty(), "revalidation must admit something");
    assert!(
        resp.contains("\"checks_rejected\""),
        "missing field: {resp}"
    );
    let tel = cold.snapshot();
    assert!(tel.counter("deploy.backend_deploys") > 0);
    assert_eq!(tel.counter("deploy.persistent_hits"), 0);
    assert_eq!(tel.counter("daemon.revalidations"), 1);
    let (memo, load) = DeployMemo::open(&memo_path).unwrap();
    assert!(!memo.is_empty(), "probes must be recorded");
    assert_eq!(load.entries as u64, tel.counter("deploy.persistent_stores"));
    drop(memo);

    // Warm daemon: a fresh store, same corpus delta, same memo — identical
    // verdicts, with the deploy probes replayed from disk.
    let warm = Arc::new(MemoryRecorder::new());
    let store2 = temp_path("store2");
    let (live_warm, _) = run_delta(&cfg, &store2, Obs::single(warm.clone()));
    assert_eq!(live_cold, live_warm, "memo must not change verdicts");
    let tel = warm.snapshot();
    assert!(tel.counter("deploy.persistent_hits") > 0, "memo unused");
    assert_eq!(
        tel.counter("deploy.backend_deploys"),
        0,
        "every probe must replay from the memo"
    );

    // Without re-validation the same delta admits a superset: the gate only
    // ever removes checks.
    let plain_store = temp_path("store3");
    let (live_plain, _) = run_delta(&DaemonConfig::default(), &plain_store, Obs::null());
    assert!(
        live_plain.is_superset(&live_cold),
        "revalidation must only filter the mined set"
    );

    for p in [&memo_path, &store1, &store2, &plain_store] {
        let _ = std::fs::remove_dir_all(p);
        let _ = std::fs::remove_file(p);
    }
}
