//! Serving-loop tests: oneshot round-trips and check-set swap atomicity
//! under concurrent scans.

use std::path::PathBuf;
use std::sync::Arc;
use zodiac_daemon::{server, Daemon, DaemonConfig};
use zodiac_model::{Program, Resource};
use zodiac_obs::Obs;
use zodiac_spec::{parse_check, Check};

fn temp_store(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("zodiacd-serve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn check_pool() -> Vec<Check> {
    [
        "let r:VM in r.priority == 'Spot' => r.eviction_policy != null",
        "let r:IP in r.allocation_method == 'Dynamic' => r.sku == 'Basic'",
        "let r:VM in r.size == 'Standard_F2s_v2' => indegree(r, NIC) <= 2",
        "let r:VM in r.size == 'Standard_B1s' => r.priority != null",
    ]
    .iter()
    .map(|s| parse_check(s).unwrap())
    .collect()
}

/// A program violating pool checks 0 and 1 (Spot VM without an eviction
/// policy, Dynamic IP with a non-Basic sku) but not 2 and 3.
fn victim() -> Program {
    Program::new()
        .with(
            Resource::new("azurerm_linux_virtual_machine", "vm")
                .with("size", "Standard_D2s_v3")
                .with("priority", "Spot"),
        )
        .with(
            Resource::new("azurerm_public_ip", "ip")
                .with("allocation_method", "Dynamic")
                .with("sku", "Standard"),
        )
}

#[test]
fn oneshot_serves_lines_until_shutdown() {
    let dir = temp_store("oneshot");
    let (daemon, _) = Daemon::open(&dir, DaemonConfig::default(), Obs::null()).unwrap();
    daemon.import_checks(&check_pool()).unwrap();

    let input = "{\"op\":\"status\"}\n\n{\"op\":\"list_checks\"}\n{\"op\":\"shutdown\"}\n{\"op\":\"status\"}\n";
    let mut output = Vec::new();
    server::serve_lines(&daemon, input.as_bytes(), &mut output).unwrap();
    let out = String::from_utf8(output).unwrap();
    let lines: Vec<&str> = out.lines().collect();
    assert_eq!(
        lines.len(),
        3,
        "loop must stop at shutdown, skipping blanks: {out}"
    );
    assert!(lines[0].contains("\"op\":\"status\""));
    assert!(lines[1].contains("\"count\":4"));
    assert!(lines[2].contains("\"op\":\"shutdown\""));
    assert!(daemon.is_shutdown());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn repair_op_fixes_a_violating_program_against_the_live_set() {
    let dir = temp_store("repair");
    let (daemon, _) = Daemon::open(&dir, DaemonConfig::default(), Obs::null()).unwrap();
    daemon
        .import_checks(&[parse_check(
            "let r:VM in r.priority == 'Spot' => r.eviction_policy != null",
        )
        .unwrap()])
        .unwrap();

    let source = zodiac_hcl::to_hcl(&zodiac_repair::fixtures::spot_vm_network());
    let request = format!(
        "{{\"op\":\"repair\",\"source\":{},\"id\":\"spot.tf\"}}",
        serde_json::to_string(&serde::Value::String(source)).unwrap()
    );
    let line = daemon.handle_line(&request);
    assert!(line.contains("\"ok\":true"), "{line}");
    assert!(line.contains("\"outcome\":\"accepted\""), "{line}");
    assert!(line.contains("\"id\":\"spot.tf\""), "{line}");
    let v: serde::Value = serde_json::from_str(&line).unwrap();
    let edits = v.get("edits").and_then(serde::Value::as_array).unwrap();
    assert_eq!(edits.len(), 1, "minimal repair is one edit: {line}");

    // The repaired source scans clean against the same live set.
    let repaired = v
        .get("repaired_source")
        .and_then(serde::Value::as_str)
        .expect("accepted repair carries the repaired source");
    let rescan = daemon.handle_line(&format!(
        "{{\"op\":\"scan\",\"source\":{}}}",
        serde_json::to_string(&serde::Value::String(repaired.to_string())).unwrap()
    ));
    assert!(rescan.contains("\"violations\":[]"), "{rescan}");

    // A clean program needs no repair.
    let clean = zodiac_hcl::to_hcl(&zodiac_repair::fixtures::network());
    let line = daemon.handle_line(&format!(
        "{{\"op\":\"repair\",\"source\":{}}}",
        serde_json::to_string(&serde::Value::String(clean)).unwrap()
    ));
    assert!(line.contains("\"outcome\":\"clean\""), "{line}");

    // Both requests are counted.
    let status = daemon.handle_line("{\"op\":\"status\"}");
    assert!(status.contains("\"repairs\":2"), "{status}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn concurrent_scans_never_observe_a_half_applied_check_set() {
    let dir = temp_store("atomic");
    let (daemon, _) = Daemon::open(&dir, DaemonConfig::default(), Obs::null()).unwrap();
    let daemon = Arc::new(daemon);
    let pool = check_pool();
    let kb = zodiac_kb::azure_kb();
    let program = victim();
    let source = zodiac_hcl::to_hcl(&program);

    // Importing checks one at a time bumps the store seq by one each, so
    // check-set version k serves exactly pool[..k]. Precompute the verdict
    // each version must report, rendered the way the scan response renders
    // violations.
    let expected: Vec<String> = (0..=pool.len())
        .map(|k| {
            let violations: Vec<serde::Value> = zodiac::scan_program(&program, &pool[..k], &kb)
                .iter()
                .map(|v| {
                    serde::Value::Object(
                        [
                            (
                                "check_index".to_string(),
                                serde::Value::Number(serde::Number::from_u64(v.check_index as u64)),
                            ),
                            ("check".to_string(), serde::Value::String(v.check.clone())),
                            (
                                "resources".to_string(),
                                serde::Value::Array(
                                    v.resources
                                        .iter()
                                        .map(|r| serde::Value::String(r.to_string()))
                                        .collect(),
                                ),
                            ),
                        ]
                        .into_iter()
                        .collect(),
                    )
                })
                .collect();
            serde_json::to_string(&serde::Value::Array(violations)).unwrap()
        })
        .collect();

    let scanners: Vec<_> = (0..4)
        .map(|_| {
            let daemon = daemon.clone();
            let source = source.clone();
            std::thread::spawn(move || {
                let mut seen = Vec::new();
                for _ in 0..60 {
                    let line = daemon.handle_line(&format!(
                        "{{\"op\":\"scan\",\"source\":{}}}",
                        serde_json::to_string(&serde::Value::String(source.clone())).unwrap()
                    ));
                    seen.push(line);
                    std::thread::yield_now();
                }
                seen
            })
        })
        .collect();

    for check in &pool {
        std::thread::sleep(std::time::Duration::from_millis(2));
        daemon.import_checks(std::slice::from_ref(check)).unwrap();
    }

    for scanner in scanners {
        for line in scanner.join().unwrap() {
            assert!(line.contains("\"ok\":true"), "scan failed: {line}");
            let marker = "\"check_set_version\":";
            let at = line.find(marker).expect("response carries its version") + marker.len();
            let digits: String = line[at..]
                .chars()
                .take_while(char::is_ascii_digit)
                .collect();
            let version: usize = digits.parse().unwrap();
            let want = format!("\"violations\":{}", expected[version]);
            assert!(
                line.contains(&want),
                "version {version} served a verdict from another check set:\n{line}\nwant {want}"
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}
