//! The L3 oracle: a deceptive-fix detector.
//!
//! Deploy success (L1) and check satisfaction (L2) are necessary but not
//! sufficient — a "repair" that deletes the violating resource, drops the
//! attribute the original set intentionally, or quietly narrows a network
//! rule also clears both. This module diffs the original and repaired
//! programs **against the typed check IR** (not strings): a structural or
//! scope change is only excused when some violated check actually demanded
//! it.
//!
//! Four deception classes are recognised:
//!
//! * [`DeceptionKind::DeletedResource`] — a resource present in the
//!   original is gone, and no violated degree constraint sanctions removing
//!   resources of its type.
//! * [`DeceptionKind::DroppedReference`] — a reference-carrying attribute
//!   was removed without any violated check mentioning it (disconnecting
//!   two resources to escape a relational check's condition).
//! * [`DeceptionKind::DroppedAttr`] — a concrete attribute the original
//!   set intentionally was removed, top-level or nested, without being
//!   mentioned by a violated check.
//! * [`DeceptionKind::NarrowedScope`] — a CIDR- or port-valued attribute
//!   covers strictly less than before (`'*'`/`0.0.0.0/0` treated as full
//!   range), without being mentioned by a violated check.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use zodiac_kb::{KnowledgeBase, ValueFormat};
use zodiac_model::{Cidr, Program, Resource, ResourceId, Value};
use zodiac_spec::{Check, Expr, Val};
use zodiac_validation::ground;

/// The class of a detected deceptive fix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeceptionKind {
    /// A resource was deleted without a degree constraint demanding it.
    DeletedResource,
    /// A reference-carrying attribute was dropped, disconnecting resources.
    DroppedReference,
    /// An intentionally-set attribute was dropped.
    DroppedAttr,
    /// A network scope (CIDR/port range) was narrowed.
    NarrowedScope,
}

impl DeceptionKind {
    /// Stable machine-readable slug (used in provenance `RepairRejected`
    /// reasons).
    pub fn slug(self) -> &'static str {
        match self {
            DeceptionKind::DeletedResource => "deleted-resource",
            DeceptionKind::DroppedReference => "dropped-reference",
            DeceptionKind::DroppedAttr => "dropped-attr",
            DeceptionKind::NarrowedScope => "narrowed-scope",
        }
    }
}

/// One detected deceptive change.
#[derive(Debug, Clone)]
pub struct Deception {
    /// The deception class.
    pub kind: DeceptionKind,
    /// The resource the change happened on.
    pub resource: ResourceId,
    /// Human-readable description of the change.
    pub detail: String,
}

impl fmt::Display for Deception {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.kind.slug(), self.detail)
    }
}

/// What the violated checks *sanction*: removals they genuinely demand.
struct Sanctions {
    /// Resource types whose deletion a violated degree constraint excuses
    /// (`true` flags a negated type spec — any type is excused).
    deletable: BTreeSet<String>,
    any_deletable: bool,
    /// `(holder type, target type)` pairs whose connecting references a
    /// violated degree constraint excuses dropping.
    ref_drops: Vec<(String, String)>,
}

impl Sanctions {
    fn from_violated(violated: &[Check]) -> Self {
        let mut out = Sanctions {
            deletable: BTreeSet::new(),
            any_deletable: false,
            ref_drops: Vec::new(),
        };
        for check in violated {
            collect_degree_sanctions(&check.stmt, check, &mut out);
        }
        out
    }

    fn deletion_sanctioned(&self, rtype: &str) -> bool {
        self.any_deletable || self.deletable.contains(rtype)
    }

    fn ref_drop_sanctioned(&self, holder: &str, target: &str) -> bool {
        self.any_deletable
            || self
                .ref_drops
                .iter()
                .any(|(h, t)| h == holder && t == target)
    }
}

fn collect_degree_sanctions(expr: &Expr, check: &Check, out: &mut Sanctions) {
    fn walk_val(v: &Val, check: &Check, out: &mut Sanctions) {
        match v {
            // `indegree(v, τ)` constrains how many τ-resources point at v:
            // a violated instance may require deleting a τ source or the
            // reference it holds.
            Val::InDegree { var, tau } => {
                if tau.negated() {
                    out.any_deletable = true;
                } else {
                    out.deletable.insert(tau.type_name().to_string());
                    if let Some(target) = check.type_of(var) {
                        out.ref_drops
                            .push((tau.type_name().to_string(), target.to_string()));
                    }
                }
            }
            // `outdegree(v, τ)` constrains how many τ-resources v points
            // at: dropping v's references to τ (or a τ target) is fair.
            Val::OutDegree { var, tau } => {
                if tau.negated() {
                    out.any_deletable = true;
                } else {
                    out.deletable.insert(tau.type_name().to_string());
                    if let Some(holder) = check.type_of(var) {
                        out.ref_drops
                            .push((holder.to_string(), tau.type_name().to_string()));
                    }
                }
            }
            Val::Length(inner) => walk_val(inner, check, out),
            _ => {}
        }
    }
    match expr {
        Expr::Cmp { lhs, rhs, .. } => {
            walk_val(lhs, check, out);
            walk_val(rhs, check, out);
        }
        Expr::CoConn { first, second } | Expr::CoPath { first, second } => {
            collect_degree_sanctions(first, check, out);
            collect_degree_sanctions(second, check, out);
        }
        _ => {}
    }
}

/// True when the violated checks mention `path` on `rtype` — directly, as
/// an ancestor (dropping a block whose field a check reads *is* a change
/// the check asked about), or as a descendant.
fn mentioned(mentions: &BTreeMap<String, BTreeSet<String>>, rtype: &str, path: &str) -> bool {
    let Some(set) = mentions.get(rtype) else {
        return false;
    };
    set.iter().any(|m| {
        m == path
            || m.strip_prefix(path).is_some_and(|r| r.starts_with('.'))
            || path
                .strip_prefix(m.as_str())
                .is_some_and(|r| r.starts_with('.'))
    })
}

/// Diffs `repaired` against `original` under the violated-check IR and
/// returns every deceptive change found, in deterministic order.
pub fn detect(
    original: &Program,
    repaired: &Program,
    violated: &[Check],
    kb: &KnowledgeBase,
) -> Vec<Deception> {
    let mentions = ground::relevant_attrs(violated.iter());
    let sanctions = Sanctions::from_violated(violated);
    let mut out = Vec::new();

    for before in original.resources() {
        let id = before.id();
        let Some(after) = repaired.find(&id) else {
            if !sanctions.deletion_sanctioned(&before.rtype) {
                out.push(Deception {
                    kind: DeceptionKind::DeletedResource,
                    resource: id.clone(),
                    detail: format!("resource `{id}` was deleted by the repair"),
                });
            }
            continue;
        };
        diff_resource(before, after, &mentions, &sanctions, kb, &mut out);
    }
    out
}

fn diff_resource(
    before: &Resource,
    after: &Resource,
    mentions: &BTreeMap<String, BTreeSet<String>>,
    sanctions: &Sanctions,
    kb: &KnowledgeBase,
    out: &mut Vec<Deception>,
) {
    let id = before.id();
    let mut dropped_heads: BTreeSet<&str> = BTreeSet::new();

    // --- top-level attribute drops ---------------------------------------
    for (key, value) in &before.attrs {
        if after.attrs.contains_key(key) {
            continue;
        }
        dropped_heads.insert(key.as_str());
        let refs = {
            let mut collected = Vec::new();
            value.collect_refs(&zodiac_model::AttrPath::single(key.clone()), &mut collected);
            collected
        };
        if let Some((_, reference)) = refs.first() {
            if !mentioned(mentions, &before.rtype, key)
                && !sanctions.ref_drop_sanctioned(&before.rtype, &reference.rtype)
            {
                out.push(Deception {
                    kind: DeceptionKind::DroppedReference,
                    resource: id.clone(),
                    detail: format!(
                        "`{key}` referencing {}.{} was removed, but no violated check \
                         mentions it",
                        reference.rtype, reference.name
                    ),
                });
            }
            continue;
        }
        if !mentioned(mentions, &before.rtype, key) {
            out.push(Deception {
                kind: DeceptionKind::DroppedAttr,
                resource: id.clone(),
                detail: format!("attribute `{key}` was removed, but no violated check mentions it"),
            });
        }
    }

    // --- nested drops and scope narrowing, per KB schema path -------------
    let Some(schema) = kb.resource(&before.rtype) else {
        return;
    };
    for attr in schema.attrs.values() {
        let segs: Vec<String> = attr.path.split('.').map(str::to_string).collect();
        let old = zodiac_spec::eval::resolve_multi(before, &segs);
        let new = zodiac_spec::eval::resolve_multi(after, &segs);
        // Nested drop: the path resolved before and no longer does (already
        // reported when its whole top-level block went away).
        if segs.len() > 1
            && !old.is_empty()
            && new.is_empty()
            && !dropped_heads.contains(segs[0].as_str())
            && !mentioned(mentions, &before.rtype, &attr.path)
        {
            out.push(Deception {
                kind: DeceptionKind::DroppedAttr,
                resource: id.clone(),
                detail: format!(
                    "attribute `{}` was removed, but no violated check mentions it",
                    attr.path
                ),
            });
            continue;
        }
        // Scope narrowing on unmentioned CIDR/port attributes.
        if old.is_empty() || new.is_empty() || mentioned(mentions, &before.rtype, &attr.path) {
            continue;
        }
        let narrowing = match attr.format {
            ValueFormat::Cidr => cidr_narrowed(&old, &new),
            ValueFormat::Port => port_narrowed(&old, &new),
            // Address-prefix attributes are schema'd as plain strings on
            // some blocks; treat them as CIDR scopes when every value
            // parses as one.
            _ => cidr_narrowed_if_all_parse(&old, &new),
        };
        if narrowing {
            out.push(Deception {
                kind: DeceptionKind::NarrowedScope,
                resource: id.clone(),
                detail: format!(
                    "scope of `{}` narrowed from {} to {}, but no violated check mentions it",
                    attr.path,
                    render_vals(&old),
                    render_vals(&new)
                ),
            });
        }
    }
}

fn render_vals(vals: &[Value]) -> String {
    let parts: Vec<String> = vals
        .iter()
        .map(|v| match v.as_str() {
            Some(s) => format!("'{s}'"),
            None => v.render(),
        })
        .collect();
    parts.join(", ")
}

/// `'*'` and `0.0.0.0/0` denote the full address range.
fn parse_cidr_scope(v: &Value) -> Option<Cidr> {
    let s = v.as_str()?;
    if s == "*" || s.eq_ignore_ascii_case("internet") || s.eq_ignore_ascii_case("any") {
        return "0.0.0.0/0".parse().ok();
    }
    zodiac_model::cidr::parse_opt(s)
}

/// Every element of `xs` is contained in some element of `ys` (equality
/// allowed, so equal scope sets are never "narrowed").
fn cidr_covered(xs: &[Cidr], ys: &[Cidr]) -> bool {
    xs.iter().all(|x| ys.iter().any(|y| y.contains(x)))
}

fn cidr_narrowed(old: &[Value], new: &[Value]) -> bool {
    let old: Option<Vec<Cidr>> = old.iter().map(parse_cidr_scope).collect();
    let new: Option<Vec<Cidr>> = new.iter().map(parse_cidr_scope).collect();
    match (old, new) {
        (Some(old), Some(new)) => cidr_covered(&new, &old) && !cidr_covered(&old, &new),
        _ => false,
    }
}

fn cidr_narrowed_if_all_parse(old: &[Value], new: &[Value]) -> bool {
    let all_parse =
        |vals: &[Value]| !vals.is_empty() && vals.iter().all(|v| parse_cidr_scope(v).is_some());
    all_parse(old) && all_parse(new) && cidr_narrowed(old, new)
}

/// `'*'` denotes 0–65535; a port value is `n` or `a-b`.
fn parse_port_scope(v: &Value) -> Option<(u32, u32)> {
    if let Some(n) = v.as_int() {
        let n = u32::try_from(n).ok()?;
        return Some((n, n));
    }
    let s = v.as_str()?;
    if s == "*" {
        return Some((0, 65535));
    }
    match s.split_once('-') {
        Some((a, b)) => {
            let a: u32 = a.trim().parse().ok()?;
            let b: u32 = b.trim().parse().ok()?;
            Some((a.min(b), a.max(b)))
        }
        None => {
            let n: u32 = s.trim().parse().ok()?;
            Some((n, n))
        }
    }
}

fn port_covered(xs: &[(u32, u32)], ys: &[(u32, u32)]) -> bool {
    xs.iter()
        .all(|&(lo, hi)| ys.iter().any(|&(ylo, yhi)| ylo <= lo && hi <= yhi))
}

fn port_narrowed(old: &[Value], new: &[Value]) -> bool {
    let old: Option<Vec<(u32, u32)>> = old.iter().map(parse_port_scope).collect();
    let new: Option<Vec<(u32, u32)>> = new.iter().map(parse_port_scope).collect();
    match (old, new) {
        (Some(old), Some(new)) => port_covered(&new, &old) && !port_covered(&old, &new),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zodiac_spec::parse_check;

    fn kb() -> KnowledgeBase {
        zodiac_kb::azure_kb()
    }

    fn spot_check() -> Check {
        parse_check("let v:VM in v.priority == 'Spot' => v.eviction_policy != null").unwrap()
    }

    fn spot_vm() -> Resource {
        Resource::new("azurerm_linux_virtual_machine", "vm")
            .with("name", "vm1")
            .with("location", "eastus")
            .with("size", "Standard_B1s")
            .with("priority", "Spot")
    }

    #[test]
    fn deleting_the_violating_resource_is_deceptive() {
        let original = Program::new().with(spot_vm());
        let repaired = Program::new();
        let found = detect(&original, &repaired, &[spot_check()], &kb());
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].kind, DeceptionKind::DeletedResource);
    }

    #[test]
    fn legitimate_attribute_fix_is_clean() {
        let original = Program::new().with(spot_vm());
        let repaired = Program::new().with(spot_vm().with("eviction_policy", "Deallocate"));
        assert!(detect(&original, &repaired, &[spot_check()], &kb()).is_empty());
    }

    #[test]
    fn dropping_mentioned_attr_is_excused() {
        // Removing `priority` falsifies the condition — the check mentions
        // it, so this is a legitimate (if blunt) lever.
        let original = Program::new().with(spot_vm());
        let mut fixed = spot_vm();
        fixed.attrs.remove("priority");
        let repaired = Program::new().with(fixed);
        assert!(detect(&original, &repaired, &[spot_check()], &kb()).is_empty());
    }

    #[test]
    fn dropping_unmentioned_attr_is_deceptive() {
        let original = Program::new().with(spot_vm().with("zone", "1"));
        let mut fixed = spot_vm().with("eviction_policy", "Deallocate");
        fixed.attrs.remove("zone");
        let repaired = Program::new().with(fixed);
        let found = detect(&original, &repaired, &[spot_check()], &kb());
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].kind, DeceptionKind::DroppedAttr);
    }

    #[test]
    fn dropping_unmentioned_reference_is_deceptive() {
        let nic_ref = Value::List(vec![Value::r("azurerm_network_interface", "nic", "id")]);
        let original = Program::new().with(spot_vm().with("network_interface_ids", nic_ref));
        let repaired = Program::new().with(spot_vm().with("eviction_policy", "Deallocate"));
        let found = detect(&original, &repaired, &[spot_check()], &kb());
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].kind, DeceptionKind::DroppedReference);
    }

    #[test]
    fn degree_constraint_sanctions_ref_drop() {
        // A violated out-degree bound genuinely demands disconnecting.
        let degree = parse_check("let v:VM in v.name != null => outdegree(v, NIC) <= 0").unwrap();
        let nic_ref = Value::List(vec![Value::r("azurerm_network_interface", "nic", "id")]);
        let original = Program::new().with(spot_vm().with("network_interface_ids", nic_ref));
        let repaired = Program::new().with(spot_vm());
        let found = detect(&original, &repaired, &[degree], &kb());
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn narrowing_unmentioned_cidr_scope_is_deceptive() {
        let before = Resource::new("azurerm_subnet", "s")
            .with("name", "s1")
            .with(
                "address_prefixes",
                Value::List(vec![Value::s("10.0.0.0/16")]),
            )
            .with("zone", "1");
        let mut after = before.clone();
        after.attrs.insert(
            "address_prefixes".into(),
            Value::List(vec![Value::s("10.0.0.0/24")]),
        );
        after.attrs.remove("zone");
        // The violated check mentions only `zone`, not the prefix.
        let check = parse_check("let s:SUBNET in s.name != null => s.zone == null").unwrap();
        let found = detect(
            &Program::new().with(before),
            &Program::new().with(after),
            &[check],
            &kb(),
        );
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].kind, DeceptionKind::NarrowedScope);
    }

    #[test]
    fn star_counts_as_full_range_for_ports() {
        assert!(port_narrowed(&[Value::s("*")], &[Value::s("443")]));
        assert!(!port_narrowed(&[Value::s("443")], &[Value::s("*")]));
        assert!(!port_narrowed(&[Value::s("0-65535")], &[Value::s("*")]));
    }

    #[test]
    fn equal_scopes_are_not_narrowed() {
        assert!(!cidr_narrowed(
            &[Value::s("10.0.0.0/24")],
            &[Value::s("10.0.0.0/24")]
        ));
        assert!(cidr_narrowed(
            &[Value::s("0.0.0.0/0")],
            &[Value::s("10.0.0.0/8")]
        ));
    }
}
