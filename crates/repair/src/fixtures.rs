//! Deployable test programs shared by the unit tests, the adversarial
//! deceptive-fix corpus, and the CI repair smoke. Not part of the public
//! API surface.

use zodiac_model::{Program, Resource, Value};

/// A conforming five-resource network: resource group, VNet, subnet, NIC,
/// and a VM — everything `CloudSim::new_azure` needs to deploy cleanly.
pub fn network() -> Program {
    Program::new()
        .with(
            Resource::new("azurerm_resource_group", "rg")
                .with("name", "rg1")
                .with("location", "eastus"),
        )
        .with(
            Resource::new("azurerm_virtual_network", "vnet")
                .with("name", "vnet1")
                .with("location", "eastus")
                .with("address_space", Value::List(vec![Value::s("10.0.0.0/16")]))
                .with(
                    "resource_group_name",
                    Value::r("azurerm_resource_group", "rg", "name"),
                ),
        )
        .with(
            Resource::new("azurerm_subnet", "s")
                .with("name", "internal")
                .with(
                    "address_prefixes",
                    Value::List(vec![Value::s("10.0.1.0/24")]),
                )
                .with(
                    "resource_group_name",
                    Value::r("azurerm_resource_group", "rg", "name"),
                )
                .with(
                    "virtual_network_name",
                    Value::r("azurerm_virtual_network", "vnet", "name"),
                ),
        )
        .with(
            Resource::new("azurerm_network_interface", "nic")
                .with("name", "nic1")
                .with("location", "eastus")
                .with(
                    "resource_group_name",
                    Value::r("azurerm_resource_group", "rg", "name"),
                )
                .with(
                    "ip_configuration",
                    Value::Map(
                        [
                            ("name".to_string(), Value::s("ipcfg")),
                            (
                                "subnet_id".to_string(),
                                Value::r("azurerm_subnet", "s", "id"),
                            ),
                            (
                                "private_ip_address_allocation".to_string(),
                                Value::s("Dynamic"),
                            ),
                        ]
                        .into_iter()
                        .collect(),
                    ),
                ),
        )
        .with(vm())
}

/// The conforming VM of [`network`], standalone so tests can vary it.
pub fn vm() -> Resource {
    Resource::new("azurerm_linux_virtual_machine", "vm")
        .with("name", "vm1")
        .with("location", "eastus")
        .with("size", "Standard_B1s")
        .with("admin_username", "azureuser")
        .with("admin_password", "S3cret!pass")
        .with(
            "resource_group_name",
            Value::r("azurerm_resource_group", "rg", "name"),
        )
        .with(
            "network_interface_ids",
            Value::List(vec![Value::r("azurerm_network_interface", "nic", "id")]),
        )
        .with(
            "os_disk",
            Value::Map(
                [
                    ("caching".to_string(), Value::s("ReadWrite")),
                    ("storage_account_type".to_string(), Value::s("Standard_LRS")),
                ]
                .into_iter()
                .collect(),
            ),
        )
        .with(
            "source_image_reference",
            Value::Map(
                [
                    ("publisher".to_string(), Value::s("Canonical")),
                    ("offer".to_string(), Value::s("ubuntu")),
                    ("sku".to_string(), Value::s("22_04-lts")),
                    ("version".to_string(), Value::s("latest")),
                ]
                .into_iter()
                .collect(),
            ),
        )
}

/// [`network`] with the VM turned Spot without an eviction policy — the
/// canonical single-edit violation (`vm/spot-needs-eviction-policy`).
pub fn spot_vm_network() -> Program {
    with_attr(
        network(),
        "azurerm_linux_virtual_machine",
        "vm",
        "priority",
        Value::s("Spot"),
    )
}

/// Sets one top-level attribute on a resource of `program`, panicking when
/// the resource is missing (fixtures are static; a typo should fail loud).
pub fn with_attr(
    mut program: Program,
    rtype: &str,
    name: &str,
    attr: &str,
    value: Value,
) -> Program {
    let id = zodiac_model::ResourceId::new(rtype, name);
    let resource = program
        .find_mut(&id)
        .unwrap_or_else(|| panic!("fixture resource {id} missing"));
    resource.attrs.insert(attr.to_string(), value);
    program
}

/// Removes one top-level attribute, panicking when the resource is missing.
pub fn without_attr(mut program: Program, rtype: &str, name: &str, attr: &str) -> Program {
    let id = zodiac_model::ResourceId::new(rtype, name);
    let resource = program
        .find_mut(&id)
        .unwrap_or_else(|| panic!("fixture resource {id} missing"));
    resource.attrs.remove(attr);
    program
}

/// Removes a whole resource, panicking when it is missing.
pub fn without_resource(mut program: Program, rtype: &str, name: &str) -> Program {
    let id = zodiac_model::ResourceId::new(rtype, name);
    assert!(program.remove(&id), "fixture resource {id} missing");
    program
}
