//! # zodiac-repair
//!
//! Check-driven auto-repair: the mutation encoding of
//! [`zodiac_validation::mutate`] run **in reverse**. Where mutation searches
//! for the minimal assignment that *violates* one target check while
//! conforming to the rest, repair searches for the minimal assignment that
//! *satisfies every validated check at once* — same symbolic-attribute
//! domains, same [`Grounder`](zodiac_validation::ground::Grounder), opposite
//! polarity.
//!
//! A candidate assignment is never trusted on solver evidence alone. Each
//! proposed repair must clear a **layered oracle stack**:
//!
//! * **L1 — deploy-succeeds**: the repaired program deploys through the
//!   [`DeployOracle`] (the wave-scheduled engine in production, the bare
//!   simulator in tests).
//! * **L2 — checks-pass**: re-evaluating the full validated check set over
//!   the repaired program finds zero violating instances.
//! * **L3 — intent-preserved**: the [`deception`] detector diffs original
//!   and repaired programs against the typed check IR and rejects
//!   *deceptive fixes* — deleted resources, dropped references, dropped
//!   attributes the original set intentionally, and narrowed network scope
//!   (CIDR/port ranges shrunk by a fix that no violated check asked for).
//!
//! Rejected candidates are excluded with a blocking constraint and the
//! search re-solves; prior models re-seed each re-solve through
//! [`Problem::seed_bound`](zodiac_solver::Problem::seed_bound) (pure
//! pruning, identical results — the PR 7 incremental machinery). Every
//! proposal and verdict is emitted as a provenance lifecycle event keyed by
//! the [`repair_fingerprint`], so `zodiac explain <fp> --trace` replays the
//! layer-by-layer decision.

pub mod deception;
#[doc(hidden)]
pub mod fixtures;
mod search;

pub use deception::{detect as deceptive_fixes, Deception, DeceptionKind};

use std::fmt;
use zodiac_cloud::{DeployOracle, DeployOutcome};
use zodiac_graph::ResourceGraph;
use zodiac_kb::KnowledgeBase;
use zodiac_model::{AttrPath, Program, ResourceId, Symbol, Value};
use zodiac_obs::{Lifecycle, Obs};
use zodiac_spec::{violations, Check, EvalContext};
use zodiac_validation::ground;

/// Repair search configuration.
#[derive(Debug, Clone)]
pub struct RepairConfig {
    /// Maximum attribute edits an accepted repair may contain. The search
    /// is penalty-minimal, so a first candidate over this budget proves no
    /// smaller repair exists.
    pub max_edits: usize,
    /// Maximum candidates proposed before giving up (each rejection adds a
    /// blocking constraint and re-solves).
    pub max_candidates: usize,
}

impl Default for RepairConfig {
    fn default() -> Self {
        RepairConfig {
            max_edits: 8,
            max_candidates: 6,
        }
    }
}

/// The three oracle layers, in gating order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OracleLayer {
    /// L1: the repaired program deploys successfully.
    DeploySucceeds,
    /// L2: the repaired program violates none of the checks.
    ChecksPass,
    /// L3: the fix is not deceptive (intent preservation).
    IntentPreserved,
}

impl OracleLayer {
    /// 1-based layer index used in provenance events and reports.
    pub fn index(self) -> u64 {
        match self {
            OracleLayer::DeploySucceeds => 1,
            OracleLayer::ChecksPass => 2,
            OracleLayer::IntentPreserved => 3,
        }
    }

    /// Stable human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            OracleLayer::DeploySucceeds => "deploy-succeeds",
            OracleLayer::ChecksPass => "checks-pass",
            OracleLayer::IntentPreserved => "intent-preserved",
        }
    }
}

/// One attribute edit of a repair. `from`/`to` are the values as written on
/// the resource (single-element list wrapping included); `to == Null` means
/// the attribute is removed, `from == Null` that it was absent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RepairEdit {
    /// The edited resource.
    pub resource: ResourceId,
    /// Dotted attribute path, interned.
    pub attr: Symbol,
    /// Original on-resource value (`Null` when absent).
    pub from: Value,
    /// New on-resource value (`Null` removes the attribute).
    pub to: Value,
}

fn fmt_value(v: &Value, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    match v {
        Value::Null => write!(f, "null"),
        Value::Str(s) => write!(f, "'{s}'"),
        Value::Int(i) => write!(f, "{i}"),
        Value::Bool(b) => write!(f, "{b}"),
        Value::List(items) => {
            write!(f, "[")?;
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                fmt_value(item, f)?;
            }
            write!(f, "]")
        }
        Value::Map(_) => write!(f, "{{…}}"),
        Value::Ref(r) => write!(f, "{}.{}.{}", r.rtype, r.name, r.attr),
    }
}

impl fmt::Display for RepairEdit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "~ {} {}: ", self.resource, self.attr)?;
        fmt_value(&self.from, f)?;
        write!(f, " -> ")?;
        fmt_value(&self.to, f)
    }
}

/// One oracle layer's judgment of a candidate.
#[derive(Debug, Clone)]
pub struct LayerVerdict {
    /// Which layer judged.
    pub layer: OracleLayer,
    /// Whether the candidate passed.
    pub passed: bool,
    /// Failure reason (machine-readable prefix + detail), empty on pass.
    pub reason: String,
}

/// One proposed candidate and the verdicts it collected (layers after the
/// first failure are not evaluated).
#[derive(Debug, Clone)]
pub struct RepairAttempt {
    /// The candidate's edits relative to the original program.
    pub edits: Vec<RepairEdit>,
    /// Layer verdicts, in gating order.
    pub layers: Vec<LayerVerdict>,
}

impl RepairAttempt {
    /// The verdict that rejected this candidate, if any.
    pub fn rejected_at(&self) -> Option<&LayerVerdict> {
        self.layers.iter().find(|v| !v.passed)
    }

    /// True when all three layers passed.
    pub fn accepted(&self) -> bool {
        self.layers.len() == 3 && self.layers.iter().all(|v| v.passed)
    }
}

/// Final outcome of a repair request.
#[derive(Debug, Clone)]
pub enum RepairOutcome {
    /// The program violated no checks; nothing to repair.
    Clean,
    /// A candidate cleared all three oracle layers.
    Accepted {
        /// The repaired program.
        program: Program,
        /// Its edits relative to the original.
        edits: Vec<RepairEdit>,
    },
    /// Every proposed candidate was rejected by an oracle layer.
    Exhausted,
    /// No candidate could be proposed at all (UNSAT encoding, no mutable
    /// attributes, or minimal repair over the edit budget).
    Unrepairable {
        /// Why the search gave up.
        reason: String,
    },
}

/// How repair re-solves used previous models (`repair.solver.*` telemetry).
#[derive(Debug, Clone, Copy, Default)]
pub struct RepairStats {
    /// Solves where a previous model seeded the search with a penalty bound.
    pub seeded: u64,
    /// Solves with no usable previous model.
    pub cold: u64,
}

/// Everything a repair request produced, for reporting and provenance.
#[derive(Debug, Clone)]
pub struct RepairReport {
    /// The repair fingerprint (program × check set) keying all lifecycle
    /// events of this request.
    pub fingerprint: u64,
    /// Checks the original program violates, in check-set order.
    pub violated: Vec<Check>,
    /// Total violating instances in the original program.
    pub violations: usize,
    /// Final outcome.
    pub outcome: RepairOutcome,
    /// Every proposed candidate with its layer verdicts (the accepted one
    /// last, when there is one).
    pub attempts: Vec<RepairAttempt>,
    /// Solver seeding statistics.
    pub stats: RepairStats,
}

impl RepairReport {
    /// The accepted repaired program, if the outcome is `Accepted`.
    pub fn accepted_program(&self) -> Option<&Program> {
        match &self.outcome {
            RepairOutcome::Accepted { program, .. } => Some(program),
            _ => None,
        }
    }

    /// True for `Clean` and `Accepted` outcomes.
    pub fn resolved(&self) -> bool {
        matches!(
            self.outcome,
            RepairOutcome::Clean | RepairOutcome::Accepted { .. }
        )
    }
}

/// Folds a canonical 128-bit program fingerprint to the 64 bits carried by
/// lifecycle events (the daemon's folding, shared so ledgers line up).
pub fn fold_program_fingerprint(fp: u128) -> u64 {
    (fp as u64) ^ ((fp >> 64) as u64)
}

/// The identity of one repair request: FNV-1a over the program's canonical
/// fingerprint and the check-set key. A repair is only meaningful relative
/// to the set it was asked to satisfy, so both halves key the provenance
/// ledger (`zodiac explain <repair-fp> --trace FILE`).
pub fn repair_fingerprint(program: &Program, checks: &[Check]) -> u64 {
    const OFFSET: u64 = 0xcbf29ce484222325;
    const PRIME: u64 = 0x100000001b3;
    let mut hash = OFFSET;
    let program_fp = zodiac_deployer::fingerprint(program);
    for byte in program_fp
        .to_le_bytes()
        .into_iter()
        .chain(zodiac_spec::check_set_key(checks).to_le_bytes())
    {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

/// Applies a list of edits to a fresh clone of `program` (the inverse of
/// [`diff_edits`]; used by the minimality property to test edit subsets).
pub fn apply_edits(program: &Program, edits: &[RepairEdit]) -> Program {
    let mut out = program.clone();
    for edit in edits {
        let Some(resource) = out.find_mut(&edit.resource) else {
            continue;
        };
        let path: AttrPath = match edit.attr.parse() {
            Ok(p) => p,
            Err(_) => continue,
        };
        if matches!(edit.to, Value::Null) {
            ground::remove_path(resource, &path);
        } else {
            ground::set_normalized(resource, &path.0, edit.to.clone());
        }
    }
    out
}

/// Diffs two programs into attribute edits at top-level granularity.
/// Resource additions and deletions are *not* representable as edits — the
/// L3 detector judges those directly from the programs.
pub fn diff_edits(original: &Program, candidate: &Program) -> Vec<RepairEdit> {
    let mut out = Vec::new();
    let mut ids: Vec<ResourceId> = original.resources().iter().map(|r| r.id()).collect();
    ids.sort();
    for id in ids {
        let (Some(before), Some(after)) = (original.find(&id), candidate.find(&id)) else {
            continue;
        };
        let mut keys: Vec<&String> = before.attrs.keys().chain(after.attrs.keys()).collect();
        keys.sort();
        keys.dedup();
        for key in keys {
            let from = before.attrs.get(key).cloned().unwrap_or(Value::Null);
            let to = after.attrs.get(key).cloned().unwrap_or(Value::Null);
            if from != to {
                out.push(RepairEdit {
                    resource: id.clone(),
                    attr: Symbol::intern(key),
                    from,
                    to,
                });
            }
        }
    }
    out
}

/// Runs a candidate program through the oracle stack L1 → L2 → L3, stopping
/// at the first failure, emitting one `OracleVerdict` event per evaluated
/// layer and a terminal `RepairAccepted`/`RepairRejected` keyed by `fp`.
///
/// `violated` is the set of checks the *original* program violates — the L3
/// detector only excuses removals those checks demand.
#[allow(clippy::too_many_arguments)]
pub fn verify_candidate<D: DeployOracle + ?Sized>(
    original: &Program,
    candidate: &Program,
    edits: Vec<RepairEdit>,
    checks: &[Check],
    violated: &[Check],
    kb: &KnowledgeBase,
    oracle: &D,
    obs: &Obs,
    fp: u64,
) -> RepairAttempt {
    obs.lifecycle(
        fp,
        Lifecycle::RepairProposed {
            program: fold_program_fingerprint(zodiac_deployer::fingerprint(original)),
            edits: edits.len() as u64,
        },
    );
    let mut layers = Vec::new();
    let mut verdict = |layer: OracleLayer, passed: bool, reason: String| {
        obs.lifecycle(
            fp,
            Lifecycle::OracleVerdict {
                layer: layer.index(),
                pass: passed,
                detail: reason.clone(),
            },
        );
        layers.push(LayerVerdict {
            layer,
            passed,
            reason,
        });
        passed
    };

    // L1: deploy-succeeds.
    let (report, _cached) = oracle.deploy_annotated(candidate);
    let l1 = match &report.outcome {
        DeployOutcome::Success => verdict(OracleLayer::DeploySucceeds, true, String::new()),
        DeployOutcome::Failure { phase, rule_id, .. } => verdict(
            OracleLayer::DeploySucceeds,
            false,
            format!("deploy failed: {rule_id} at {phase}"),
        ),
    };

    // L2: all checks pass on the repaired program.
    let l2 = l1 && {
        let graph = ResourceGraph::build(candidate.clone());
        let ctx = EvalContext {
            graph: &graph,
            kb: Some(kb),
        };
        let mut remaining = 0usize;
        let mut first: Option<&Check> = None;
        for check in checks {
            let n = violations(check, ctx).len();
            if n > 0 {
                remaining += n;
                first.get_or_insert(check);
            }
        }
        match first {
            None => verdict(OracleLayer::ChecksPass, true, String::new()),
            Some(check) => verdict(
                OracleLayer::ChecksPass,
                false,
                format!("{remaining} violation(s) remain, first: `{check}`"),
            ),
        }
    };

    // L3: the fix preserves intent (deceptive-fix detector).
    if l2 {
        let deceptions = deception::detect(original, candidate, violated, kb);
        match deceptions.first() {
            None => {
                verdict(OracleLayer::IntentPreserved, true, String::new());
            }
            Some(d) => {
                verdict(OracleLayer::IntentPreserved, false, d.to_string());
            }
        }
    }

    let attempt = RepairAttempt { edits, layers };
    match attempt.rejected_at() {
        None => obs.lifecycle(
            fp,
            Lifecycle::RepairAccepted {
                edits: attempt.edits.len() as u64,
            },
        ),
        Some(v) => obs.lifecycle(
            fp,
            Lifecycle::RepairRejected {
                layer: v.layer.index(),
                reason: v.reason.clone(),
            },
        ),
    }
    attempt
}

/// Repairs `program` against `checks`: minimal soft-constraint search over
/// KB-derived attribute domains, each candidate gated by the three-layer
/// oracle stack. See the crate docs for the full architecture.
pub fn repair_program<D: DeployOracle + ?Sized>(
    program: &Program,
    checks: &[Check],
    kb: &KnowledgeBase,
    oracle: &D,
    cfg: &RepairConfig,
    obs: &Obs,
) -> RepairReport {
    let t0 = std::time::Instant::now();
    let report = search::run(program, checks, kb, oracle, cfg, obs);
    // Serving-boundary telemetry: `op.repair.us` feeds rolling latency
    // windows when a RollingRecorder sink is attached; a search that could
    // not produce an accepted fix for a violating program counts as an
    // error for the windowed error rate.
    obs.histogram("op.repair.us", t0.elapsed().as_micros() as u64);
    if matches!(
        report.outcome,
        RepairOutcome::Exhausted | RepairOutcome::Unrepairable { .. }
    ) {
        obs.counter("op.repair.errors", 1);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use zodiac_model::Resource;

    #[test]
    fn repair_fingerprint_depends_on_program_and_check_set() {
        let p1 = Program::new().with(Resource::new("azurerm_public_ip", "ip").with("name", "a"));
        let p2 = Program::new().with(Resource::new("azurerm_public_ip", "ip").with("name", "b"));
        let c1 = vec![
            zodiac_spec::parse_check("let r:IP in r.sku == 'Standard' => r.sku != null").unwrap(),
        ];
        let c2: Vec<Check> = Vec::new();
        assert_ne!(repair_fingerprint(&p1, &c1), repair_fingerprint(&p2, &c1));
        assert_ne!(repair_fingerprint(&p1, &c1), repair_fingerprint(&p1, &c2));
        assert_eq!(repair_fingerprint(&p1, &c1), repair_fingerprint(&p1, &c1));
    }

    #[test]
    fn diff_and_apply_round_trip() {
        let original = Program::new().with(
            Resource::new("azurerm_public_ip", "ip")
                .with("name", "ip1")
                .with("sku", "Standard")
                .with("allocation_method", "Dynamic"),
        );
        let mut fixed = original.clone();
        fixed
            .find_mut(&ResourceId::new("azurerm_public_ip", "ip"))
            .unwrap()
            .attrs
            .insert("allocation_method".into(), Value::s("Static"));
        let edits = diff_edits(&original, &fixed);
        assert_eq!(edits.len(), 1);
        assert_eq!(edits[0].from, Value::s("Dynamic"));
        assert_eq!(edits[0].to, Value::s("Static"));
        assert_eq!(apply_edits(&original, &edits), fixed);
    }

    #[test]
    fn edit_display_renders_removal_as_null() {
        let edit = RepairEdit {
            resource: ResourceId::new("azurerm_linux_virtual_machine", "vm"),
            attr: Symbol::intern("priority"),
            from: Value::s("Spot"),
            to: Value::Null,
        };
        assert_eq!(
            edit.to_string(),
            "~ azurerm_linux_virtual_machine.vm priority: 'Spot' -> null"
        );
    }
}
