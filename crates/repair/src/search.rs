//! The repair search: the mutation encoding of `zodiac_validation::mutate`
//! run in reverse.
//!
//! Mutation asks the solver for the cheapest assignment violating one
//! target check while conforming to the rest; repair asks for the cheapest
//! assignment satisfying **every** check at once. Both share the grounding
//! core in [`zodiac_validation::ground`]: symbolic attributes over
//! KB-derived domains, weight-1 prefer-original softs (so branch-and-bound
//! minimises the edit count), and a [`Grounder`] folding check instances
//! into constraints.
//!
//! The mutable set is the *coupled closure* of the violation witnesses:
//! resources bound in violating instances, plus — transitively — any
//! resource a cond-holding instance of any check binds together with one.
//! Without the closure, fixes that ripple through conforming instances are
//! spuriously UNSAT: re-ranging a vnet to escape a peering overlap moves
//! the containment target of every one of its subnets.
//!
//! Re-solves are seeded incrementally: a relaxed *stage-A* problem (only
//! the violated checks hard) is solved first and its model — when it
//! happens to satisfy the full problem too — seeds the main solve with a
//! feasible penalty bound through [`Problem::seed_bound`]. Rejected
//! candidates add a blocking constraint and re-solve under the same
//! seeding; seeding is pure pruning, so outcomes match a cold search
//! exactly (the PR 7 machinery, pointed the other way).

use std::collections::{BTreeMap, BTreeSet};
use zodiac_cloud::DeployOracle;
use zodiac_graph::ResourceGraph;
use zodiac_kb::KnowledgeBase;
use zodiac_model::{Program, Resource, ResourceId, Symbol, Value};
use zodiac_obs::Obs;
use zodiac_solver::{solve, solve_with_bound, Constraint, Problem, Term, VarId};
use zodiac_spec::{Check, CmpOp, EvalContext, Expr, Instance, Val};
use zodiac_validation::ground::{self, Grounder, SymbolicAttr};

use crate::{
    repair_fingerprint, verify_candidate, RepairConfig, RepairEdit, RepairOutcome, RepairReport,
    RepairStats,
};

/// Cap on containment-derived candidate subnets per endpoint (the solver
/// needs alternatives when sibling-overlap constraints exclude the first).
const MAX_SUBNET_CANDIDATES: usize = 8;

pub(crate) fn run<D: DeployOracle + ?Sized>(
    program: &Program,
    checks: &[Check],
    kb: &KnowledgeBase,
    oracle: &D,
    cfg: &RepairConfig,
    obs: &Obs,
) -> RepairReport {
    let fp = repair_fingerprint(program, checks);
    let graph = ResourceGraph::build(program.clone());
    let ctx = EvalContext {
        graph: &graph,
        kb: Some(kb),
    };

    // ---- what is broken --------------------------------------------------
    let mut violated: Vec<Check> = Vec::new();
    let mut violating: Vec<(&Check, Instance)> = Vec::new();
    for check in checks {
        let before = violating.len();
        for instance in zodiac_spec::violations(check, ctx) {
            violating.push((check, instance));
        }
        if violating.len() > before {
            violated.push(check.clone());
        }
    }
    let violation_count = violating.len();
    let mut report = RepairReport {
        fingerprint: fp,
        violated: violated.clone(),
        violations: violation_count,
        outcome: RepairOutcome::Clean,
        attempts: Vec::new(),
        stats: RepairStats::default(),
    };
    if violated.is_empty() {
        return report;
    }

    // ---- symbolic attributes over the violation witnesses ----------------
    // Resources bound in some violating instance seed the mutable set (any
    // repair must change how at least one violating instance evaluates).
    let mut witnesses: BTreeSet<ResourceId> = BTreeSet::new();
    for (_, instance) in &violating {
        for &node in instance.binding.values() {
            witnesses.insert(graph.resource(node).id());
        }
    }
    // A fix on a witness can force coupled *conforming* instances to move
    // with it — escape a peering overlap by re-ranging a vnet and its
    // subnets must follow into the new range — so the encoding closes over
    // check-coupled resources: every cond-holding instance sharing a
    // resource with the witness set contributes its bound resources and
    // its check's attributes as additional (prefer-original) fix levers.
    let mut bound_sets: Vec<(usize, Vec<ResourceId>)> = Vec::new();
    for (index, check) in checks.iter().enumerate() {
        for instance in zodiac_spec::instances(check, ctx) {
            if instance.cond {
                bound_sets.push((
                    index,
                    instance
                        .binding
                        .values()
                        .map(|&n| graph.resource(n).id())
                        .collect(),
                ));
            }
        }
    }
    let mut coupled: BTreeSet<usize> = checks
        .iter()
        .enumerate()
        .filter(|(_, c)| violated.contains(c))
        .map(|(i, _)| i)
        .collect();
    loop {
        let mut grew = false;
        for (index, bound) in &bound_sets {
            if bound.iter().any(|id| witnesses.contains(id)) {
                for id in bound {
                    grew |= witnesses.insert(id.clone());
                }
                grew |= coupled.insert(*index);
            }
        }
        if !grew {
            break;
        }
    }
    // Attributes the violated *or coupled* checks mention are the fix
    // levers; the full set then grounds hard so a fix never breaks a
    // conforming check.
    let relevant = ground::relevant_attrs(coupled.iter().map(|&i| &checks[i]));
    let mut cross = repair_cross(&violating, &graph);
    // Propagate candidate values through the coupled conforming instances:
    // a neighbour range offered to a vnet's address space yields sub-range
    // candidates for the prefixes of its subnets, and so on transitively.
    for _ in 0..2 {
        let snapshot = cross.clone();
        for &index in &coupled {
            let check = &checks[index];
            for instance in zodiac_spec::instances(check, ctx) {
                if instance.cond {
                    collect_cross(&check.stmt, &instance, &graph, &snapshot, &mut cross);
                }
            }
        }
    }
    let removable = |path: &str| violated.iter().any(|c| check_mentions(c, path));
    let corpus = std::slice::from_ref(program);

    let mut problem = Problem::new();
    let mut vars: BTreeMap<(ResourceId, Symbol), (VarId, SymbolicAttr)> = BTreeMap::new();
    let symbolic_ids: Vec<ResourceId> = program
        .resources()
        .iter()
        .map(Resource::id)
        .filter(|id| witnesses.contains(id))
        .collect();
    for id in &symbolic_ids {
        let Some(resource) = program.find(id) else {
            continue;
        };
        for sym in ground::symbolic_attrs(resource, kb, corpus, &relevant, &cross, &removable) {
            let var = problem.add_var(sym.domain.clone());
            problem.prefer(
                Constraint::eq(Term::Var(var), Term::Const(sym.original.clone())),
                1,
            );
            vars.insert((id.clone(), sym.attr), (var, sym));
        }
    }
    if vars.is_empty() {
        report.outcome = RepairOutcome::Unrepairable {
            reason: "no mutable attributes are relevant to the violated checks".into(),
        };
        return report;
    }
    // Every violating instance must touch a symbolic resource, or the
    // encoding cannot even express fixing it.
    for (check, instance) in &violating {
        let touches = instance.binding.values().any(|&n| {
            let id = graph.resource(n).id();
            vars.keys().any(|(rid, _)| rid == &id)
        });
        if !touches {
            report.outcome = RepairOutcome::Unrepairable {
                reason: format!("a violating instance of `{check}` has no mutable attributes"),
            };
            return report;
        }
    }

    let var_ids: BTreeMap<(ResourceId, Symbol), VarId> =
        vars.iter().map(|(k, (v, _))| (k.clone(), *v)).collect();
    let grounder = Grounder {
        graph: &graph,
        kb,
        vars: &var_ids,
    };

    // ---- stage A: relaxed problem (violated checks only) -----------------
    // Its model seeds the full solve with a feasible penalty bound whenever
    // fixing the violations happens not to disturb any conforming check —
    // the common case, and the repair-side reuse of incremental solving.
    let mut stage_a = Problem::new();
    let mut by_var: Vec<&(VarId, SymbolicAttr)> = vars.values().collect();
    by_var.sort_by_key(|(var, _)| *var);
    for (var, sym) in by_var {
        let stage_var = stage_a.add_var(sym.domain.clone());
        debug_assert_eq!(*var, stage_var);
        stage_a.prefer(
            Constraint::eq(Term::Var(*var), Term::Const(sym.original.clone())),
            1,
        );
    }
    for check in &violated {
        for grounded in grounder.ground_all(check, ctx) {
            stage_a.require(grounded);
        }
    }
    let mut seeds: Vec<Vec<Value>> = Vec::new();
    match solve(&stage_a).solution() {
        Some(solution) => seeds.push(solution.assignment.clone()),
        None => {
            report.outcome = RepairOutcome::Unrepairable {
                reason: "the violated checks are unsatisfiable over the mutable attribute domains"
                    .into(),
            };
            return report;
        }
    }

    // ---- full problem: every check hard ----------------------------------
    for check in checks {
        for grounded in grounder.ground_all(check, ctx) {
            problem.require(grounded);
        }
    }

    // ---- enumerate candidates, gate each through the oracle stack --------
    for _ in 0..cfg.max_candidates {
        let outcome = match seeds.iter().find_map(|m| problem.seed_bound(m)) {
            Some(bound) => {
                report.stats.seeded += 1;
                solve_with_bound(&problem, Some(bound))
            }
            None => {
                report.stats.cold += 1;
                solve(&problem)
            }
        };
        let Some(solution) = outcome.solution() else {
            report.outcome = if report.attempts.is_empty() {
                RepairOutcome::Unrepairable {
                    reason: "the check set is unsatisfiable over the mutable attribute domains"
                        .into(),
                }
            } else {
                RepairOutcome::Exhausted
            };
            return report;
        };
        let model = solution.assignment.clone();

        let mut candidate = program.clone();
        let mut edits: Vec<RepairEdit> = Vec::new();
        for ((rid, _), (var, sym)) in &vars {
            let value = &model[*var];
            if value != &sym.original {
                edits.push(RepairEdit {
                    resource: rid.clone(),
                    attr: sym.attr,
                    from: on_resource(&sym.original, sym.wrap_list),
                    to: on_resource(value, sym.wrap_list),
                });
            }
            ground::apply_value(&mut candidate, rid, sym, value.clone());
        }
        if edits.is_empty() {
            // The grounding admitted the original assignment: evaluator and
            // encoding disagree on this program; bail rather than loop.
            report.outcome = RepairOutcome::Unrepairable {
                reason: "the solver proposed no change for a violating program".into(),
            };
            return report;
        }
        if edits.len() > cfg.max_edits {
            // The search is penalty-minimal, so the first over-budget
            // candidate proves no smaller repair exists; blocked re-solves
            // only grow.
            report.outcome = if report.attempts.is_empty() {
                RepairOutcome::Unrepairable {
                    reason: format!(
                        "minimal repair needs {} edits (budget {})",
                        edits.len(),
                        cfg.max_edits
                    ),
                }
            } else {
                RepairOutcome::Exhausted
            };
            return report;
        }

        let attempt = verify_candidate(
            program, &candidate, edits, checks, &violated, kb, oracle, obs, fp,
        );
        let accepted = attempt.accepted();
        report.attempts.push(attempt);
        if accepted {
            let edits = report
                .attempts
                .last()
                .map(|a| a.edits.clone())
                .unwrap_or_default();
            report.outcome = RepairOutcome::Accepted {
                program: candidate,
                edits,
            };
            return report;
        }
        // Exclude this exact assignment and re-solve.
        let conj: Vec<Constraint> = vars
            .values()
            .map(|(var, _)| Constraint::eq(Term::Var(*var), Term::Const(model[*var].clone())))
            .collect();
        problem.require(Constraint::Not(Box::new(Constraint::And(conj))));
    }
    report.outcome = RepairOutcome::Exhausted;
    report
}

/// The value as written on the resource: re-wraps single-element lists.
fn on_resource(v: &Value, wrap_list: bool) -> Value {
    if wrap_list && !matches!(v, Value::Null) {
        Value::List(vec![v.clone()])
    } else {
        v.clone()
    }
}

/// True when any endpoint of the check (condition or statement) reads
/// `attr` — the repair-side nullability gate: removal is a repair lever
/// only for attributes some violated check actually depends on.
fn check_mentions(check: &Check, attr: &str) -> bool {
    fn val_mentions(v: &Val, attr: &str) -> bool {
        match v {
            Val::Endpoint { attr: a, .. } => a == attr,
            Val::Length(inner) => val_mentions(inner, attr),
            _ => false,
        }
    }
    fn expr_mentions(e: &Expr, attr: &str) -> bool {
        match e {
            Expr::Cmp { lhs, rhs, .. } => val_mentions(lhs, attr) || val_mentions(rhs, attr),
            Expr::CoConn { first, second } | Expr::CoPath { first, second } => {
                expr_mentions(first, attr) || expr_mentions(second, attr)
            }
            _ => false,
        }
    }
    expr_mentions(&check.cond, attr) || expr_mentions(&check.stmt, attr)
}

/// Repair-specific cross values: candidate values each endpoint of a
/// violated comparison borrows from the *other* side, so the solver can
/// force equality, containment, or overlap-escape that KB-derived domains
/// alone cannot express.
fn repair_cross(
    violating: &[(&Check, Instance)],
    graph: &ResourceGraph,
) -> BTreeMap<(ResourceId, Symbol), Vec<Value>> {
    let mut out: BTreeMap<(ResourceId, Symbol), Vec<Value>> = BTreeMap::new();
    let no_extra = BTreeMap::new();
    for (check, instance) in violating {
        collect_cross(&check.stmt, instance, graph, &no_extra, &mut out);
    }
    out
}

fn collect_cross(
    expr: &Expr,
    instance: &Instance,
    graph: &ResourceGraph,
    extra: &BTreeMap<(ResourceId, Symbol), Vec<Value>>,
    out: &mut BTreeMap<(ResourceId, Symbol), Vec<Value>>,
) {
    match expr {
        Expr::CoConn { first, second } | Expr::CoPath { first, second } => {
            collect_cross(first, instance, graph, extra, out);
            collect_cross(second, instance, graph, extra, out);
        }
        Expr::Cmp {
            op,
            lhs: Val::Endpoint { var: lv, attr: la },
            rhs: Val::Endpoint { var: rv, attr: ra },
            negated,
        } => {
            // Each endpoint resolves to its current values plus any
            // candidate values earlier rounds already offered it, so
            // candidates propagate across coupled instances.
            let resolve = |var: &Symbol, attr: &Symbol| -> (Option<ResourceId>, Vec<Value>) {
                let Some(&node) = instance.binding.get(var) else {
                    return (None, Vec::new());
                };
                let resource = graph.resource(node);
                let segs: Vec<String> = attr.split('.').map(str::to_string).collect();
                let mut vals = zodiac_spec::eval::resolve_multi(resource, &segs);
                if let Some(candidates) = extra.get(&(resource.id(), *attr)) {
                    for v in candidates {
                        if !vals.contains(v) {
                            vals.push(v.clone());
                        }
                    }
                }
                (Some(resource.id()), vals)
            };
            let (l_id, l_vals) = resolve(lv, la);
            let (r_id, r_vals) = resolve(rv, ra);
            let mut push = |id: &Option<ResourceId>, attr: &Symbol, vals: Vec<Value>| {
                if let Some(id) = id {
                    let entry = out.entry((id.clone(), *attr)).or_default();
                    for v in vals {
                        if !matches!(v, Value::Null) && !entry.contains(&v) {
                            entry.push(v);
                        }
                    }
                }
            };
            // Each side always borrows the other's current values (forced
            // equality; also turns `contains` into the equal-range fix).
            push(&l_id, la, r_vals.clone());
            push(&r_id, ra, l_vals.clone());
            match (op, negated) {
                (CmpOp::Contain, false) => {
                    // lhs must contain rhs: offer rhs sub-ranges of each lhs
                    // range, at rhs's current prefix when it has one.
                    let rhs_prefix = r_vals
                        .iter()
                        .find_map(|v| v.as_str().and_then(zodiac_model::cidr::parse_opt))
                        .map(|c| c.prefix());
                    let mut extra = Vec::new();
                    for v in &l_vals {
                        let Some(container) = v.as_str().and_then(zodiac_model::cidr::parse_opt)
                        else {
                            continue;
                        };
                        let prefix = rhs_prefix
                            .unwrap_or(container.prefix())
                            .max(container.prefix());
                        for sub in container
                            .subnets(prefix)
                            .into_iter()
                            .take(MAX_SUBNET_CANDIDATES)
                        {
                            extra.push(Value::s(sub.to_string()));
                        }
                    }
                    push(&r_id, ra, extra);
                }
                (CmpOp::Overlap, true) => {
                    // The ranges must stop overlapping: offer each side the
                    // other's neighbours.
                    let neighbours = |vals: &[Value]| -> Vec<Value> {
                        let mut out = Vec::new();
                        for v in vals {
                            if let Some(c) = v.as_str().and_then(zodiac_model::cidr::parse_opt) {
                                out.push(Value::s(c.adjacent().to_string()));
                                out.push(Value::s(c.adjacent().adjacent().to_string()));
                            }
                        }
                        out
                    };
                    push(&l_id, la, neighbours(&r_vals));
                    push(&r_id, ra, neighbours(&l_vals));
                }
                _ => {}
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{OracleLayer, RepairOutcome};
    use zodiac_cloud::CloudSim;
    use zodiac_spec::parse_check;

    fn kb() -> KnowledgeBase {
        zodiac_kb::azure_kb()
    }

    fn repair(program: &Program, checks: &[Check]) -> RepairReport {
        let sim = CloudSim::new_azure();
        crate::repair_program(
            program,
            checks,
            &kb(),
            &sim,
            &RepairConfig::default(),
            &Obs::null(),
        )
    }

    fn spot_check() -> Check {
        parse_check("let v:VM in v.priority == 'Spot' => v.eviction_policy != null").unwrap()
    }

    #[test]
    fn clean_program_needs_no_repair() {
        let program = crate::fixtures::network();
        let report = repair(&program, &[spot_check()]);
        assert!(matches!(report.outcome, RepairOutcome::Clean));
        assert!(report.attempts.is_empty());
    }

    #[test]
    fn repairs_spot_vm_with_single_edit() {
        let program = crate::fixtures::spot_vm_network();
        let report = repair(&program, &[spot_check()]);
        let RepairOutcome::Accepted {
            program: fixed,
            edits,
        } = &report.outcome
        else {
            panic!("expected accepted repair, got {:?}", report.outcome);
        };
        assert_eq!(edits.len(), 1, "minimal repair is one edit: {edits:?}");
        let graph = ResourceGraph::build(fixed.clone());
        let ctx = EvalContext {
            graph: &graph,
            kb: Some(&kb()),
        };
        assert!(zodiac_spec::holds(&spot_check(), ctx));
        // The accepted attempt passed all three layers.
        let attempt = report.attempts.last().unwrap();
        assert!(attempt.accepted());
        assert_eq!(
            attempt.layers.iter().map(|l| l.layer).collect::<Vec<_>>(),
            vec![
                OracleLayer::DeploySucceeds,
                OracleLayer::ChecksPass,
                OracleLayer::IntentPreserved
            ]
        );
    }

    #[test]
    fn repairs_subnet_outside_vnet_via_containment_cross() {
        let contain = parse_check(
            "let v:VPC, s:SUBNET in conn(s.virtual_network_name -> v.name) \
             => contain(v.address_space, s.address_prefixes)",
        )
        .unwrap();
        let program = crate::fixtures::with_attr(
            crate::fixtures::network(),
            "azurerm_subnet",
            "s",
            "address_prefixes",
            Value::List(vec![Value::s("10.99.0.0/24")]),
        );
        let report = repair(&program, std::slice::from_ref(&contain));
        let RepairOutcome::Accepted {
            program: fixed,
            edits,
        } = &report.outcome
        else {
            panic!("expected accepted repair, got {:?}", report.outcome);
        };
        assert_eq!(edits.len(), 1);
        let graph = ResourceGraph::build(fixed.clone());
        let ctx = EvalContext {
            graph: &graph,
            kb: Some(&kb()),
        };
        assert!(zodiac_spec::holds(&contain, ctx));
    }

    #[test]
    fn escaping_a_peering_overlap_drags_coupled_subnets_along() {
        // Two peered vnets share an address space; the only fix is to
        // re-range one vnet — which forces its subnet (bound only in a
        // *conforming* containment instance) to follow into the new range.
        // Without the coupled closure this grounding is spuriously UNSAT.
        let overlap = parse_check(
            "let r1:PEERING, r2:VPC, r3:VPC in \
             coconn(r1.remote_virtual_network_id -> r2.id, r1.virtual_network_name -> r3.name) \
             => !overlap(r2.address_space, r3.address_space)",
        )
        .unwrap();
        let contain = parse_check(
            "let v:VPC, s:SUBNET in conn(s.virtual_network_name -> v.name) \
             => contain(v.address_space, s.address_prefixes)",
        )
        .unwrap();
        let vnet = |name: &str| {
            Resource::new("azurerm_virtual_network", name)
                .with("name", format!("net-{name}"))
                .with("location", "eastus")
                .with(
                    "resource_group_name",
                    Value::r("azurerm_resource_group", "rg", "name"),
                )
                .with("address_space", Value::List(vec![Value::s("10.1.0.0/16")]))
        };
        let subnet = |name: &str, vnet: &str| {
            Resource::new("azurerm_subnet", name)
                .with("name", format!("snet-{name}"))
                .with(
                    "resource_group_name",
                    Value::r("azurerm_resource_group", "rg", "name"),
                )
                .with(
                    "virtual_network_name",
                    Value::r("azurerm_virtual_network", vnet, "name"),
                )
                .with(
                    "address_prefixes",
                    Value::List(vec![Value::s("10.1.1.0/24")]),
                )
        };
        let program = Program::new()
            .with(
                Resource::new("azurerm_resource_group", "rg")
                    .with("name", "rg1")
                    .with("location", "eastus"),
            )
            .with(vnet("vnet1"))
            .with(subnet("s1", "vnet1"))
            .with(vnet("vnet2"))
            .with(subnet("s2", "vnet2"))
            .with(
                Resource::new("azurerm_virtual_network_peering", "peer")
                    .with("name", "peer1")
                    .with(
                        "resource_group_name",
                        Value::r("azurerm_resource_group", "rg", "name"),
                    )
                    .with(
                        "virtual_network_name",
                        Value::r("azurerm_virtual_network", "vnet1", "name"),
                    )
                    .with(
                        "remote_virtual_network_id",
                        Value::r("azurerm_virtual_network", "vnet2", "id"),
                    ),
            );
        let checks = [overlap, contain];
        let report = repair(&program, &checks);
        let RepairOutcome::Accepted {
            program: fixed,
            edits,
        } = &report.outcome
        else {
            panic!("expected accepted repair, got {:?}", report.outcome);
        };
        assert_eq!(edits.len(), 2, "one vnet and its subnet move: {edits:?}");
        let graph = ResourceGraph::build(fixed.clone());
        let ctx = EvalContext {
            graph: &graph,
            kb: Some(&kb()),
        };
        for check in &checks {
            assert!(zodiac_spec::holds(check, ctx), "{check} must hold");
        }
    }

    #[test]
    fn unsatisfiable_domains_report_unrepairable() {
        // Degree constraints ground to constants (topology is fixed under
        // repair), so a violated degree check is unrepairable by design.
        let degree = parse_check("let v:VM in v.name != null => outdegree(v, NIC) >= 2").unwrap();
        let program = crate::fixtures::spot_vm_network();
        let report = repair(&program, &[degree, spot_check()]);
        assert!(
            matches!(report.outcome, RepairOutcome::Unrepairable { .. }),
            "got {:?}",
            report.outcome
        );
    }

    #[test]
    fn repair_is_deterministic() {
        let program = crate::fixtures::spot_vm_network();
        let a = repair(&program, &[spot_check()]);
        let b = repair(&program, &[spot_check()]);
        let (RepairOutcome::Accepted { edits: ea, .. }, RepairOutcome::Accepted { edits: eb, .. }) =
            (&a.outcome, &b.outcome)
        else {
            panic!("expected accepted repairs");
        };
        assert_eq!(ea, eb);
    }

    #[test]
    fn stage_a_seeds_the_full_solve() {
        let program = crate::fixtures::spot_vm_network();
        let report = repair(&program, &[spot_check()]);
        assert!(matches!(report.outcome, RepairOutcome::Accepted { .. }));
        assert_eq!(report.stats.seeded, 1, "stage-A model should seed");
        assert_eq!(report.stats.cold, 0);
    }
}
