//! Adversarial deceptive-fix corpus: hand-built "repairs" that clear the
//! shallow oracles — the program deploys (L1) and every check passes (L2) —
//! but subvert the intent of the original program. Each one must be caught
//! by the L3 deceptive-fix detector with the expected reason.
//!
//! The corpus covers the three classic dodges:
//! * **delete the resource** the check complains about (or its whole
//!   dependency chain);
//! * **widen-then-narrow / narrow scope** — shrink a CIDR or port range
//!   nobody asked to change, riding along with a legitimate fix;
//! * **comment-out equivalents** — drop attributes or references the
//!   original set intentionally.

use zodiac_graph::ResourceGraph;
use zodiac_model::{Program, Resource, Value};
use zodiac_obs::Obs;
use zodiac_repair::fixtures::{
    network, spot_vm_network, with_attr, without_attr, without_resource,
};
use zodiac_repair::{repair_fingerprint, verify_candidate, OracleLayer};
use zodiac_spec::{parse_check, violations, Check, EvalContext};

const SPOT: &str = "let v:VM in v.priority == 'Spot' => v.eviction_policy != null";
const CONTAIN: &str = "let v:VPC, s:SUBNET in conn(s.virtual_network_name -> v.name) \
                       => contain(v.address_space, s.address_prefixes)";
const STANDARD_IP: &str = "let r:IP in r.sku == 'Standard' => r.allocation_method == 'Static'";

/// The legitimate single-edit fix for [`SPOT`], applied before each
/// gratuitous deceptive change so L2 passes.
fn fix_spot(p: &Program) -> Program {
    with_attr(
        p.clone(),
        "azurerm_linux_virtual_machine",
        "vm",
        "eviction_policy",
        Value::s("Deallocate"),
    )
}

/// [`network`] with the subnet moved outside the VNet's address space —
/// violates [`CONTAIN`] (and real deployment, though only the candidate
/// must deploy).
fn stray_subnet() -> Program {
    with_attr(
        network(),
        "azurerm_subnet",
        "s",
        "address_prefixes",
        Value::List(vec![Value::s("10.99.0.0/24")]),
    )
}

/// An NSG with one allow-all inbound rule, attached to [`spot_vm_network`].
fn with_open_nsg(ports: &str, source: &str) -> Program {
    spot_vm_network().with(
        Resource::new("azurerm_network_security_group", "nsg")
            .with("name", "nsg1")
            .with("location", "eastus")
            .with(
                "resource_group_name",
                Value::r("azurerm_resource_group", "rg", "name"),
            )
            .with(
                "security_rule",
                Value::List(vec![Value::Map(
                    [
                        ("name".to_string(), Value::s("allow-in")),
                        ("direction".to_string(), Value::s("Inbound")),
                        ("access".to_string(), Value::s("Allow")),
                        ("protocol".to_string(), Value::s("Tcp")),
                        ("priority".to_string(), Value::Int(100)),
                        ("destination_port_range".to_string(), Value::s(ports)),
                        ("source_address_prefix".to_string(), Value::s(source)),
                    ]
                    .into_iter()
                    .collect(),
                )]),
            ),
    )
}

/// Rewrites the NSG rule's `field` to `value`.
fn narrow_nsg_rule(p: &Program, field: &str, value: &str) -> Program {
    let mut out = p.clone();
    let nsg = out
        .find_mut(&Resource::new("azurerm_network_security_group", "nsg").id())
        .expect("nsg present");
    let Some(Value::List(rules)) = nsg.attrs.get_mut("security_rule") else {
        panic!("nsg has rules");
    };
    let Value::Map(rule) = &mut rules[0] else {
        panic!("rule is a block");
    };
    rule.insert(field.to_string(), Value::s(value));
    out
}

struct DeceptiveCase {
    name: &'static str,
    checks: &'static [&'static str],
    original: fn() -> Program,
    candidate: fn(&Program) -> Program,
    /// Expected `DeceptionKind::slug()` prefixing the L3 rejection reason.
    expect: &'static str,
}

const CORPUS: &[DeceptiveCase] = &[
    // --- delete the resource ---------------------------------------------
    DeceptiveCase {
        name: "delete-the-violating-vm",
        checks: &[SPOT],
        original: spot_vm_network,
        candidate: |p| without_resource(p.clone(), "azurerm_linux_virtual_machine", "vm"),
        expect: "deleted-resource",
    },
    DeceptiveCase {
        name: "delete-the-subnet-dependency-chain",
        checks: &[CONTAIN],
        original: stray_subnet,
        candidate: |p| {
            // The subnet's deletion drags the NIC and VM along (their
            // references would dangle) — all three are deceptive.
            let p = without_resource(p.clone(), "azurerm_linux_virtual_machine", "vm");
            let p = without_resource(p, "azurerm_network_interface", "nic");
            without_resource(p, "azurerm_subnet", "s")
        },
        expect: "deleted-resource",
    },
    DeceptiveCase {
        name: "delete-the-noncompliant-public-ip",
        checks: &[STANDARD_IP],
        original: || {
            network().with(
                Resource::new("azurerm_public_ip", "ip")
                    .with("name", "ip1")
                    .with("location", "eastus")
                    .with(
                        "resource_group_name",
                        Value::r("azurerm_resource_group", "rg", "name"),
                    )
                    .with("sku", "Standard")
                    .with("allocation_method", "Dynamic"),
            )
        },
        candidate: |p| without_resource(p.clone(), "azurerm_public_ip", "ip"),
        expect: "deleted-resource",
    },
    // --- comment-out equivalents: attribute and reference drops ----------
    DeceptiveCase {
        name: "drop-unmentioned-zone-alongside-the-fix",
        checks: &[SPOT],
        original: || {
            with_attr(
                spot_vm_network(),
                "azurerm_linux_virtual_machine",
                "vm",
                "zone",
                Value::s("1"),
            )
        },
        candidate: |p| without_attr(fix_spot(p), "azurerm_linux_virtual_machine", "vm", "zone"),
        expect: "dropped-attr",
    },
    DeceptiveCase {
        name: "drop-unmentioned-admin-password",
        checks: &[SPOT],
        original: spot_vm_network,
        candidate: |p| {
            without_attr(
                fix_spot(p),
                "azurerm_linux_virtual_machine",
                "vm",
                "admin_password",
            )
        },
        expect: "dropped-attr",
    },
    DeceptiveCase {
        name: "drop-nested-os-disk-name",
        checks: &[SPOT],
        original: || {
            let p = spot_vm_network();
            let mut out = p.clone();
            let vm = out
                .find_mut(&Resource::new("azurerm_linux_virtual_machine", "vm").id())
                .unwrap();
            let Some(Value::Map(disk)) = vm.attrs.get_mut("os_disk") else {
                panic!("vm has os_disk");
            };
            disk.insert("name".to_string(), Value::s("osdisk1"));
            out
        },
        candidate: |p| {
            let mut out = fix_spot(p);
            let vm = out
                .find_mut(&Resource::new("azurerm_linux_virtual_machine", "vm").id())
                .unwrap();
            let Some(Value::Map(disk)) = vm.attrs.get_mut("os_disk") else {
                panic!("vm has os_disk");
            };
            disk.remove("name");
            out
        },
        expect: "dropped-attr",
    },
    DeceptiveCase {
        name: "disconnect-unmentioned-availability-set",
        checks: &[SPOT],
        original: || {
            let p = spot_vm_network().with(
                Resource::new("azurerm_availability_set", "avset")
                    .with("name", "avset1")
                    .with("location", "eastus")
                    .with(
                        "resource_group_name",
                        Value::r("azurerm_resource_group", "rg", "name"),
                    ),
            );
            with_attr(
                p,
                "azurerm_linux_virtual_machine",
                "vm",
                "availability_set_id",
                Value::r("azurerm_availability_set", "avset", "id"),
            )
        },
        candidate: |p| {
            without_attr(
                fix_spot(p),
                "azurerm_linux_virtual_machine",
                "vm",
                "availability_set_id",
            )
        },
        expect: "dropped-reference",
    },
    // --- scope narrowing --------------------------------------------------
    DeceptiveCase {
        name: "narrow-vnet-address-space",
        checks: &[SPOT],
        original: spot_vm_network,
        candidate: |p| {
            with_attr(
                fix_spot(p),
                "azurerm_virtual_network",
                "vnet",
                "address_space",
                Value::List(vec![Value::s("10.0.1.0/24")]),
            )
        },
        expect: "narrowed-scope",
    },
    DeceptiveCase {
        name: "widen-then-narrow-vnet-address-space",
        checks: &[SPOT],
        original: spot_vm_network,
        candidate: |p| {
            // Two /24s *look* like more coverage but cover strictly less
            // than the original /16.
            with_attr(
                fix_spot(p),
                "azurerm_virtual_network",
                "vnet",
                "address_space",
                Value::List(vec![Value::s("10.0.1.0/24"), Value::s("10.0.2.0/24")]),
            )
        },
        expect: "narrowed-scope",
    },
    DeceptiveCase {
        name: "narrow-subnet-prefix",
        checks: &[SPOT],
        original: spot_vm_network,
        candidate: |p| {
            with_attr(
                fix_spot(p),
                "azurerm_subnet",
                "s",
                "address_prefixes",
                Value::List(vec![Value::s("10.0.1.0/25")]),
            )
        },
        expect: "narrowed-scope",
    },
    DeceptiveCase {
        name: "narrow-nsg-port-range",
        checks: &[SPOT],
        original: || with_open_nsg("*", "*"),
        candidate: |p| narrow_nsg_rule(&fix_spot(p), "destination_port_range", "443"),
        expect: "narrowed-scope",
    },
    DeceptiveCase {
        name: "narrow-nsg-source-prefix",
        checks: &[SPOT],
        original: || with_open_nsg("443", "*"),
        candidate: |p| narrow_nsg_rule(&fix_spot(p), "source_address_prefix", "10.0.0.0/8"),
        expect: "narrowed-scope",
    },
];

fn violated_checks(program: &Program, checks: &[Check]) -> Vec<Check> {
    let kb = zodiac_kb::azure_kb();
    let graph = ResourceGraph::build(program.clone());
    let ctx = EvalContext {
        graph: &graph,
        kb: Some(&kb),
    };
    checks
        .iter()
        .filter(|c| !violations(c, ctx).is_empty())
        .cloned()
        .collect()
}

#[test]
fn every_deceptive_fix_is_rejected_at_l3() {
    let kb = zodiac_kb::azure_kb();
    let sim = zodiac_cloud::CloudSim::new_azure();
    assert!(CORPUS.len() >= 10, "corpus must stay adversarial at scale");
    for case in CORPUS {
        let checks: Vec<Check> = case
            .checks
            .iter()
            .map(|s| parse_check(s).unwrap())
            .collect();
        let original = (case.original)();
        let violated = violated_checks(&original, &checks);
        assert!(
            !violated.is_empty(),
            "{}: the original must actually violate a check",
            case.name
        );
        let candidate = (case.candidate)(&original);
        let edits = zodiac_repair::diff_edits(&original, &candidate);
        let fp = repair_fingerprint(&original, &checks);
        let attempt = verify_candidate(
            &original,
            &candidate,
            edits,
            &checks,
            &violated,
            &kb,
            &sim,
            &Obs::null(),
            fp,
        );
        // The dodge must actually work on the shallow oracles — otherwise
        // the case is not adversarial.
        let passes = |layer: OracleLayer| {
            attempt
                .layers
                .iter()
                .find(|v| v.layer == layer)
                .is_some_and(|v| v.passed)
        };
        assert!(
            passes(OracleLayer::DeploySucceeds),
            "{}: candidate must deploy (L1): {:?}",
            case.name,
            attempt.layers
        );
        assert!(
            passes(OracleLayer::ChecksPass),
            "{}: candidate must satisfy every check (L2): {:?}",
            case.name,
            attempt.layers
        );
        let rejected = attempt
            .rejected_at()
            .unwrap_or_else(|| panic!("{}: deceptive fix was ACCEPTED", case.name));
        assert_eq!(
            rejected.layer,
            OracleLayer::IntentPreserved,
            "{}: must be rejected at L3, got {:?}",
            case.name,
            rejected
        );
        assert!(
            rejected.reason.starts_with(case.expect),
            "{}: expected reason `{}...`, got `{}`",
            case.name,
            case.expect,
            rejected.reason
        );
    }
}

/// The corresponding honest fixes sail through all three layers — the
/// detector rejects deception, not change.
#[test]
fn honest_fixes_pass_all_layers() {
    let kb = zodiac_kb::azure_kb();
    let sim = zodiac_cloud::CloudSim::new_azure();
    for (name, checks, original, honest) in [
        (
            "set-eviction-policy",
            vec![parse_check(SPOT).unwrap()],
            spot_vm_network(),
            fix_spot(&spot_vm_network()),
        ),
        (
            "move-subnet-into-vnet",
            vec![parse_check(CONTAIN).unwrap()],
            stray_subnet(),
            with_attr(
                stray_subnet(),
                "azurerm_subnet",
                "s",
                "address_prefixes",
                Value::List(vec![Value::s("10.0.1.0/24")]),
            ),
        ),
    ] {
        let violated = violated_checks(&original, &checks);
        assert!(!violated.is_empty(), "{name}: must start violating");
        let edits = zodiac_repair::diff_edits(&original, &honest);
        let fp = repair_fingerprint(&original, &checks);
        let attempt = verify_candidate(
            &original,
            &honest,
            edits,
            &checks,
            &violated,
            &kb,
            &sim,
            &Obs::null(),
            fp,
        );
        assert!(
            attempt.accepted(),
            "{name}: honest fix must be accepted: {:?}",
            attempt.layers
        );
    }
}
