//! Golden test for the template library: builder-constructed IR must print
//! to exactly the spec text the pre-refactor string pipeline produced.
//!
//! Before the typed check IR, templates rendered checks with `format!` and
//! re-parsed them; the canonical strings below are what that pipeline
//! emitted for a representative corpus. The builders must yield IR whose
//! `Display` matches those strings byte-for-byte, and the strings must
//! re-parse to the identical IR (printer/parser agreement at the user
//! boundary).

use zodiac_mining::{templates, CorpusStats, MiningConfig};
use zodiac_model::{Program, Resource, Value};
use zodiac_spec::parse_check;

/// One project exercising intra, conn, sibling, path, and degree families:
/// a Spot VM on one NIC, the NIC on a subnet, two sibling subnets under one
/// virtual network with disjoint CIDRs.
fn golden_corpus() -> Vec<Program> {
    let program = Program::new()
        .with(
            Resource::new("azurerm_virtual_network", "v")
                .with("name", "vn")
                .with("location", "eastus"),
        )
        .with(
            Resource::new("azurerm_subnet", "s1")
                .with("name", "s1")
                .with(
                    "virtual_network_name",
                    Value::r("azurerm_virtual_network", "v", "name"),
                )
                .with(
                    "address_prefixes",
                    Value::List(vec![Value::s("10.0.1.0/24")]),
                ),
        )
        .with(
            Resource::new("azurerm_subnet", "s2")
                .with("name", "s2")
                .with(
                    "virtual_network_name",
                    Value::r("azurerm_virtual_network", "v", "name"),
                )
                .with(
                    "address_prefixes",
                    Value::List(vec![Value::s("10.0.2.0/24")]),
                ),
        )
        .with(
            Resource::new("azurerm_network_interface", "n")
                .with("name", "n")
                .with("location", "eastus")
                .with("subnet_id", Value::r("azurerm_subnet", "s1", "id")),
        )
        .with(
            Resource::new("azurerm_linux_virtual_machine", "vm")
                .with("name", "vm")
                .with("location", "eastus")
                .with("size", "Standard_F2s_v2")
                .with("priority", "Spot")
                .with("eviction_policy", "Deallocate")
                .with(
                    "network_interface_ids",
                    Value::List(vec![Value::r("azurerm_network_interface", "n", "id")]),
                ),
        )
        .with(
            // A Regular VM without an eviction policy, so presence of
            // `eviction_policy` varies and the eq-notnull family fires.
            Resource::new("azurerm_linux_virtual_machine", "vm2")
                .with("name", "vm2")
                .with("location", "eastus")
                .with("priority", "Regular"),
        );
    vec![program; 6]
}

/// `(family, canonical spec text the string pipeline produced)`.
const GOLDEN: &[(&str, &str)] = &[
    (
        "intra/eq-notnull",
        "let r:VM in r.priority == 'Spot' => r.eviction_policy != null",
    ),
    (
        "conn/attr-eq",
        "let r1:VM, r2:NIC in conn(r1.network_interface_ids -> r2.id) => r1.location == r2.location",
    ),
    (
        "conn/indeg-one",
        "let r1:VM, r2:NIC in conn(r1.network_interface_ids -> r2.id) => indegree(r2, VM) == 1",
    ),
    (
        "conn/exclusive",
        "let r1:VM, r2:NIC in conn(r1.network_interface_ids -> r2.id) => indegree(r2, !VM) == 0",
    ),
    (
        "coconn/sibling-no-overlap",
        "let r1:SUBNET, r2:SUBNET, r3:VPC in coconn(r1.virtual_network_name -> r3.name, r2.virtual_network_name -> r3.name) => !overlap(r1.address_prefixes, r2.address_prefixes)",
    ),
    (
        "path/location-eq",
        "let r1:VM, r2:NIC in path(r1 -> r2) => r1.location == r2.location",
    ),
    (
        "interp/degree-limit",
        "let r:VM in r.size == 'Standard_F2s_v2' => outdegree(r, NIC) <= 1",
    ),
];

#[test]
fn template_output_matches_pre_refactor_strings() {
    let kb = zodiac_kb::azure_kb();
    let corpus = golden_corpus();
    let stats = CorpusStats::build(&corpus, &kb, true);
    let mined = templates::instantiate(&stats, &kb, &MiningConfig::default());

    for (family, expected) in GOLDEN {
        let found = mined
            .iter()
            .filter(|c| c.family == *family)
            .find(|c| c.check.to_string() == *expected);
        assert!(
            found.is_some(),
            "family {family}: no candidate printing as\n  {expected}\ngot:\n{}",
            mined
                .iter()
                .filter(|c| c.family == *family)
                .map(|c| format!("  {}", c.check))
                .collect::<Vec<_>>()
                .join("\n")
        );
        // The printed form must re-parse to the identical IR — the textual
        // boundary is lossless for everything templates generate.
        let reparsed = parse_check(expected).expect("golden string parses");
        assert_eq!(
            &reparsed,
            &found.unwrap().check,
            "family {family}: parse(print(check)) != check"
        );
    }
}
