//! Peak-memory pinning for streaming mining (ISSUE 9).
//!
//! The point of `--stream` is that a 100k-project corpus never lives in
//! memory: projects are generated on demand, observed, and dropped, with
//! only shard-local `CorpusStats` (bounded by distinct keys, not project
//! count) and a bounded channel of in-flight batches alive at once. RSS
//! would be the honest metric but is noisy and platform-dependent, so this
//! binary installs [`zodiac_obs::CountingAlloc`] as its global allocator
//! and asserts on live-heap high-water marks instead: an accidental
//! `Vec<Project>` materialisation inflates the streaming peak by the size
//! of the corpus, far beyond the budget's headroom.

use zodiac_corpus::{CorpusConfig, ProjectStream};
use zodiac_mining::{build_stats_streaming, ShardConfig};
use zodiac_obs::CountingAlloc;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

const PROJECTS: usize = 10_000;

/// Peak heap budget for the 10k streaming observation pass. The peak is
/// dominated by the observation database itself (~69 MiB live at 10k
/// projects — `attr_value`/`joint_value` keys grow with distinct corpus
/// values, which is inherent to the mining algorithm, not a streaming
/// leak); measured streaming peak is ~106 MiB with two shards. The budget
/// leaves ~50% headroom while sitting far below the ~278 MiB a
/// materialised 10k-project `Vec<Project>` adds on top.
const PEAK_BUDGET_BYTES: usize = 160 * 1024 * 1024;

#[test]
fn streaming_mine_of_10k_projects_stays_under_peak_heap_budget() {
    let kb = zodiac_kb::azure_kb();
    let cfg = CorpusConfig {
        projects: PROJECTS,
        noise_rate: 0.02,
        ..Default::default()
    };
    // Two shards exercises the bounded-channel path (producer + workers);
    // the in-flight window is shards × 2 batches.
    let shard = ShardConfig {
        shards: 2,
        batch: 32,
    };
    let baseline = ALLOC.reset_peak();
    let stream = ProjectStream::new(&cfg).map(|p| p.program);
    let (stats, observed) = build_stats_streaming(stream, &kb, true, &shard);
    let peak = ALLOC.peak_bytes();
    assert_eq!(observed, PROJECTS);
    assert_eq!(stats.total_programs, PROJECTS);
    let delta = peak.saturating_sub(baseline);
    assert!(
        delta < PEAK_BUDGET_BYTES,
        "streaming mine peaked at {delta} heap bytes over baseline \
         (budget {PEAK_BUDGET_BYTES}); did something rematerialise the corpus?"
    );
}
