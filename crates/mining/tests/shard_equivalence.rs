//! Differential pinning of shard-parallel mining (ISSUE 9).
//!
//! The shard driver's whole contract is *invisibility*: any shard count,
//! batch size, scheduling interleaving, or merge order must produce an
//! observation database — and therefore a mined check set — identical to
//! the monolithic [`CorpusStats::build`]. These tests pin that contract
//! differentially across seeds × shard counts (including a prime count
//! that never divides the corpus evenly), and pin the latent merge-order
//! hazard: every probability the templates query (`p_value`, `p_present`,
//! `p_eq`, `p_overlap`, `p_contain`) must derive from merged *integer*
//! counters, so permuting the shard merge order changes query results by
//! not even one ULP.

use zodiac_corpus::{generate, CorpusConfig, ProjectStream};
use zodiac_mining::stats::FlattenArena;
use zodiac_mining::{
    build_stats_sharded, build_stats_streaming, mine, mine_sharded, mine_streaming, CorpusStats,
    MinedCheck, MiningConfig, ShardConfig,
};
use zodiac_model::Program;

const SHARD_COUNTS: [usize; 4] = [1, 2, 8, 17];

fn corpus(seed: u64, projects: usize) -> Vec<Program> {
    generate(&CorpusConfig {
        seed,
        projects,
        noise_rate: 0.05,
        rare_option_rate: 0.004,
        ..Default::default()
    })
    .into_iter()
    .map(|p| p.program)
    .collect()
}

/// Byte-exact rendering of a mined check set: the check's canonical string
/// plus every statistic, floats rendered through their bit patterns.
fn render(checks: &[MinedCheck]) -> Vec<String> {
    checks
        .iter()
        .map(|c| {
            format!(
                "{} | {} | s={} c={:016x} l={:?}",
                c.check,
                c.family,
                c.support,
                c.confidence.to_bits(),
                c.lift.map(f64::to_bits),
            )
        })
        .collect()
}

#[test]
fn sharded_and_streaming_stats_equal_monolithic_across_seeds() {
    let kb = zodiac_kb::azure_kb();
    for seed in [1u64, 0xC0FFEE, 9157] {
        let programs = corpus(seed, 90);
        let mono = CorpusStats::build(&programs, &kb, true);
        for shards in SHARD_COUNTS {
            // A batch size that never divides 90 evenly, to exercise the
            // ragged final chunk.
            let cfg = ShardConfig { shards, batch: 7 };
            let sharded = build_stats_sharded(&programs, &kb, true, &cfg);
            assert_eq!(
                sharded, mono,
                "seed {seed}: {shards}-shard build diverges from monolithic"
            );
            let (streamed, n) = build_stats_streaming(programs.iter().cloned(), &kb, true, &cfg);
            assert_eq!(n, programs.len(), "seed {seed}: stream lost projects");
            assert_eq!(
                streamed, mono,
                "seed {seed}: {shards}-shard streaming build diverges"
            );
        }
    }
}

#[test]
fn sharded_and_streaming_mining_yield_byte_identical_check_sets() {
    let kb = zodiac_kb::azure_kb();
    let mcfg = MiningConfig::default();
    for seed in [2u64, 0xC0FFEE] {
        let programs = corpus(seed, 90);
        let baseline = render(&mine(&programs, &kb, &mcfg).checks);
        assert!(
            !baseline.is_empty(),
            "seed {seed}: baseline mined nothing — the comparison is vacuous"
        );
        for shards in SHARD_COUNTS {
            let cfg = ShardConfig { shards, batch: 11 };
            let sharded = mine_sharded(&programs, &kb, &mcfg, &cfg);
            assert_eq!(
                render(&sharded.checks),
                baseline,
                "seed {seed}: {shards}-shard mine diverges"
            );
            let (streamed, n) = mine_streaming(programs.iter().cloned(), &kb, &mcfg, &cfg);
            assert_eq!(n, programs.len());
            assert_eq!(
                render(&streamed.checks),
                baseline,
                "seed {seed}: {shards}-shard streaming mine diverges"
            );
        }
    }
}

#[test]
fn project_stream_feeds_mining_identically_to_generate() {
    // The streaming entry point consumes `ProjectStream` directly in
    // production (`zodiac mine --stream`); pin the whole path, not just the
    // corpus-side identity test.
    let kb = zodiac_kb::azure_kb();
    let ccfg = CorpusConfig {
        projects: 60,
        noise_rate: 0.05,
        ..Default::default()
    };
    let materialised: Vec<Program> = generate(&ccfg).into_iter().map(|p| p.program).collect();
    let mcfg = MiningConfig::default();
    let baseline = render(&mine(&materialised, &kb, &mcfg).checks);
    let stream = ProjectStream::new(&ccfg).map(|p| p.program);
    let (report, n) = mine_streaming(
        stream,
        &kb,
        &mcfg,
        &ShardConfig {
            shards: 3,
            batch: 8,
        },
    );
    assert_eq!(n, 60);
    assert_eq!(render(&report.checks), baseline);
}

/// The merge-order hazard regression: shard-local databases merged in any
/// permutation must answer every template probability query with
/// bit-identical `f64`s. This is only true because the merged state is all
/// integer counters — an implementation that averaged per-shard floats
/// would fail on the first permutation.
#[test]
fn merge_order_permutations_are_bit_identical() {
    let kb = zodiac_kb::azure_kb();
    let programs = corpus(0xC0FFEE, 72);

    // Eight shard-local partials, built over contiguous slices.
    let partials: Vec<CorpusStats> = programs
        .chunks(9)
        .map(|chunk| CorpusStats::build(chunk, &kb, true))
        .collect();
    assert_eq!(partials.len(), 8);

    let merge_in = |order: &[usize]| {
        let mut merged = CorpusStats::default();
        for &i in order {
            merged.merge_from(&partials[i]);
        }
        merged
    };

    let reference = merge_in(&[0, 1, 2, 3, 4, 5, 6, 7]);
    assert_eq!(reference, CorpusStats::build(&programs, &kb, true));

    // Every probability query the templates can issue, over every attr the
    // corpus actually observed (pairs for the two-sided queries).
    let probe = |s: &CorpusStats| -> Vec<u64> {
        let mut bits = Vec::new();
        for (t, a, v) in s.attr_value.keys() {
            bits.push(s.p_value(*t, *a, v).to_bits());
        }
        for (t, a) in s.attr_present.keys() {
            bits.push(s.p_present(*t, *a).to_bits());
        }
        let attrs: Vec<_> = s.attr_present.keys().copied().collect();
        for (t1, a1) in attrs.iter().take(12) {
            for (t2, a2) in attrs.iter().rev().take(12) {
                bits.push(s.p_eq(*t1, *a1, *t2, *a2).to_bits());
                bits.push(s.p_overlap(*t1, *a1, *t2, *a2).to_bits());
                bits.push(s.p_contain(*t1, *a1, *t2, *a2).to_bits());
            }
        }
        bits
    };
    let expected = probe(&reference);
    assert!(
        expected.iter().any(|b| *b != 0),
        "all probes returned 0.0 — the regression test is vacuous"
    );

    for order in [
        [7, 6, 5, 4, 3, 2, 1, 0],
        [3, 0, 6, 1, 7, 2, 5, 4],
        [1, 7, 0, 5, 3, 6, 4, 2],
    ] {
        let merged = merge_in(&order);
        assert_eq!(
            merged, reference,
            "merge order {order:?} changes the database"
        );
        assert_eq!(
            probe(&merged),
            expected,
            "merge order {order:?} shifts a probability query by at least one ULP"
        );
    }
}

/// An arena reused across many programs must not leak state between them.
#[test]
fn arena_reuse_matches_fresh_arenas() {
    let kb = zodiac_kb::azure_kb();
    let programs = corpus(5, 30);
    let mut reused = CorpusStats::default();
    let mut arena = FlattenArena::default();
    for p in &programs {
        reused.observe_program_with(p, &kb, true, &mut arena);
    }
    let mut fresh = CorpusStats::default();
    for p in &programs {
        fresh.observe_program(p, &kb, true);
    }
    assert_eq!(reused, fresh);
    assert_eq!(reused, CorpusStats::build(&programs, &kb, true));
}
