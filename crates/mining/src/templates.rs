//! The template library: instantiating candidate checks from observations.
//!
//! The paper curates 84 templates over the check grammar; here each
//! *template family* below is a parameterised generator that walks the
//! observation database and emits concrete candidates with their
//! association-rule statistics (support, confidence, and — where a marginal
//! is well-defined — lift). The KB constrains instantiation exactly as §3.3
//! describes: condition/statement values must be enum members (or reserved
//! names), `overlap`/`contain` apply only to CIDR-typed attributes, and
//! location-typed attributes participate only in equality templates.
//!
//! Candidates are built directly as [`Check`] IR through
//! [`zodiac_spec::build`] — the observation database already holds interned
//! symbols for every type and attribute, so instantiation never renders or
//! re-parses spec text, and no observed value (however oddly spelled) is
//! outside the representable set.

use crate::oracle::InterpQuery;
use crate::stats::{CorpusStats, Direction};
use crate::{MinedCheck, MiningConfig};
use zodiac_kb::KnowledgeBase;
use zodiac_model::{Symbol, Value};
use zodiac_spec::build::lit;
use zodiac_spec::build::{
    binding, check, coconn, conn, contain, copath, endpoint, eq, ge, indegree, is_type, le, length,
    ne, negate, not_type, null, outdegree, overlap, path,
};
use zodiac_spec::Check;

fn emit(
    out: &mut Vec<MinedCheck>,
    family: &'static str,
    check: Check,
    support: usize,
    confidence: f64,
    lift: Option<f64>,
    interp: Option<InterpQuery>,
) {
    out.push(MinedCheck {
        check,
        family,
        support,
        confidence,
        lift,
        interp,
    });
}

/// Instantiates every template family over the observation database.
pub fn instantiate(stats: &CorpusStats, kb: &KnowledgeBase, cfg: &MiningConfig) -> Vec<MinedCheck> {
    let mut out = Vec::new();
    intra(stats, kb, cfg, &mut out);
    conn_templates(stats, cfg, &mut out);
    sibling_templates(stats, &mut out);
    hub_templates(stats, &mut out);
    copath_templates(stats, &mut out);
    path_templates(stats, &mut out);
    degree_templates(stats, &mut out);
    length_templates(stats, &mut out);
    out
}

/// Intra-resource families: `A.a1 == v ⇒ A.a2 {==,!=} v2` and
/// `A.a1 == v ⇒ A.a2 {!=,==} null`.
fn intra(stats: &CorpusStats, kb: &KnowledgeBase, cfg: &MiningConfig, out: &mut Vec<MinedCheck>) {
    for (&(rtype, a1, ref v1), &support) in &stats.cond_support {
        let cond = || eq(endpoint("r", a1), lit(v1.clone()));
        let bind = || [binding("r", rtype)];
        let jv = stats.joint_value.get(&(rtype, a1, v1.clone()));
        let jp = stats.joint_present.get(&(rtype, a1, v1.clone()));

        // == candidates from observed joints.
        if let Some(jv) = jv {
            for (&(a2, ref v2), &n) in jv {
                if a2 == a1 || !stmt_eligible(kb, cfg.use_kb, &rtype, &a2, v2) {
                    continue;
                }
                let confidence = n as f64 / support as f64;
                let p_y = stats.p_value(rtype, a2, v2);
                let lift_v = if p_y > 0.0 {
                    Some(confidence / p_y)
                } else {
                    None
                };
                emit(
                    out,
                    "intra/eq-eq",
                    check(bind(), cond(), eq(endpoint("r", a2), lit(v2.clone()))),
                    support,
                    confidence,
                    lift_v,
                    None,
                );
            }
        }

        // != candidates over the statement domain.
        for (a2, domain) in stmt_domains(stats, kb, cfg.use_kb, rtype) {
            if a2 == a1 {
                continue;
            }
            for u in domain {
                let p_u = stats.p_value(rtype, a2, &u);
                if p_u == 0.0 {
                    continue; // Never observed globally: vacuous.
                }
                let joint_u = jv
                    .and_then(|m| m.get(&(a2, u.clone())))
                    .copied()
                    .unwrap_or(0);
                let confidence = 1.0 - joint_u as f64 / support as f64;
                let p_y = 1.0 - p_u;
                let lift_v = if p_y > 0.0 {
                    Some(confidence / p_y)
                } else {
                    None
                };
                emit(
                    out,
                    "intra/eq-ne",
                    check(bind(), cond(), ne(endpoint("r", a2), lit(u))),
                    support,
                    confidence,
                    lift_v,
                    None,
                );
            }
        }

        // Presence/absence candidates.
        let attrs = stats.attrs_of.get(&rtype).cloned().unwrap_or_default();
        for a2 in attrs {
            if a2 == a1 {
                continue;
            }
            let present = jp.and_then(|m| m.get(&a2)).copied().unwrap_or(0);
            let p_present = stats.p_present(rtype, a2);
            // a2 must not be trivially always-present or never-present.
            if p_present > 0.0 && p_present < 1.0 {
                let conf_nn = present as f64 / support as f64;
                emit(
                    out,
                    "intra/eq-notnull",
                    check(bind(), cond(), ne(endpoint("r", a2), null())),
                    support,
                    conf_nn,
                    Some(if p_present > 0.0 {
                        conf_nn / p_present
                    } else {
                        1.0
                    }),
                    None,
                );
                let conf_null = 1.0 - conf_nn;
                let p_absent = 1.0 - p_present;
                emit(
                    out,
                    "intra/eq-null",
                    check(bind(), cond(), eq(endpoint("r", a2), null())),
                    support,
                    conf_null,
                    Some(if p_absent > 0.0 {
                        conf_null / p_absent
                    } else {
                        1.0
                    }),
                    None,
                );
            }
        }
    }
}

/// The statement-value domain for `(rtype, attr)`: KB enum members when the
/// KB is in use, observed values otherwise.
fn stmt_domains(
    stats: &CorpusStats,
    kb: &KnowledgeBase,
    use_kb: bool,
    rtype: Symbol,
) -> Vec<(Symbol, Vec<Value>)> {
    let mut out = Vec::new();
    if use_kb {
        if let Some(schema) = kb.resource(&rtype) {
            for attr in schema.attrs.values() {
                if let Some(values) = attr.format.enum_values() {
                    out.push((
                        Symbol::intern(&attr.path),
                        values.iter().map(|v| Value::s(v.clone())).collect(),
                    ));
                }
            }
        }
    } else {
        // Observed string values per attribute.
        let attrs = stats.attrs_of.get(&rtype).cloned().unwrap_or_default();
        for attr in attrs {
            let values: Vec<Value> = stats
                .attr_value
                .iter()
                .filter(|((t, a, _), _)| *t == rtype && *a == attr)
                .map(|((_, _, v), _)| v.clone())
                .collect();
            if !values.is_empty() && values.len() <= 12 {
                out.push((attr, values));
            }
        }
    }
    out
}

fn stmt_eligible(kb: &KnowledgeBase, use_kb: bool, rtype: &str, attr: &str, v: &Value) -> bool {
    crate::stats::is_stmt_value(kb, use_kb, rtype, attr, v)
}

/// Connection families: attribute equality across an edge, endpoint value
/// requirements, containment, and single-attachment / exclusivity degrees.
fn conn_templates(stats: &CorpusStats, cfg: &MiningConfig, out: &mut Vec<MinedCheck>) {
    let _ = cfg;
    for (&(s, ep, d, o), e) in &stats.edges {
        let bind = || [binding("r1", s), binding("r2", d)];
        let edge = || conn("r1", ep, "r2", o);
        for (&attr, &(eq_n, both)) in &e.attr_eq {
            if both == 0 {
                continue;
            }
            let confidence = eq_n as f64 / both as f64;
            let p_y = stats.p_eq(s, attr, d, attr);
            emit(
                out,
                "conn/attr-eq",
                check(
                    bind(),
                    edge(),
                    eq(endpoint("r1", attr), endpoint("r2", attr)),
                ),
                both,
                confidence,
                if p_y > 0.0 {
                    Some(confidence / p_y)
                } else {
                    None
                },
                None,
            );
        }
        for (&(attr, ref v), n) in &e.dst_vals {
            let confidence = *n as f64 / e.occurrences as f64;
            let p_y = stats.p_value(d, attr, v);
            emit(
                out,
                "conn/dst-val",
                check(bind(), edge(), eq(endpoint("r2", attr), lit(v.clone()))),
                e.occurrences,
                confidence,
                if p_y > 0.0 {
                    Some(confidence / p_y)
                } else {
                    None
                },
                None,
            );
        }
        for (&(attr, ref v), n) in &e.src_vals {
            let confidence = *n as f64 / e.occurrences as f64;
            let p_y = stats.p_value(s, attr, v);
            emit(
                out,
                "conn/src-val",
                check(bind(), edge(), eq(endpoint("r1", attr), lit(v.clone()))),
                e.occurrences,
                confidence,
                if p_y > 0.0 {
                    Some(confidence / p_y)
                } else {
                    None
                },
                None,
            );
        }
        for (&(da, sa), &(holds, both)) in &e.contain {
            if both == 0 {
                continue;
            }
            let confidence = holds as f64 / both as f64;
            let p_y = stats.p_contain(d, da, s, sa);
            emit(
                out,
                "conn/contain",
                check(
                    bind(),
                    edge(),
                    contain(endpoint("r2", da), endpoint("r1", sa)),
                ),
                both,
                confidence,
                if p_y > 0.0 {
                    Some(confidence / p_y)
                } else {
                    None
                },
                None,
            );
        }
        // Degree families (no meaningful marginal: lift is skipped, as the
        // paper does for aggregation checks).
        let conf_one = e.dst_indeg_one as f64 / e.occurrences as f64;
        emit(
            out,
            "conn/indeg-one",
            check(bind(), edge(), eq(indegree("r2", is_type(s)), lit(1))),
            e.occurrences,
            conf_one,
            None,
            None,
        );
        let conf_excl = e.dst_excl as f64 / e.occurrences as f64;
        emit(
            out,
            "conn/exclusive",
            check(bind(), edge(), eq(indegree("r2", not_type(s)), lit(0))),
            e.occurrences,
            conf_excl,
            None,
            None,
        );
    }
}

/// Sibling family: two same-type resources sharing a destination must have
/// non-overlapping CIDR attributes.
fn sibling_templates(stats: &CorpusStats, out: &mut Vec<MinedCheck>) {
    for (&(s, ep, d, o), pair) in &stats.siblings {
        for (&attr, &(no_overlap, total)) in &pair.overlap {
            if total == 0 {
                continue;
            }
            let confidence = no_overlap as f64 / total as f64;
            let p_y = 1.0 - stats.p_overlap(s, attr, s, attr);
            emit(
                out,
                "coconn/sibling-no-overlap",
                check(
                    [binding("r1", s), binding("r2", s), binding("r3", d)],
                    coconn(conn("r1", ep, "r3", o), conn("r2", ep, "r3", o)),
                    negate(overlap(endpoint("r1", attr), endpoint("r2", attr))),
                ),
                total,
                confidence,
                if p_y > 0.0 {
                    Some(confidence / p_y)
                } else {
                    None
                },
                None,
            );
        }
    }
}

/// Hub family: one resource referencing two others constrains their
/// attribute pairs (name inequality, CIDR exclusivity).
fn hub_templates(stats: &CorpusStats, out: &mut Vec<MinedCheck>) {
    for (&(s, ep1, d1, o1, ep2, d2, o2), hub) in &stats.hubs {
        let bind = || [binding("r1", s), binding("r2", d1), binding("r3", d2)];
        let edges = || coconn(conn("r1", ep1, "r2", o1), conn("r1", ep2, "r3", o2));
        for (&(a1, a2), &(ne_n, both)) in &hub.name_ne {
            if both == 0 {
                continue;
            }
            let confidence = ne_n as f64 / both as f64;
            // No meaningful marginal exists for inequality over open string
            // domains (random names almost never collide, so lift ≈ 1 by
            // construction); deployment-based validation is the arbiter.
            emit(
                out,
                "coconn/hub-ne",
                check(bind(), edges(), ne(endpoint("r2", a1), endpoint("r3", a2))),
                both,
                confidence,
                None,
                None,
            );
        }
        for (&(a1, a2), &(no_overlap, both)) in &hub.no_overlap {
            if both == 0 {
                continue;
            }
            let confidence = no_overlap as f64 / both as f64;
            let p_y = 1.0 - stats.p_overlap(d1, a1, d2, a2);
            emit(
                out,
                "coconn/hub-no-overlap",
                check(
                    bind(),
                    edges(),
                    negate(overlap(endpoint("r2", a1), endpoint("r3", a2))),
                ),
                both,
                confidence,
                if p_y > 0.0 {
                    Some(confidence / p_y)
                } else {
                    None
                },
                None,
            );
        }
    }
}

/// Copath family: two same-type resources reachable from one source have
/// exclusive CIDR ranges ("two tunneled VPCs have exclusive IP CIDR").
fn copath_templates(stats: &CorpusStats, out: &mut Vec<MinedCheck>) {
    for (&(a, c), pair) in &stats.copaths {
        for (&attr, &(no_overlap, total)) in &pair.overlap {
            if total == 0 {
                continue;
            }
            let confidence = no_overlap as f64 / total as f64;
            let p_y = 1.0 - stats.p_overlap(c, attr, c, attr);
            emit(
                out,
                "copath/no-overlap",
                check(
                    [binding("r1", a), binding("r2", c), binding("r3", c)],
                    copath(path("r1", "r2"), path("r1", "r3")),
                    negate(overlap(endpoint("r2", attr), endpoint("r3", attr))),
                ),
                total,
                confidence,
                if p_y > 0.0 {
                    Some(confidence / p_y)
                } else {
                    None
                },
                None,
            );
        }
    }
}

/// Path family: location agreement along reachability.
fn path_templates(stats: &CorpusStats, out: &mut Vec<MinedCheck>) {
    for (&(a, b), &(eq_n, both)) in &stats.path_loc_eq {
        if both == 0 {
            continue;
        }
        let confidence = eq_n as f64 / both as f64;
        let p_y = stats.p_eq(a, "location", b, "location");
        emit(
            out,
            "path/location-eq",
            check(
                [binding("r1", a), binding("r2", b)],
                path("r1", "r2"),
                eq(endpoint("r1", "location"), endpoint("r2", "location")),
            ),
            both,
            confidence,
            if p_y > 0.0 {
                Some(confidence / p_y)
            } else {
                None
            },
            None,
        );
    }
}

/// Quantitative degree family — the interpolation candidates: an enum value
/// bounds the in/out-degree toward a peer type. The observed maximum is the
/// witnessed bound; the oracle later corrects or generalises it.
fn degree_templates(stats: &CorpusStats, out: &mut Vec<MinedCheck>) {
    for (&(rtype, attr, ref value, dir, tau), deg) in &stats.degrees {
        if deg.count == 0 {
            continue;
        }
        let support = stats
            .cond_support
            .get(&(rtype, attr, value.clone()))
            .copied()
            .unwrap_or(deg.count);
        let degree_val = match dir {
            Direction::In => indegree("r", is_type(tau)),
            Direction::Out => outdegree("r", is_type(tau)),
        };
        let query = InterpQuery::from_degree(&rtype, &attr, value, dir, &tau);
        emit(
            out,
            "interp/degree-limit",
            check(
                [binding("r", rtype)],
                eq(endpoint("r", attr), lit(value.clone())),
                le(degree_val, lit(deg.max)),
            ),
            support,
            1.0,
            None,
            Some(query),
        );
    }
}

/// Length family: an enum/bool value requires a minimum block count.
fn length_templates(stats: &CorpusStats, out: &mut Vec<MinedCheck>) {
    for (&(rtype, attr, ref value, list_attr), &(min, count)) in &stats.lengths {
        if count == 0 || min < 2 {
            continue; // `length >= 1` is vacuous for present blocks.
        }
        let support = stats
            .cond_support
            .get(&(rtype, attr, value.clone()))
            .copied()
            .unwrap_or(count);
        emit(
            out,
            "agg/length-min",
            check(
                [binding("r", rtype)],
                eq(endpoint("r", attr), lit(value.clone())),
                ge(length(endpoint("r", list_attr)), lit(min)),
            ),
            support,
            1.0,
            None,
            None,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::CorpusStats;
    use zodiac_model::{Program, Resource};

    fn stats_of(programs: &[Program]) -> CorpusStats {
        CorpusStats::build(programs, &zodiac_kb::azure_kb(), true)
    }

    #[test]
    fn intra_templates_cover_all_four_shapes() {
        let programs: Vec<Program> = (0..12)
            .map(|i| {
                let mut vm = Resource::new("azurerm_linux_virtual_machine", "vm")
                    .with("name", format!("vm{i}"))
                    .with("priority", if i % 2 == 0 { "Spot" } else { "Regular" });
                if i % 2 == 0 {
                    vm = vm.with("eviction_policy", "Deallocate");
                }
                Program::new().with(vm)
            })
            .collect();
        let out = instantiate(
            &stats_of(&programs),
            &zodiac_kb::azure_kb(),
            &MiningConfig::default(),
        );
        let families: std::collections::BTreeSet<&str> = out.iter().map(|c| c.family).collect();
        for f in [
            "intra/eq-eq",
            "intra/eq-ne",
            "intra/eq-notnull",
            "intra/eq-null",
        ] {
            assert!(families.contains(f), "missing family {f}: {families:?}");
        }
        // The spot/eviction candidate carries perfect confidence.
        let spot = out
            .iter()
            .find(|c| {
                c.family == "intra/eq-notnull"
                    && c.check.to_string().contains("'Spot'")
                    && c.check.to_string().contains("eviction_policy != null")
            })
            .expect("spot/eviction candidate mined");
        assert_eq!(spot.confidence, 1.0);
        assert_eq!(spot.support, 6);
    }

    #[test]
    fn conn_equality_candidates_have_high_lift() {
        let programs: Vec<Program> = (0..8)
            .map(|i| {
                let loc = if i % 2 == 0 { "eastus" } else { "westus" };
                Program::new()
                    .with(
                        Resource::new("azurerm_network_interface", "nic")
                            .with("name", format!("n{i}"))
                            .with("location", loc),
                    )
                    .with(
                        Resource::new("azurerm_linux_virtual_machine", "vm")
                            .with("name", format!("v{i}"))
                            .with("location", loc)
                            .with(
                                "network_interface_ids",
                                Value::List(vec![Value::r(
                                    "azurerm_network_interface",
                                    "nic",
                                    "id",
                                )]),
                            ),
                    )
            })
            .collect();
        let out = instantiate(
            &stats_of(&programs),
            &zodiac_kb::azure_kb(),
            &MiningConfig::default(),
        );
        let eq = out
            .iter()
            .find(|c| c.family == "conn/attr-eq" && c.check.to_string().contains("location"))
            .expect("location equality candidate");
        assert_eq!(eq.confidence, 1.0);
        // Locations split 50/50, so random agreement is ~0.5 and lift ~2.
        let lift = eq.lift.expect("equality has a marginal");
        assert!(lift > 1.5, "lift {lift}");
    }

    #[test]
    fn degree_templates_carry_interpolation_queries() {
        let mut p = Program::new().with(
            Resource::new("azurerm_linux_virtual_machine", "vm")
                .with("name", "v")
                .with("size", "Standard_F2s_v2")
                .with(
                    "network_interface_ids",
                    Value::List(vec![
                        Value::r("azurerm_network_interface", "a", "id"),
                        Value::r("azurerm_network_interface", "b", "id"),
                    ]),
                ),
        );
        for n in ["a", "b"] {
            p.add(Resource::new("azurerm_network_interface", n).with("name", n))
                .unwrap();
        }
        let programs = vec![p; 6];
        let out = instantiate(
            &stats_of(&programs),
            &zodiac_kb::azure_kb(),
            &MiningConfig::default(),
        );
        let degree_candidates: Vec<String> = out
            .iter()
            .filter(|c| c.family == "interp/degree-limit")
            .map(|c| format!("{:?} | {}", c.interp, c.check))
            .collect();
        assert!(
            out.iter()
                .any(|c| matches!(c.interp, Some(crate::oracle::InterpQuery::VmMaxNics { .. }))),
            "no VmMaxNics query among: {degree_candidates:#?}"
        );
    }

    #[test]
    fn candidates_with_quoted_values_survive() {
        // The string pipeline silently dropped any candidate whose observed
        // value contained a quote (it could not be rendered and re-parsed).
        // Typed IR represents such values directly, and the canonical printer
        // escapes them.
        let programs: Vec<Program> = (0..4)
            .map(|_| {
                Program::new().with(
                    Resource::new("azurerm_storage_account", "sa")
                        .with("account_tier", "Premium")
                        .with("tags.note", "it's quoted"),
                )
            })
            .collect();
        let out = instantiate(
            &stats_of(&programs),
            &zodiac_kb::azure_kb(),
            &MiningConfig {
                use_kb: false,
                ..MiningConfig::default()
            },
        );
        let quoted = out
            .iter()
            .find(|c| c.check.to_string().contains("it\\'s quoted"))
            .expect("quoted-value candidate mined and printed escaped");
        let reparsed = zodiac_spec::parse_check(&quoted.check.to_string())
            .expect("escaped candidate parses back");
        assert_eq!(reparsed, quoted.check);
    }
}
