//! The documentation-oracle interpolation step.
//!
//! The paper queries GPT-4 with few-shot prompts like *"for a sf2 sku VM,
//! what is the maximum number of NICs allowed?"*, requiring answers grounded
//! in provider documentation. Offline, the oracle answers from the encoded
//! Azure doc tables ([`zodiac_kb::docs`]); an optional noise rate perturbs
//! answers to model hallucination (perturbed checks are later falsified by
//! deployment-based validation, exercising the same safety net the paper
//! relies on).

use crate::{MinedCheck, MiningConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;
use zodiac_kb::{docs, KnowledgeBase};
use zodiac_model::Value;
use zodiac_spec::build::{binding, check, endpoint, eq, indegree, is_type, le, lit, ne, outdegree};

/// An interpolation query, the offline analogue of an LLM prompt.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub enum InterpQuery {
    /// Maximum NICs for a VM sku.
    VmMaxNics {
        /// The sku.
        sku: String,
    },
    /// Maximum data disks for a VM sku.
    VmMaxDataDisks {
        /// The sku.
        sku: String,
    },
    /// Maximum tunnels for a gateway sku.
    GwMaxTunnels {
        /// The sku.
        sku: String,
    },
    /// Whether a gateway sku supports active-active.
    GwActiveActive {
        /// The sku.
        sku: String,
    },
    /// Whether a storage tier permits a replication type.
    SaReplicationAllowed {
        /// Account tier.
        tier: String,
        /// Replication type.
        replication: String,
    },
    /// A quantitative pattern no documentation table covers; the oracle
    /// declines to answer these.
    Unsupported {
        /// Description of the unmapped pattern.
        description: String,
    },
}

impl InterpQuery {
    /// Builds a query from a degree-template key, falling back to
    /// [`InterpQuery::Unsupported`] for patterns outside the doc tables.
    pub fn from_degree(
        rtype: &str,
        attr: &str,
        value: &Value,
        dir: crate::stats::Direction,
        tau: &str,
    ) -> InterpQuery {
        use crate::stats::Direction::{In, Out};
        let sku = value.as_str().unwrap_or_default().to_string();
        match (rtype, attr, dir, tau) {
            ("azurerm_linux_virtual_machine", "size", Out, "azurerm_network_interface") => {
                InterpQuery::VmMaxNics { sku }
            }
            (
                "azurerm_linux_virtual_machine",
                "size",
                In,
                "azurerm_virtual_machine_data_disk_attachment",
            ) => InterpQuery::VmMaxDataDisks { sku },
            (
                "azurerm_virtual_network_gateway",
                "sku",
                In,
                "azurerm_virtual_network_gateway_connection",
            ) => InterpQuery::GwMaxTunnels { sku },
            _ => InterpQuery::Unsupported {
                description: format!("{rtype}.{attr}={} {dir:?} {tau}", value.render()),
            },
        }
    }

    /// The natural-language prompt this query corresponds to (what would be
    /// sent to the LLM).
    pub fn to_prompt(&self) -> String {
        match self {
            InterpQuery::VmMaxNics { sku } => {
                format!("For a {sku} sku VM, what is the maximum number of NICs allowed?")
            }
            InterpQuery::VmMaxDataDisks { sku } => {
                format!("For a {sku} sku VM, what is the maximum number of data disks allowed?")
            }
            InterpQuery::GwMaxTunnels { sku } => format!(
                "For a {sku} sku virtual network gateway, how many IPsec tunnels are supported?"
            ),
            InterpQuery::GwActiveActive { sku } => {
                format!("Does a {sku} sku virtual network gateway support active-active mode?")
            }
            InterpQuery::SaReplicationAllowed { tier, replication } => {
                format!("Can a {tier} tier storage account use {replication} replication?")
            }
            InterpQuery::Unsupported { description } => {
                format!("(unmapped quantitative pattern: {description})")
            }
        }
    }
}

/// Oracle answers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Answer {
    /// A numeric limit.
    Limit(i64),
    /// A boolean capability.
    Supported(bool),
}

/// The offline documentation oracle.
pub struct DocOracle {
    noise: f64,
    rng: StdRng,
    queries_asked: usize,
}

impl DocOracle {
    /// Creates an oracle with an answer-noise probability.
    pub fn new(noise: f64, seed: u64) -> Self {
        DocOracle {
            noise: noise.clamp(0.0, 1.0),
            rng: StdRng::seed_from_u64(seed),
            queries_asked: 0,
        }
    }

    /// Number of queries answered or declined so far.
    pub fn queries_asked(&self) -> usize {
        self.queries_asked
    }

    /// Answers a query from the documentation tables; `None` means the
    /// oracle cannot ground an answer (the check is discarded, the paper's
    /// `llm-remove` bucket).
    pub fn answer(&mut self, query: &InterpQuery) -> Option<Answer> {
        self.queries_asked += 1;
        let truthful = match query {
            InterpQuery::VmMaxNics { sku } => Answer::Limit(docs::vm_sku(sku)?.max_nics as i64),
            InterpQuery::VmMaxDataDisks { sku } => {
                Answer::Limit(docs::vm_sku(sku)?.max_data_disks as i64)
            }
            InterpQuery::GwMaxTunnels { sku } => {
                Answer::Limit(docs::gw_sku(sku)?.max_tunnels as i64)
            }
            InterpQuery::GwActiveActive { sku } => {
                Answer::Supported(docs::gw_sku(sku)?.active_active)
            }
            InterpQuery::SaReplicationAllowed { tier, replication } => Answer::Supported(
                docs::sa_replication_for_tier(tier).contains(&replication.as_str()),
            ),
            InterpQuery::Unsupported { .. } => return None,
        };
        if self.noise > 0.0 && self.rng.gen_bool(self.noise) {
            // Hallucination: perturb the answer.
            return Some(match truthful {
                Answer::Limit(n) => {
                    let delta = if self.rng.gen_bool(0.5) { 1 } else { -1 };
                    Answer::Limit((n + delta).max(1))
                }
                Answer::Supported(b) => Answer::Supported(!b),
            });
        }
        Some(truthful)
    }
}

/// Runs the interpolation pass: quantitative survivors are re-grounded
/// through the oracle, and the oracle additionally proposes checks for enum
/// values the corpus never witnessed. Returns `(interpolated checks,
/// rejected query count)`.
pub fn interpolate(
    survivors: &[MinedCheck],
    kb: &KnowledgeBase,
    oracle: &mut DocOracle,
) -> (Vec<MinedCheck>, usize) {
    let mut out: Vec<MinedCheck> = Vec::new();
    let mut removed = 0usize;

    // 1. Witnessed quantitative candidates → re-grounded bounds.
    for c in survivors {
        let Some(query) = c.interp.clone() else {
            continue;
        };
        match oracle.answer(&query) {
            Some(Answer::Limit(limit)) => {
                if let Some(check) = rebound(c, limit) {
                    out.push(MinedCheck {
                        check,
                        family: "interp/degree-limit",
                        support: c.support,
                        confidence: 1.0,
                        lift: None,
                        interp: Some(query),
                    });
                }
            }
            Some(Answer::Supported(_)) | None => removed += 1,
        }
    }

    // 2. Doc-driven generalisation over the full enum domains (the corpus
    //    may witness only a handful of skus; the oracle covers the rest).
    let vm_sizes = enum_domain(kb, "azurerm_linux_virtual_machine", "size");
    for sku in &vm_sizes {
        for nics in [true, false] {
            let query = if nics {
                InterpQuery::VmMaxNics { sku: sku.clone() }
            } else {
                InterpQuery::VmMaxDataDisks { sku: sku.clone() }
            };
            match oracle.answer(&query) {
                Some(Answer::Limit(limit)) => {
                    let degree = if nics {
                        le(outdegree("r", is_type("NIC")), lit(limit))
                    } else {
                        le(indegree("r", is_type("ATTACH")), lit(limit))
                    };
                    out.push(MinedCheck {
                        check: check(
                            [binding("r", "VM")],
                            eq(endpoint("r", "size"), lit(sku.clone())),
                            degree,
                        ),
                        family: "interp/degree-limit",
                        support: 0,
                        confidence: 1.0,
                        lift: None,
                        interp: Some(query),
                    });
                }
                _ => removed += 1,
            }
        }
    }
    let gw_skus = enum_domain(kb, "azurerm_virtual_network_gateway", "sku");
    for sku in &gw_skus {
        match oracle.answer(&InterpQuery::GwMaxTunnels { sku: sku.clone() }) {
            Some(Answer::Limit(limit)) => {
                out.push(MinedCheck {
                    check: check(
                        [binding("r", "GW")],
                        eq(endpoint("r", "sku"), lit(sku.clone())),
                        le(indegree("r", is_type("TUNNEL")), lit(limit)),
                    ),
                    family: "interp/degree-limit",
                    support: 0,
                    confidence: 1.0,
                    lift: None,
                    interp: Some(InterpQuery::GwMaxTunnels { sku: sku.clone() }),
                });
            }
            _ => removed += 1,
        }
        match oracle.answer(&InterpQuery::GwActiveActive { sku: sku.clone() }) {
            Some(Answer::Supported(false)) => {
                out.push(MinedCheck {
                    check: check(
                        [binding("r", "GW")],
                        eq(endpoint("r", "sku"), lit(sku.clone())),
                        eq(endpoint("r", "active_active"), lit(Value::Bool(false))),
                    ),
                    family: "interp/capability",
                    support: 0,
                    confidence: 1.0,
                    lift: None,
                    interp: Some(InterpQuery::GwActiveActive { sku: sku.clone() }),
                });
            }
            Some(_) => {}
            None => removed += 1,
        }
    }
    // Storage replication capabilities per tier.
    let tiers = enum_domain(kb, "azurerm_storage_account", "account_tier");
    let replications = enum_domain(kb, "azurerm_storage_account", "account_replication_type");
    for tier in &tiers {
        for replication in &replications {
            let query = InterpQuery::SaReplicationAllowed {
                tier: tier.clone(),
                replication: replication.clone(),
            };
            match oracle.answer(&query) {
                Some(Answer::Supported(false)) => {
                    out.push(MinedCheck {
                        check: check(
                            [binding("r", "SA")],
                            eq(endpoint("r", "account_tier"), lit(tier.clone())),
                            ne(
                                endpoint("r", "account_replication_type"),
                                lit(replication.clone()),
                            ),
                        ),
                        family: "interp/capability",
                        support: 0,
                        confidence: 1.0,
                        lift: None,
                        interp: Some(query),
                    });
                }
                Some(_) => {}
                None => removed += 1,
            }
        }
    }

    (out, removed)
}

/// Rewrites the numeric bound of a mined degree check.
fn rebound(c: &MinedCheck, limit: i64) -> Option<zodiac_spec::Check> {
    let mut check = c.check.clone();
    if let zodiac_spec::Expr::Cmp { rhs, .. } = &mut check.stmt {
        *rhs = zodiac_spec::Val::Lit(Value::Int(limit));
        return Some(check);
    }
    None
}

fn enum_domain(kb: &KnowledgeBase, rtype: &str, attr: &str) -> Vec<String> {
    kb.format(rtype, attr)
        .and_then(|f| f.enum_values().map(|v| v.to_vec()))
        .unwrap_or_default()
}

/// Convenience used by tests: default oracle from a config.
pub fn oracle_from(cfg: &MiningConfig) -> DocOracle {
    DocOracle::new(cfg.oracle_noise, cfg.oracle_seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn answers_from_doc_tables() {
        let mut o = DocOracle::new(0.0, 1);
        assert_eq!(
            o.answer(&InterpQuery::VmMaxNics {
                sku: "Standard_F4s_v2".into()
            }),
            Some(Answer::Limit(4))
        );
        assert_eq!(
            o.answer(&InterpQuery::GwActiveActive {
                sku: "Basic".into()
            }),
            Some(Answer::Supported(false))
        );
        assert_eq!(
            o.answer(&InterpQuery::SaReplicationAllowed {
                tier: "Premium".into(),
                replication: "GZRS".into()
            }),
            Some(Answer::Supported(false))
        );
        assert_eq!(
            o.answer(&InterpQuery::VmMaxNics { sku: "nope".into() }),
            None
        );
        assert_eq!(o.queries_asked(), 4);
    }

    #[test]
    fn noise_perturbs_answers() {
        let mut noisy = DocOracle::new(1.0, 2);
        let a = noisy.answer(&InterpQuery::VmMaxNics {
            sku: "Standard_F4s_v2".into(),
        });
        assert!(matches!(a, Some(Answer::Limit(n)) if n != 4));
    }

    #[test]
    fn prompts_are_natural_language() {
        let q = InterpQuery::VmMaxNics {
            sku: "Standard_F2s_v2".into(),
        };
        assert!(q.to_prompt().contains("maximum number of NICs"));
    }

    #[test]
    fn interpolation_generates_beyond_corpus() {
        let kb = zodiac_kb::azure_kb();
        let mut oracle = DocOracle::new(0.0, 3);
        let (found, removed) = interpolate(&[], &kb, &mut oracle);
        // All VM skus × 2 + gateway limits + storage capabilities, with no
        // witnessed candidates at all.
        assert!(found.len() > 30, "only {} interpolated", found.len());
        assert_eq!(removed, 0);
        // The GZRS prohibition appears.
        let gzrs = zodiac_spec::parse_check(
            "let r:SA in r.account_tier == 'Premium' => r.account_replication_type != 'GZRS'",
        )
        .unwrap();
        assert!(found
            .iter()
            .any(|c| c.check.canonical() == gzrs.canonical()));
    }
}
