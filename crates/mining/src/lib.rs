//! The Zodiac mining engine (§3.3).
//!
//! Mining turns a corpus of compiled IaC programs into *hypothesized
//! semantic checks*:
//!
//! 1. an observation pass ([`stats`]) aggregates attribute values, edge
//!    patterns, sibling/hub/copath co-occurrences, degrees and block
//!    lengths across the corpus;
//! 2. the template library ([`templates`]) instantiates candidate checks
//!    from those observations, constrained by the semantic knowledge base
//!    (conditions must test Enum-typed attributes, overlap applies to CIDR
//!    attributes, and so on — the constraints that keep the search space
//!    tractable, Figure 7a);
//! 3. **statistical filtering** removes candidates with low *confidence*
//!    (`P(stmt | cond)`) or low *lift* (`P(stmt|cond) / P(stmt)`);
//! 4. the **interpolation oracle** ([`oracle`]) answers documentation
//!    queries ("how many NICs can a `Standard_F2s_v2` VM attach?") to
//!    generalise quantitative candidates beyond what the corpus witnessed —
//!    the paper's GPT-4 step, backed here by encoded doc tables with
//!    optional answer noise.

pub mod delta;
pub mod oracle;
pub mod shard;
pub mod stats;
pub mod templates;

pub use delta::IncrementalStats;
pub use oracle::{DocOracle, InterpQuery};
pub use shard::{
    available_shards, build_stats_sharded, build_stats_streaming, mine_sharded, mine_sharded_obs,
    mine_streaming, mine_streaming_obs, ShardConfig,
};
pub use stats::CorpusStats;

use serde::Serialize;
use std::collections::BTreeMap;
use zodiac_kb::KnowledgeBase;
use zodiac_model::{Program, Symbol};
use zodiac_obs::Obs;
use zodiac_spec::Check;

/// Mining configuration.
#[derive(Debug, Clone)]
pub struct MiningConfig {
    /// Use the semantic KB to constrain template instantiation. Disabling
    /// this reproduces the "w/o KB" ablation of Figure 7a.
    pub use_kb: bool,
    /// Minimum number of condition occurrences for a candidate.
    pub min_support: usize,
    /// Minimum confidence `P(stmt|cond)`.
    pub min_confidence: f64,
    /// Minimum lift `P(stmt|cond)/P(stmt)`.
    pub min_lift: f64,
    /// Probability that the oracle mis-answers a query (hallucination).
    pub oracle_noise: f64,
    /// Oracle RNG seed.
    pub oracle_seed: u64,
}

impl Default for MiningConfig {
    fn default() -> Self {
        MiningConfig {
            use_kb: true,
            min_support: 4,
            min_confidence: 0.92,
            min_lift: 1.01,
            oracle_noise: 0.0,
            oracle_seed: 7,
        }
    }
}

/// A mined check with its mining statistics.
#[derive(Debug, Clone, Serialize)]
pub struct MinedCheck {
    /// The check.
    pub check: Check,
    /// Template family id (e.g. `intra/eq-eq`, `conn/attr-eq`).
    pub family: &'static str,
    /// Number of condition occurrences in the corpus.
    pub support: usize,
    /// `P(stmt | cond)` over corpus occurrences.
    pub confidence: f64,
    /// `confidence / P(stmt)`, when a marginal is defined for the family.
    pub lift: Option<f64>,
    /// Interpolation query this candidate maps to, if quantitative.
    pub interp: Option<InterpQuery>,
}

/// Outcome of the mining phase, including the funnel counters used by
/// Figure 7.
#[derive(Debug, Clone, Default, Serialize)]
pub struct MiningReport {
    /// All candidates instantiated from templates.
    pub hypothesized: usize,
    /// Candidates removed by the confidence filter.
    pub removed_by_confidence: usize,
    /// Candidates removed by the lift filter (after confidence).
    pub removed_by_lift: usize,
    /// Checks added by oracle interpolation.
    pub llm_found: usize,
    /// Interpolation queries the oracle rejected.
    pub llm_removed: usize,
    /// Surviving checks (statistically filtered + interpolated).
    pub checks: Vec<MinedCheck>,
    /// Intra-resource candidate counts per resource type (Figure 7a).
    pub intra_candidates_per_type: BTreeMap<Symbol, usize>,
}

/// Runs the full mining phase over a corpus.
pub fn mine(programs: &[Program], kb: &KnowledgeBase, cfg: &MiningConfig) -> MiningReport {
    mine_obs(programs, kb, cfg, &Obs::null())
}

/// [`mine`] with an observability handle: records `pipeline/mining/*` stage
/// spans plus `mining.*` funnel counters (candidates hypothesized per
/// template family, statistical-filter kills by reason, oracle
/// interpolation adds/removes).
pub fn mine_obs(
    programs: &[Program],
    kb: &KnowledgeBase,
    cfg: &MiningConfig,
    obs: &Obs,
) -> MiningReport {
    let _span = obs.start_span("pipeline/mining");
    let stats_span = obs.start_span("pipeline/mining/stats");
    let stats = CorpusStats::build(programs, kb, cfg.use_kb);
    stats_span.finish();
    mine_stats_inner(&stats, kb, cfg, obs, None)
}

/// Mines from a prebuilt observation database — the entry point for
/// incremental re-mining, where an [`IncrementalStats`] keeps the database
/// live across corpus deltas and only instantiation + filtering re-run.
/// `mine(programs, ..) == mine_with_stats(&CorpusStats::build(programs, ..), ..)`
/// by construction.
pub fn mine_with_stats(
    stats: &CorpusStats,
    kb: &KnowledgeBase,
    cfg: &MiningConfig,
) -> MiningReport {
    mine_with_stats_obs(stats, kb, cfg, &Obs::null())
}

/// [`mine_with_stats`] with an observability handle.
pub fn mine_with_stats_obs(
    stats: &CorpusStats,
    kb: &KnowledgeBase,
    cfg: &MiningConfig,
    obs: &Obs,
) -> MiningReport {
    let _span = obs.start_span("pipeline/mining");
    mine_stats_inner(stats, kb, cfg, obs, None)
}

/// Re-scores only the templates anchored on the given resource types: the
/// narrow waist of incremental re-mining. After a corpus delta, only types
/// whose supporting-project set changed can gain or lose checks, so the
/// daemon re-runs instantiation + filtering for exactly those anchors.
///
/// Every pipeline stage after instantiation (statistical filter, oracle
/// interpolation with `oracle_noise == 0`, dedup) is per-candidate, so this
/// equals `mine_with_stats(..).checks` restricted to candidates whose
/// anchor binding (`check.bindings[0].rtype`) lies in `types`, in the same
/// relative order. With `oracle_noise > 0` the oracle's RNG stream depends
/// on the global candidate sequence and the equivalence breaks — callers
/// doing incremental re-mining must pin noise to zero.
pub fn mine_types_with_stats(
    stats: &CorpusStats,
    kb: &KnowledgeBase,
    cfg: &MiningConfig,
    types: &std::collections::BTreeSet<Symbol>,
) -> Vec<MinedCheck> {
    mine_stats_inner(stats, kb, cfg, &Obs::null(), Some(types)).checks
}

/// Instantiation + statistical filtering + oracle interpolation over a
/// built observation database.
pub(crate) fn mine_stats_inner(
    stats: &CorpusStats,
    kb: &KnowledgeBase,
    cfg: &MiningConfig,
    obs: &Obs,
    anchors: Option<&std::collections::BTreeSet<Symbol>>,
) -> MiningReport {
    let templates_span = obs.start_span("pipeline/mining/templates");
    let mut candidates = templates::instantiate(stats, kb, cfg);
    if let Some(types) = anchors {
        candidates.retain(|c| types.contains(&c.check.bindings[0].rtype));
    }
    templates_span.finish();
    // Everything downstream — solver soft constraints, validation grouping,
    // report ordering — is order-sensitive, so pin a canonical total order
    // here rather than depending on template iteration details. The IR
    // derives `Ord` (symbols compare by resolved string), so this needs no
    // text rendering.
    candidates.sort_by(|a, b| {
        a.check
            .cmp(&b.check)
            .then_with(|| a.family.cmp(b.family))
            .then_with(|| a.support.cmp(&b.support))
            .then_with(|| a.confidence.total_cmp(&b.confidence))
    });

    let mut report = MiningReport {
        hypothesized: candidates.len(),
        ..Default::default()
    };
    for c in &candidates {
        let t = c.check.bindings[0].rtype;
        if c.check.shape_category() == zodiac_spec::ShapeCategory::Intra {
            *report.intra_candidates_per_type.entry(t).or_default() += 1;
        }
    }

    if obs.is_enabled() {
        for c in &candidates {
            obs.counter(&format!("mining.hypothesized.{}", c.family), 1);
            obs.lifecycle(
                c.check.fingerprint(),
                zodiac_obs::Lifecycle::Mined {
                    template: c.family.to_string(),
                    support: c.support as u64,
                    confidence_ppm: (c.confidence * 1e6) as u64,
                },
            );
        }
    }

    // Statistical filtering: confidence first, then lift.
    let filter_span = obs.start_span("pipeline/mining/filter");
    let traced = obs.is_enabled();
    let verdict = |c: &MinedCheck, rule: &str, kept: bool| {
        if traced {
            obs.lifecycle(
                c.check.fingerprint(),
                zodiac_obs::Lifecycle::FilterVerdict {
                    rule: rule.to_string(),
                    kept,
                },
            );
        }
    };
    let mut survivors = Vec::new();
    for c in candidates {
        if c.support < cfg.min_support || c.confidence < cfg.min_confidence {
            report.removed_by_confidence += 1;
            verdict(&c, "min_confidence", false);
            continue;
        }
        if let Some(lift) = c.lift {
            if lift < cfg.min_lift {
                report.removed_by_lift += 1;
                verdict(&c, "min_lift", false);
                continue;
            }
        }
        verdict(&c, "statistical", true);
        survivors.push(c);
    }
    filter_span.finish();

    // Interpolation: quantitative candidates are generalised through the
    // documentation oracle; the oracle also proposes checks for enum values
    // the corpus never witnessed (mitigating data scarcity).
    let oracle_span = obs.start_span("pipeline/mining/oracle");
    let mut oracle = DocOracle::new(cfg.oracle_noise, cfg.oracle_seed);
    let (interpolated, removed) = oracle::interpolate(&survivors, kb, &mut oracle);
    oracle_span.finish();
    report.llm_found = interpolated.len();
    report.llm_removed = removed;
    if obs.is_enabled() {
        // Interpolation may generalise a quantitative check (changing its
        // fingerprint), so oracle-backed checks get their own provenance:
        // a Mined event under the final identity plus the oracle verdict.
        for c in &interpolated {
            obs.lifecycle(
                c.check.fingerprint(),
                zodiac_obs::Lifecycle::Mined {
                    template: c.family.to_string(),
                    support: c.support as u64,
                    confidence_ppm: (c.confidence * 1e6) as u64,
                },
            );
            obs.lifecycle(
                c.check.fingerprint(),
                zodiac_obs::Lifecycle::FilterVerdict {
                    rule: "oracle".to_string(),
                    kept: true,
                },
            );
        }
    }

    // Merge: non-quantitative survivors + oracle-backed quantitative checks.
    let mut checks: Vec<MinedCheck> = survivors
        .into_iter()
        .filter(|c| c.interp.is_none())
        .collect();
    checks.extend(interpolated);
    dedup(&mut checks);
    // Doc-driven interpolation proposes checks for its whole catalogue
    // regardless of the survivor set, so an anchor-restricted run must trim
    // the merged list back to the requested types to match the full run's
    // slice.
    if let Some(types) = anchors {
        checks.retain(|c| types.contains(&c.check.bindings[0].rtype));
    }
    report.checks = checks;
    obs.counter("mining.hypothesized", report.hypothesized as u64);
    obs.counter(
        "mining.filtered.confidence",
        report.removed_by_confidence as u64,
    );
    obs.counter("mining.filtered.lift", report.removed_by_lift as u64);
    obs.counter("mining.oracle.found", report.llm_found as u64);
    obs.counter("mining.oracle.removed", report.llm_removed as u64);
    obs.counter("mining.checks", report.checks.len() as u64);
    report
}

/// Deduplicates structurally, keeping the first occurrence. Checks hash by
/// interned symbol ids, so this never renders text.
fn dedup(checks: &mut Vec<MinedCheck>) {
    let mut seen: std::collections::HashSet<Check> = std::collections::HashSet::new();
    checks.retain(|c| seen.insert(c.check.clone()));
}

#[cfg(test)]
mod tests {
    use super::*;
    use zodiac_model::Resource;

    fn spot_corpus() -> Vec<Program> {
        (0..30)
            .map(|i| {
                let mut vm = Resource::new("azurerm_linux_virtual_machine", "vm")
                    .with("name", format!("vm-{i}"))
                    .with("size", "Standard_B1s")
                    .with("priority", if i % 3 == 0 { "Spot" } else { "Regular" });
                if i % 3 == 0 {
                    vm = vm.with("eviction_policy", "Deallocate");
                }
                Program::new().with(vm)
            })
            .collect()
    }

    #[test]
    fn mines_spot_eviction_check() {
        let kb = zodiac_kb::azure_kb();
        let report = mine(&spot_corpus(), &kb, &MiningConfig::default());
        let target = "let r:VM in r.priority == 'Spot' => r.eviction_policy != null";
        let parsed = zodiac_spec::parse_check(target).unwrap();
        assert!(
            report
                .checks
                .iter()
                .any(|c| c.check.canonical() == parsed.canonical()),
            "missing spot/eviction check; got {} checks",
            report.checks.len()
        );
    }

    #[test]
    fn funnel_counters_are_consistent() {
        let kb = zodiac_kb::azure_kb();
        let report = mine(&spot_corpus(), &kb, &MiningConfig::default());
        assert!(report.hypothesized > 0);
        assert!(report.removed_by_confidence < report.hypothesized);
    }

    #[test]
    fn no_duplicate_checks() {
        let kb = zodiac_kb::azure_kb();
        let report = mine(&spot_corpus(), &kb, &MiningConfig::default());
        let mut canon: Vec<String> = report.checks.iter().map(|c| c.check.canonical()).collect();
        let before = canon.len();
        canon.sort();
        canon.dedup();
        assert_eq!(before, canon.len());
    }

    #[test]
    fn per_type_mining_matches_the_full_mining_slice() {
        let kb = zodiac_kb::azure_kb();
        let cfg = MiningConfig::default();
        let programs = spot_corpus();
        let stats = CorpusStats::build(&programs, &kb, cfg.use_kb);
        let full = mine_with_stats(&stats, &kb, &cfg);
        let anchors: std::collections::BTreeSet<Symbol> = full
            .checks
            .iter()
            .map(|c| c.check.bindings[0].rtype)
            .collect();
        assert!(!anchors.is_empty());
        for t in anchors {
            let only: std::collections::BTreeSet<Symbol> = [t].into_iter().collect();
            let sub = mine_types_with_stats(&stats, &kb, &cfg, &only);
            let slice: Vec<&MinedCheck> = full
                .checks
                .iter()
                .filter(|c| c.check.bindings[0].rtype == t)
                .collect();
            assert_eq!(sub.len(), slice.len());
            for (a, b) in sub.iter().zip(slice) {
                assert_eq!(a.check, b.check);
                assert_eq!(a.family, b.family);
                assert_eq!(a.support, b.support);
            }
        }
    }

    #[test]
    fn without_kb_generates_more_intra_candidates() {
        let kb = zodiac_kb::azure_kb();
        let with = mine(
            &spot_corpus(),
            &kb,
            &MiningConfig {
                use_kb: true,
                ..Default::default()
            },
        );
        let without = mine(
            &spot_corpus(),
            &kb,
            &MiningConfig {
                use_kb: false,
                ..Default::default()
            },
        );
        let w: usize = with.intra_candidates_per_type.values().sum();
        let wo: usize = without.intra_candidates_per_type.values().sum();
        assert!(wo > w, "w/o KB {wo} should exceed w/ KB {w}");
    }
}
