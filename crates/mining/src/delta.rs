//! Delta-aware corpus statistics: the incremental re-mining substrate.
//!
//! [`CorpusStats::build`] is a batch fold over the whole corpus. A serving
//! system (`zodiacd`) instead receives *corpus deltas* — a project added,
//! removed, or changed — and must re-score the association-rule statistics
//! without re-observing every unchanged project. [`IncrementalStats`] keeps
//! the merged observation database live under an `observe`/`retract` API:
//!
//! * every additive table (value counts, joint counts, edge/sibling/hub/
//!   copath statistics) is updated by adding or subtracting the single
//!   project's own contribution, with exact zero-pruning so the merged
//!   database stays structurally identical to a from-scratch build;
//! * the two non-invertible aggregates — conditioned degree **maxima** and
//!   block-length **minima** — keep a per-key supporter index
//!   (`key → project → contribution`) and re-fold only the keys the
//!   changed project touched;
//! * a per-resource-type supporting-project index records which template
//!   families are affected by each delta ([`IncrementalStats::take_changed_types`]),
//!   so callers can report (and bound) what was re-scored.
//!
//! The invariant, enforced by the `incremental` differential test in the
//! daemon crate: after any sequence of observes and retracts, the merged
//! database equals `CorpusStats::build` over the surviving projects —
//! `PartialEq`-exact, so template instantiation over it yields the same
//! candidate checks as full re-mining.

use crate::stats::{CorpusStats, DegreeKey, DegreeStats, FlattenArena, LengthKey};
use crate::ShardConfig;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use zodiac_kb::KnowledgeBase;
use zodiac_model::{Program, Symbol};

/// A corpus maintained project-by-project, with the merged observation
/// database kept exactly equal to a batch [`CorpusStats::build`] over the
/// current project set.
#[derive(Debug, Default)]
pub struct IncrementalStats {
    use_kb: bool,
    merged: CorpusStats,
    programs: BTreeMap<String, Program>,
    /// Supporter index for the degree-max aggregate.
    degree_contrib: BTreeMap<DegreeKey, BTreeMap<String, DegreeStats>>,
    /// Supporter index for the length-min aggregate.
    length_contrib: BTreeMap<LengthKey, BTreeMap<String, (i64, usize)>>,
    /// Projects containing at least one resource of each type.
    type_support: BTreeMap<Symbol, BTreeSet<String>>,
    /// Resource types whose supporting projects changed since the last
    /// [`IncrementalStats::take_changed_types`].
    changed_types: BTreeSet<Symbol>,
}

impl IncrementalStats {
    /// Creates an empty incremental database. `use_kb` matches the
    /// [`crate::MiningConfig::use_kb`] flag the stats will be mined under.
    pub fn new(use_kb: bool) -> Self {
        IncrementalStats {
            use_kb,
            ..Default::default()
        }
    }

    /// The merged observation database (equal to a batch build over the
    /// current projects).
    pub fn stats(&self) -> &CorpusStats {
        &self.merged
    }

    /// Number of projects currently observed.
    pub fn projects(&self) -> usize {
        self.programs.len()
    }

    /// Whether a project id is currently observed.
    pub fn contains(&self, id: &str) -> bool {
        self.programs.contains_key(id)
    }

    /// Ids of the currently observed projects, in order.
    pub fn project_ids(&self) -> impl Iterator<Item = &str> {
        self.programs.keys().map(String::as_str)
    }

    /// The currently observed programs, in project-id order — the corpus a
    /// re-validation pass deploys against.
    pub fn observed_programs(&self) -> impl Iterator<Item = &Program> {
        self.programs.values()
    }

    /// Projects supporting (containing resources of) a type — the support
    /// set of every template family anchored on that type.
    pub fn supporting_projects(&self, rtype: Symbol) -> Option<&BTreeSet<String>> {
        self.type_support.get(&rtype)
    }

    /// Drains the set of resource types whose supporting projects changed
    /// since the last call — the template families a delta re-scored.
    pub fn take_changed_types(&mut self) -> BTreeSet<Symbol> {
        std::mem::take(&mut self.changed_types)
    }

    /// Drains the changed-type set and expands it one step along the
    /// co-occurrence relation of the merged pair tables — the set of
    /// template anchors whose association-rule statistics a delta can have
    /// touched.
    ///
    /// Directly-changed types are not enough: a connection candidate
    /// anchored at `s` normalises its lift by the *destination* type's
    /// value marginal, so a delta touching only `d`-supporting projects
    /// still re-scores `s`-anchored templates. Every stats row a project
    /// contributes mentions only types present in that project, so one
    /// expansion step over the pair keys (edges, siblings, hubs, copaths,
    /// path-location, conditioned degrees) covers every such cross-type
    /// marginal; pairs that appear or disappear entirely are covered by
    /// direct membership, since the program creating or destroying the pair
    /// contains both types.
    pub fn take_affected_types(&mut self) -> BTreeSet<Symbol> {
        let changed = std::mem::take(&mut self.changed_types);
        let mut out = changed.clone();
        if changed.is_empty() {
            return out;
        }
        let m = &self.merged;
        let mut pairs: Vec<(Symbol, Symbol)> = Vec::new();
        pairs.extend(m.edges.keys().map(|k| (k.0, k.2)));
        pairs.extend(m.siblings.keys().map(|k| (k.0, k.2)));
        for k in m.hubs.keys() {
            pairs.push((k.0, k.2));
            pairs.push((k.0, k.5));
            pairs.push((k.2, k.5));
        }
        pairs.extend(m.copaths.keys().copied());
        pairs.extend(m.path_loc_eq.keys().copied());
        pairs.extend(m.degrees.keys().map(|k| (k.0, k.4)));
        for (a, b) in pairs {
            if changed.contains(&a) {
                out.insert(b);
            }
            if changed.contains(&b) {
                out.insert(a);
            }
        }
        out
    }

    /// Observes (or re-observes) one project. A project already present
    /// under this id is retracted first, making `observe` the `change`
    /// operation as well; returns `true` if an existing project was
    /// replaced.
    pub fn observe(&mut self, id: impl Into<String>, program: Program, kb: &KnowledgeBase) -> bool {
        let id = id.into();
        let replaced = self.retract(&id, kb);
        let mut per = CorpusStats::default();
        per.observe_program(&program, kb, self.use_kb);
        self.absorb(&per, &id);
        self.programs.insert(id, program);
        replaced
    }

    /// Observes a batch of projects, building each project's single-program
    /// observation database on `shard.shards` worker threads before folding
    /// them in sequentially (the fold itself is cheap and id-ordered state —
    /// supporter indexes, type support — keeps it on the caller's thread).
    /// Equivalent to calling [`IncrementalStats::observe`] per item, in
    /// order; returns how many existing projects were replaced.
    pub fn observe_batch(
        &mut self,
        items: Vec<(String, Program)>,
        kb: &KnowledgeBase,
        shard: &ShardConfig,
    ) -> usize {
        let shards = shard.shards.max(1).min(items.len());
        let use_kb = self.use_kb;
        let per: Vec<CorpusStats> = if shards <= 1 {
            let mut arena = FlattenArena::default();
            items
                .iter()
                .map(|(_, p)| {
                    let mut s = CorpusStats::default();
                    s.observe_program_with(p, kb, use_kb, &mut arena);
                    s
                })
                .collect()
        } else {
            let cursor = AtomicUsize::new(0);
            let mut indexed: Vec<(usize, CorpusStats)> = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..shards)
                    .map(|_| {
                        let cursor = &cursor;
                        let items = &items;
                        scope.spawn(move || {
                            let mut out = Vec::new();
                            let mut arena = FlattenArena::default();
                            loop {
                                let i = cursor.fetch_add(1, Ordering::Relaxed);
                                if i >= items.len() {
                                    break;
                                }
                                let mut s = CorpusStats::default();
                                s.observe_program_with(&items[i].1, kb, use_kb, &mut arena);
                                out.push((i, s));
                            }
                            out
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("observe worker panicked"))
                    .collect()
            });
            indexed.sort_by_key(|(i, _)| *i);
            indexed.into_iter().map(|(_, s)| s).collect()
        };
        let mut replaced = 0;
        for ((id, program), stats) in items.into_iter().zip(per) {
            // Re-observing an id retracts the stored program first, so a
            // duplicate id within one batch degrades to last-write-wins —
            // the same outcome as sequential `observe` calls.
            if self.retract(&id, kb) {
                replaced += 1;
            }
            self.absorb(&stats, &id);
            self.programs.insert(id, program);
        }
        replaced
    }

    /// Retracts one project; returns `false` if the id was never observed.
    pub fn retract(&mut self, id: &str, kb: &KnowledgeBase) -> bool {
        let Some(program) = self.programs.remove(id) else {
            return false;
        };
        let per = CorpusStats::build(std::slice::from_ref(&program), kb, self.use_kb);
        self.subtract(&per, id);
        true
    }

    // ---------------------------------------------------------------------
    // Merging one project's contribution in
    // ---------------------------------------------------------------------

    fn absorb(&mut self, per: &CorpusStats, id: &str) {
        for k in per.resource_count.keys() {
            self.type_support
                .entry(*k)
                .or_default()
                .insert(id.to_string());
            self.changed_types.insert(*k);
        }
        // The shard driver's merge is the single definition of "add a
        // partial database in": additive tables sum, set tables union, and
        // the monotone aggregates (degree max, length min) fold exactly as
        // the supporter-index refold would for an *addition* — max of
        // maxima, min of minima, sum of counts. Sharing the code is what
        // keeps incremental observes field-for-field consistent with merged
        // shard stats.
        self.merged.merge_from(per);
        // Record the supporter contributions so a later retract can re-fold
        // the non-invertible aggregates.
        for (k, d) in &per.degrees {
            self.degree_contrib
                .entry(k.clone())
                .or_default()
                .insert(id.to_string(), d.clone());
        }
        for (k, l) in &per.lengths {
            self.length_contrib
                .entry(k.clone())
                .or_default()
                .insert(id.to_string(), *l);
        }
    }

    // ---------------------------------------------------------------------
    // Subtracting one project's contribution out
    // ---------------------------------------------------------------------

    fn subtract(&mut self, per: &CorpusStats, id: &str) {
        let m = &mut self.merged;
        m.total_programs = m.total_programs.saturating_sub(per.total_programs);
        for (k, n) in &per.resource_count {
            sub_count(&mut m.resource_count, k, *n);
            if let Some(set) = self.type_support.get_mut(k) {
                set.remove(id);
                if set.is_empty() {
                    self.type_support.remove(k);
                }
            }
            self.changed_types.insert(*k);
        }
        for (k, n) in &per.attr_present {
            sub_count(&mut m.attr_present, k, *n);
        }
        for (k, n) in &per.attr_value {
            sub_count(&mut m.attr_value, k, *n);
        }
        // `attrs_of` mirrors the key set of `attr_present`: an attribute
        // stays in the set iff some surviving project still presents it.
        for (rt, attrs) in &per.attrs_of {
            if let Some(set) = m.attrs_of.get_mut(rt) {
                for a in attrs {
                    if !m.attr_present.contains_key(&(*rt, *a)) {
                        set.remove(a);
                    }
                }
                if set.is_empty() {
                    m.attrs_of.remove(rt);
                }
            }
        }
        for (k, n) in &per.cond_support {
            sub_count(&mut m.cond_support, k, *n);
        }
        // Joint tables exist exactly for observed conditions, so they are
        // pruned when the condition's support reaches zero — even if inner
        // maps still happen to be empty on both sides.
        for (k, inner) in &per.joint_value {
            if let Some(dst) = m.joint_value.get_mut(k) {
                for (ik, n) in inner {
                    sub_count(dst, ik, *n);
                }
            }
            if !m.cond_support.contains_key(k) {
                m.joint_value.remove(k);
            }
        }
        for (k, inner) in &per.joint_present {
            if let Some(dst) = m.joint_present.get_mut(k) {
                for (ik, n) in inner {
                    sub_count(dst, ik, *n);
                }
            }
            if !m.cond_support.contains_key(k) {
                m.joint_present.remove(k);
            }
        }
        for (k, e) in &per.edges {
            if let Some(dst) = m.edges.get_mut(k) {
                dst.occurrences = dst.occurrences.saturating_sub(e.occurrences);
                dst.dst_indeg_one = dst.dst_indeg_one.saturating_sub(e.dst_indeg_one);
                dst.dst_excl = dst.dst_excl.saturating_sub(e.dst_excl);
                for (a, (x, y)) in &e.attr_eq {
                    sub_pair(&mut dst.attr_eq, a, *x, *y);
                }
                for (a, n) in &e.dst_vals {
                    sub_count(&mut dst.dst_vals, a, *n);
                }
                for (a, n) in &e.src_vals {
                    sub_count(&mut dst.src_vals, a, *n);
                }
                for (a, (x, y)) in &e.contain {
                    sub_pair(&mut dst.contain, a, *x, *y);
                }
                if dst.occurrences == 0 {
                    m.edges.remove(k);
                }
            }
        }
        for (k, p) in &per.siblings {
            if let Some(dst) = m.siblings.get_mut(k) {
                dst.pairs = dst.pairs.saturating_sub(p.pairs);
                for (a, (x, y)) in &p.overlap {
                    sub_pair(&mut dst.overlap, a, *x, *y);
                }
                if dst.pairs == 0 {
                    m.siblings.remove(k);
                }
            }
        }
        for (k, h) in &per.hubs {
            if let Some(dst) = m.hubs.get_mut(k) {
                dst.occurrences = dst.occurrences.saturating_sub(h.occurrences);
                for (a, (x, y)) in &h.name_ne {
                    sub_pair(&mut dst.name_ne, a, *x, *y);
                }
                for (a, (x, y)) in &h.no_overlap {
                    sub_pair(&mut dst.no_overlap, a, *x, *y);
                }
                if dst.occurrences == 0 {
                    m.hubs.remove(k);
                }
            }
        }
        for (k, p) in &per.copaths {
            if let Some(dst) = m.copaths.get_mut(k) {
                dst.pairs = dst.pairs.saturating_sub(p.pairs);
                for (a, (x, y)) in &p.overlap {
                    sub_pair(&mut dst.overlap, a, *x, *y);
                }
                if dst.pairs == 0 {
                    m.copaths.remove(k);
                }
            }
        }
        for (k, (x, y)) in &per.path_loc_eq {
            sub_pair(&mut m.path_loc_eq, k, *x, *y);
        }
        for k in per.degrees.keys() {
            if let Some(contrib) = self.degree_contrib.get_mut(k) {
                contrib.remove(id);
                if contrib.is_empty() {
                    self.degree_contrib.remove(k);
                    m.degrees.remove(k);
                } else {
                    refold_degree(m, &self.degree_contrib, k);
                }
            }
        }
        for k in per.lengths.keys() {
            if let Some(contrib) = self.length_contrib.get_mut(k) {
                contrib.remove(id);
                if contrib.is_empty() {
                    self.length_contrib.remove(k);
                    m.lengths.remove(k);
                } else {
                    refold_length(m, &self.length_contrib, k);
                }
            }
        }
    }
}

/// Re-folds one degree key from its supporter index: max of maxima, sum of
/// counts — the same aggregate a batch build computes.
fn refold_degree(
    m: &mut CorpusStats,
    contrib: &BTreeMap<DegreeKey, BTreeMap<String, DegreeStats>>,
    key: &DegreeKey,
) {
    if let Some(supporters) = contrib.get(key) {
        let folded = DegreeStats {
            max: supporters.values().map(|d| d.max).max().unwrap_or(0),
            count: supporters.values().map(|d| d.count).sum(),
        };
        m.degrees.insert(key.clone(), folded);
    }
}

/// Re-folds one length key: min of minima, sum of counts.
fn refold_length(
    m: &mut CorpusStats,
    contrib: &BTreeMap<LengthKey, BTreeMap<String, (i64, usize)>>,
    key: &LengthKey,
) {
    if let Some(supporters) = contrib.get(key) {
        let folded = (
            supporters.values().map(|l| l.0).min().unwrap_or(i64::MAX),
            supporters.values().map(|l| l.1).sum(),
        );
        m.lengths.insert(key.clone(), folded);
    }
}

/// Subtracts from a count map, removing the entry at zero so the merged map
/// stays structurally equal to a fresh build.
fn sub_count<K: Ord + Clone>(m: &mut BTreeMap<K, usize>, k: &K, n: usize) {
    if let Some(v) = m.get_mut(k) {
        *v = v.saturating_sub(n);
        if *v == 0 {
            m.remove(k);
        }
    }
}

/// Subtracts from a `(numerator, denominator)` pair map; entries are created
/// only alongside a denominator increment, so they are pruned when the
/// denominator reaches zero.
fn sub_pair<K: Ord + Clone>(m: &mut BTreeMap<K, (usize, usize)>, k: &K, x: usize, y: usize) {
    if let Some(v) = m.get_mut(k) {
        v.0 = v.0.saturating_sub(x);
        v.1 = v.1.saturating_sub(y);
        if v.1 == 0 {
            m.remove(k);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zodiac_model::{Resource, Value};

    fn kb() -> KnowledgeBase {
        zodiac_kb::azure_kb()
    }

    fn spot_vm(i: usize) -> Program {
        let mut vm = Resource::new("azurerm_linux_virtual_machine", "vm")
            .with("name", format!("vm-{i}"))
            .with("size", "Standard_B1s")
            .with(
                "priority",
                if i.is_multiple_of(3) {
                    "Spot"
                } else {
                    "Regular"
                },
            );
        if i.is_multiple_of(3) {
            vm = vm.with("eviction_policy", "Deallocate");
        }
        Program::new().with(vm)
    }

    fn networked(i: usize) -> Program {
        Program::new()
            .with(
                Resource::new("azurerm_network_interface", "nic")
                    .with("location", "eastus")
                    .with("subnet_id", Value::r("azurerm_subnet", "s", "id")),
            )
            .with(Resource::new("azurerm_subnet", "s").with("name", format!("sn{i}")))
            .with(
                Resource::new("azurerm_linux_virtual_machine", "vm")
                    .with("location", "eastus")
                    .with("size", "Standard_F2s_v2")
                    .with(
                        "network_interface_ids",
                        Value::List(vec![Value::r("azurerm_network_interface", "nic", "id")]),
                    ),
            )
    }

    #[test]
    fn observe_matches_batch_build() {
        let kb = kb();
        let programs: Vec<Program> = (0..12)
            .map(|i| if i % 2 == 0 { spot_vm(i) } else { networked(i) })
            .collect();
        let mut inc = IncrementalStats::new(true);
        for (i, p) in programs.iter().enumerate() {
            inc.observe(format!("p{i}"), p.clone(), &kb);
        }
        let batch = CorpusStats::build(&programs, &kb, true);
        assert_eq!(inc.stats(), &batch);
    }

    #[test]
    fn retract_returns_to_earlier_state() {
        let kb = kb();
        let base: Vec<Program> = (0..6).map(spot_vm).collect();
        let mut inc = IncrementalStats::new(true);
        for (i, p) in base.iter().enumerate() {
            inc.observe(format!("p{i}"), p.clone(), &kb);
        }
        inc.observe("extra", networked(0), &kb);
        assert!(inc.retract("extra", &kb));
        assert!(!inc.retract("extra", &kb));
        let batch = CorpusStats::build(&base, &kb, true);
        assert_eq!(inc.stats(), &batch);
        assert_eq!(inc.projects(), 6);
    }

    #[test]
    fn retract_to_empty_is_pristine() {
        let kb = kb();
        let mut inc = IncrementalStats::new(true);
        inc.observe("a", networked(1), &kb);
        inc.observe("b", spot_vm(3), &kb);
        assert!(inc.retract("a", &kb));
        assert!(inc.retract("b", &kb));
        assert_eq!(inc.stats(), &CorpusStats::default());
        assert_eq!(inc.projects(), 0);
    }

    #[test]
    fn observe_replaces_existing_project() {
        let kb = kb();
        let mut inc = IncrementalStats::new(true);
        assert!(!inc.observe("p", spot_vm(0), &kb));
        assert!(inc.observe("p", networked(0), &kb));
        let batch = CorpusStats::build(&[networked(0)], &kb, true);
        assert_eq!(inc.stats(), &batch);
    }

    #[test]
    fn changed_types_track_delta_support() {
        let kb = kb();
        let mut inc = IncrementalStats::new(true);
        inc.observe("p", spot_vm(0), &kb);
        let changed = inc.take_changed_types();
        assert!(changed.contains(&Symbol::intern("azurerm_linux_virtual_machine")));
        assert!(inc.take_changed_types().is_empty());
        let vm = Symbol::intern("azurerm_linux_virtual_machine");
        assert_eq!(inc.supporting_projects(vm).map(|s| s.len()), Some(1));
        inc.retract("p", &kb);
        assert!(inc.take_changed_types().contains(&vm));
        assert!(inc.supporting_projects(vm).is_none());
    }

    #[test]
    fn affected_types_expand_across_pair_keys() {
        let kb = kb();
        let mut inc = IncrementalStats::new(true);
        for i in 0..4 {
            inc.observe(format!("n{i}"), networked(i), &kb);
        }
        inc.take_changed_types();
        // A delta touching only subnets shifts the subnet value marginal,
        // which re-normalises the lift of nic-anchored connection
        // templates — the nic anchor must be invalidated too.
        let subnet_only =
            Program::new().with(Resource::new("azurerm_subnet", "s").with("name", "lonely"));
        inc.observe("s-only", subnet_only, &kb);
        let subnet = Symbol::intern("azurerm_subnet");
        let nic = Symbol::intern("azurerm_network_interface");
        let affected = inc.take_affected_types();
        assert!(affected.contains(&subnet));
        assert!(
            affected.contains(&nic),
            "edge partner of a changed type must be re-scored: {affected:?}"
        );
        assert!(inc.take_affected_types().is_empty());
    }

    #[test]
    fn degree_max_survives_retraction_of_the_max_holder() {
        let kb = kb();
        // Two projects: one VM with two NICs (max degree 2), one with one.
        let two_nics = {
            let mut p = Program::new().with(
                Resource::new("azurerm_linux_virtual_machine", "vm")
                    .with("size", "Standard_F2s_v2")
                    .with(
                        "network_interface_ids",
                        Value::List(vec![
                            Value::r("azurerm_network_interface", "a", "id"),
                            Value::r("azurerm_network_interface", "b", "id"),
                        ]),
                    ),
            );
            p.add(Resource::new("azurerm_network_interface", "a"))
                .unwrap();
            p.add(Resource::new("azurerm_network_interface", "b"))
                .unwrap();
            p
        };
        let one_nic = networked(0);
        let mut inc = IncrementalStats::new(true);
        inc.observe("two", two_nics, &kb);
        inc.observe("one", one_nic.clone(), &kb);
        inc.retract("two", &kb);
        let batch = CorpusStats::build(&[one_nic], &kb, true);
        assert_eq!(inc.stats(), &batch, "degree max must re-fold to 1");
    }
}
