//! Corpus observation database.
//!
//! One pass over the corpus aggregates every statistic the template library
//! needs: attribute value distributions, intra-resource joint counts, typed
//! edge-pattern statistics, sibling/hub/copath co-occurrences, degree
//! histograms, and nested-block lengths. Template instantiation then never
//! has to touch the corpus again — candidate confidence comes straight from
//! these counters (the association-rule formulation of §3.3).
//!
//! All keys are interned [`Symbol`]s: resource types and attribute paths
//! recur across every table, so interning makes key comparison O(1) and the
//! same symbols flow straight into the check IR when templates instantiate.

use std::collections::{BTreeMap, BTreeSet};
use zodiac_graph::ResourceGraph;
use zodiac_kb::{KnowledgeBase, ValueFormat};
use zodiac_model::{Cidr, Program, Resource, Symbol, Value};

/// `(rtype, attr)` pair.
pub type TypeAttr = (Symbol, Symbol);

/// Key for intra-resource joint counts: `(rtype, cond_attr, cond_value)`.
pub type CondKey = (Symbol, Symbol, Value);

/// Key for a typed edge pattern:
/// `(src_type, in_endpoint, dst_type, out_attr)`.
pub type EdgeKey = (Symbol, Symbol, Symbol, Symbol);

/// Statistics per typed edge pattern.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EdgeStats {
    /// Number of edge occurrences.
    pub occurrences: usize,
    /// Same-path attribute equality: attr → (equal, both-present).
    pub attr_eq: BTreeMap<Symbol, (usize, usize)>,
    /// Destination attribute value counts (enum-ish attrs only).
    pub dst_vals: BTreeMap<(Symbol, Value), usize>,
    /// Source attribute value counts (enum-ish attrs only).
    pub src_vals: BTreeMap<(Symbol, Value), usize>,
    /// `contain(dst.a, src.b)` counts: (a, b) → (holds, both-present).
    pub contain: BTreeMap<(Symbol, Symbol), (usize, usize)>,
    /// Edges whose destination has exactly one incoming edge from the
    /// source type.
    pub dst_indeg_one: usize,
    /// Edges whose destination has zero incoming edges from other types.
    pub dst_excl: usize,
}

/// Pairwise statistics (siblings / copath): attr → (non-overlapping, total).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PairStats {
    /// Per-attribute overlap counts.
    pub overlap: BTreeMap<Symbol, (usize, usize)>,
    /// Number of pairs observed.
    pub pairs: usize,
}

/// Hub pattern key: `(src_type, ep1, dst1, out1, ep2, dst2, out2)`.
pub type HubKey = (Symbol, Symbol, Symbol, Symbol, Symbol, Symbol, Symbol);

/// Hub statistics: one source referencing two destinations.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HubStats {
    /// Occurrences of the hub pattern.
    pub occurrences: usize,
    /// Name-attribute inequality: (a1, a2) → (different, both-present).
    pub name_ne: BTreeMap<(Symbol, Symbol), (usize, usize)>,
    /// CIDR non-overlap: (a1, a2) → (non-overlapping, both-present).
    pub no_overlap: BTreeMap<(Symbol, Symbol), (usize, usize)>,
}

/// Degree statistics under a condition:
/// `(rtype, cond_attr, cond_value, direction, τ)` → stats.
pub type DegreeKey = (Symbol, Symbol, Value, Direction, Symbol);

/// Edge direction for degree aggregation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Direction {
    /// Incoming edges.
    In,
    /// Outgoing edges.
    Out,
}

/// Observed degree aggregate.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DegreeStats {
    /// Maximum observed degree.
    pub max: i64,
    /// Resources observed with non-zero degree.
    pub count: usize,
}

/// Length statistics: `(rtype, cond_attr, cond_value, list_attr)` →
/// (min length, count).
pub type LengthKey = (Symbol, Symbol, Value, Symbol);

/// The full observation database.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CorpusStats {
    /// Number of programs observed.
    pub total_programs: usize,
    /// Instances per resource type.
    pub resource_count: BTreeMap<Symbol, usize>,
    /// Presence count per `(rtype, attr)`.
    pub attr_present: BTreeMap<TypeAttr, usize>,
    /// Value count per `(rtype, attr, value)`.
    pub attr_value: BTreeMap<(Symbol, Symbol, Value), usize>,
    /// All attrs seen per rtype.
    pub attrs_of: BTreeMap<Symbol, BTreeSet<Symbol>>,
    /// Condition support: identical to `attr_value` restricted to enum-ish
    /// condition attributes.
    pub cond_support: BTreeMap<CondKey, usize>,
    /// Joint value counts: cond → (attr2, v2) → count.
    pub joint_value: BTreeMap<CondKey, BTreeMap<(Symbol, Value), usize>>,
    /// Joint presence: cond → attr2 → count.
    pub joint_present: BTreeMap<CondKey, BTreeMap<Symbol, usize>>,
    /// Typed edge patterns.
    pub edges: BTreeMap<EdgeKey, EdgeStats>,
    /// Sibling patterns: `(src_type, in_endpoint, dst_type, out_attr)`.
    pub siblings: BTreeMap<EdgeKey, PairStats>,
    /// Hub patterns: `(src_type, ep1, dst1, out1, ep2, dst2, out2)` with
    /// `ep1 < ep2`.
    pub hubs: BTreeMap<HubKey, HubStats>,
    /// Copath pairs: `(a_type, c_type)`.
    pub copaths: BTreeMap<(Symbol, Symbol), PairStats>,
    /// Path-connected location equality: `(a_type, b_type)` → (eq, both).
    pub path_loc_eq: BTreeMap<(Symbol, Symbol), (usize, usize)>,
    /// Conditioned degrees.
    pub degrees: BTreeMap<DegreeKey, DegreeStats>,
    /// Conditioned block lengths.
    pub lengths: BTreeMap<LengthKey, (i64, usize)>,
}

impl CorpusStats {
    /// Builds the database in one pass over the corpus.
    ///
    /// `use_kb` controls which attributes count as enum-ish conditions: with
    /// the KB, only declared `Enum`/`Bool` attributes qualify (plus reserved
    /// names for statement values); without it, *every* observed string or
    /// boolean value does — the unconstrained search space of Figure 7a.
    pub fn build(programs: &[Program], kb: &KnowledgeBase, use_kb: bool) -> Self {
        let mut s = CorpusStats::default();
        let mut arena = FlattenArena::default();
        for program in programs {
            s.observe_program_with(program, kb, use_kb, &mut arena);
        }
        s
    }

    /// Observes one program into the database. Every observation a program
    /// contributes depends only on that program (within `observe_graph` the
    /// intra pass populates `attrs_of` before the sibling pass reads it),
    /// so `build` over any partition of a corpus, merged with
    /// [`CorpusStats::merge_from`], equals the monolithic build — the
    /// invariant sharded mining rests on.
    pub fn observe_program(&mut self, program: &Program, kb: &KnowledgeBase, use_kb: bool) {
        self.observe_program_with(program, kb, use_kb, &mut FlattenArena::default());
    }

    /// [`CorpusStats::observe_program`] with a caller-held [`FlattenArena`],
    /// so a shard worker streaming thousands of projects reuses one
    /// allocation for every project's flattened attribute vectors.
    pub fn observe_program_with(
        &mut self,
        program: &Program,
        kb: &KnowledgeBase,
        use_kb: bool,
        arena: &mut FlattenArena,
    ) {
        self.total_programs += 1;
        let graph = ResourceGraph::build(program.clone());
        arena.begin(&graph, kb, use_kb);
        self.observe_graph(&graph, kb, use_kb, arena);
    }

    /// Merges another database into this one: the **exact**, order- and
    /// partition-insensitive shard merge.
    ///
    /// Every table is an integer counter (sums), a set (unions), or a
    /// monotone fold (degree maxima, length minima) — there is no floating-
    /// point accumulation anywhere, so merging shards in any order yields
    /// bit-identical state, and the probabilities ([`CorpusStats::p_value`]
    /// & friends) derived from the merged counters at query time are
    /// bit-identical too. [`crate::IncrementalStats`] absorbs per-project
    /// contributions through this same method, keeping the daemon's
    /// incremental database field-for-field consistent with shard merges.
    pub fn merge_from(&mut self, other: &CorpusStats) {
        self.total_programs += other.total_programs;
        for (k, n) in &other.resource_count {
            *self.resource_count.entry(*k).or_default() += n;
        }
        for (k, n) in &other.attr_present {
            *self.attr_present.entry(*k).or_default() += n;
        }
        for (k, n) in &other.attr_value {
            *self.attr_value.entry(k.clone()).or_default() += n;
        }
        for (rt, attrs) in &other.attrs_of {
            self.attrs_of
                .entry(*rt)
                .or_default()
                .extend(attrs.iter().copied());
        }
        for (k, n) in &other.cond_support {
            *self.cond_support.entry(k.clone()).or_default() += n;
        }
        for (k, inner) in &other.joint_value {
            let dst = self.joint_value.entry(k.clone()).or_default();
            for (ik, n) in inner {
                *dst.entry(ik.clone()).or_default() += n;
            }
        }
        for (k, inner) in &other.joint_present {
            let dst = self.joint_present.entry(k.clone()).or_default();
            for (ik, n) in inner {
                *dst.entry(*ik).or_default() += n;
            }
        }
        for (k, e) in &other.edges {
            let dst = self.edges.entry(*k).or_default();
            dst.occurrences += e.occurrences;
            dst.dst_indeg_one += e.dst_indeg_one;
            dst.dst_excl += e.dst_excl;
            for (a, (x, y)) in &e.attr_eq {
                let t = dst.attr_eq.entry(*a).or_default();
                t.0 += x;
                t.1 += y;
            }
            for (a, n) in &e.dst_vals {
                *dst.dst_vals.entry(a.clone()).or_default() += n;
            }
            for (a, n) in &e.src_vals {
                *dst.src_vals.entry(a.clone()).or_default() += n;
            }
            for (a, (x, y)) in &e.contain {
                let t = dst.contain.entry(*a).or_default();
                t.0 += x;
                t.1 += y;
            }
        }
        for (k, p) in &other.siblings {
            let dst = self.siblings.entry(*k).or_default();
            dst.pairs += p.pairs;
            for (a, (x, y)) in &p.overlap {
                let t = dst.overlap.entry(*a).or_default();
                t.0 += x;
                t.1 += y;
            }
        }
        for (k, h) in &other.hubs {
            let dst = self.hubs.entry(*k).or_default();
            dst.occurrences += h.occurrences;
            for (a, (x, y)) in &h.name_ne {
                let t = dst.name_ne.entry(*a).or_default();
                t.0 += x;
                t.1 += y;
            }
            for (a, (x, y)) in &h.no_overlap {
                let t = dst.no_overlap.entry(*a).or_default();
                t.0 += x;
                t.1 += y;
            }
        }
        for (k, p) in &other.copaths {
            let dst = self.copaths.entry(*k).or_default();
            dst.pairs += p.pairs;
            for (a, (x, y)) in &p.overlap {
                let t = dst.overlap.entry(*a).or_default();
                t.0 += x;
                t.1 += y;
            }
        }
        for (k, (x, y)) in &other.path_loc_eq {
            let t = self.path_loc_eq.entry(*k).or_default();
            t.0 += x;
            t.1 += y;
        }
        for (k, d) in &other.degrees {
            let entry = self.degrees.entry(k.clone()).or_default();
            entry.max = entry.max.max(d.max);
            entry.count += d.count;
        }
        for (k, (min, count)) in &other.lengths {
            let entry = self.lengths.entry(k.clone()).or_insert((i64::MAX, 0));
            entry.0 = entry.0.min(*min);
            entry.1 += count;
        }
    }

    /// The marginal probability `P(rtype.attr == value)`.
    pub fn p_value(&self, rtype: impl Into<Symbol>, attr: impl Into<Symbol>, value: &Value) -> f64 {
        let rtype = rtype.into();
        let total = self.resource_count.get(&rtype).copied().unwrap_or(0);
        if total == 0 {
            return 0.0;
        }
        let n = self
            .attr_value
            .get(&(rtype, attr.into(), value.clone()))
            .copied()
            .unwrap_or(0);
        n as f64 / total as f64
    }

    /// The marginal probability `P(rtype.attr present)`.
    pub fn p_present(&self, rtype: impl Into<Symbol>, attr: impl Into<Symbol>) -> f64 {
        let rtype = rtype.into();
        let total = self.resource_count.get(&rtype).copied().unwrap_or(0);
        if total == 0 {
            return 0.0;
        }
        let n = self
            .attr_present
            .get(&(rtype, attr.into()))
            .copied()
            .unwrap_or(0);
        n as f64 / total as f64
    }

    /// Probability that two independent draws of `(t1.a1, t2.a2)` are
    /// equal, from the observed value distributions.
    pub fn p_eq(
        &self,
        t1: impl Into<Symbol>,
        a1: impl Into<Symbol>,
        t2: impl Into<Symbol>,
        a2: impl Into<Symbol>,
    ) -> f64 {
        let d1 = self.value_dist(t1.into(), a1.into());
        let d2 = self.value_dist(t2.into(), a2.into());
        let mut p = 0.0;
        for (v, p1) in &d1 {
            if let Some((_, p2)) = d2.iter().find(|(w, _)| w == v) {
                p += p1 * p2;
            }
        }
        p
    }

    /// Probability that two independent CIDR draws overlap.
    pub fn p_overlap(
        &self,
        t1: impl Into<Symbol>,
        a1: impl Into<Symbol>,
        t2: impl Into<Symbol>,
        a2: impl Into<Symbol>,
    ) -> f64 {
        let c1 = self.cidr_dist(t1.into(), a1.into());
        let c2 = self.cidr_dist(t2.into(), a2.into());
        let mut p = 0.0;
        for (x, p1) in &c1 {
            for (y, p2) in &c2 {
                if x.overlaps(y) {
                    p += p1 * p2;
                }
            }
        }
        p
    }

    /// Probability that `contain(t1.a1, t2.a2)` holds for independent draws.
    pub fn p_contain(
        &self,
        t1: impl Into<Symbol>,
        a1: impl Into<Symbol>,
        t2: impl Into<Symbol>,
        a2: impl Into<Symbol>,
    ) -> f64 {
        let c1 = self.cidr_dist(t1.into(), a1.into());
        let c2 = self.cidr_dist(t2.into(), a2.into());
        let mut p = 0.0;
        for (x, p1) in &c1 {
            for (y, p2) in &c2 {
                if x.contains(y) {
                    p += p1 * p2;
                }
            }
        }
        p
    }

    fn value_dist(&self, rtype: Symbol, attr: Symbol) -> Vec<(Value, f64)> {
        let total = self.resource_count.get(&rtype).copied().unwrap_or(0).max(1) as f64;
        let mut out: Vec<(Value, f64)> = self
            .attr_value
            .iter()
            .filter(|((t, a, _), _)| *t == rtype && *a == attr)
            .map(|((_, _, v), n)| (v.clone(), *n as f64 / total))
            .collect();
        out.sort_by(|a, b| b.1.total_cmp(&a.1));
        out.truncate(64);
        out
    }

    fn cidr_dist(&self, rtype: Symbol, attr: Symbol) -> Vec<(Cidr, f64)> {
        self.value_dist(rtype, attr)
            .into_iter()
            .filter_map(|(v, p)| v.as_str().and_then(|s| s.parse().ok()).map(|c| (c, p)))
            .collect()
    }

    fn observe_graph(
        &mut self,
        graph: &ResourceGraph,
        kb: &KnowledgeBase,
        use_kb: bool,
        arena: &FlattenArena,
    ) {
        // --- per-resource (intra) observations -------------------------
        for idx in 0..graph.len() {
            let r = graph.resource(idx);
            let rt = Symbol::intern(&r.rtype);
            *self.resource_count.entry(rt).or_default() += 1;
            let leaves = arena.leaves(idx);
            for (attr, _) in leaves {
                self.attrs_of.entry(rt).or_default().insert(*attr);
            }
            for (attr, v) in leaves {
                *self.attr_present.entry((rt, *attr)).or_default() += 1;
                if track_value(v) {
                    *self.attr_value.entry((rt, *attr, v.clone())).or_default() += 1;
                }
            }
            // Joint counts under each enum-ish condition.
            let conds: Vec<(Symbol, Value)> = leaves
                .iter()
                .filter(|(a, v)| is_cond_attr(kb, use_kb, &r.rtype, a, v))
                .map(|(a, v)| (*a, v.clone()))
                .collect();
            for (ca, cv) in &conds {
                let key = (rt, *ca, cv.clone());
                *self.cond_support.entry(key.clone()).or_default() += 1;
                let jv = self.joint_value.entry(key.clone()).or_default();
                let jp = self.joint_present.entry(key).or_default();
                for (attr, v) in leaves {
                    if attr == ca {
                        continue;
                    }
                    *jp.entry(*attr).or_default() += 1;
                    if track_value(v) {
                        *jv.entry((*attr, v.clone())).or_default() += 1;
                    }
                }
            }
            // Conditioned degrees and lengths.
            let mut touched: BTreeSet<(Direction, Symbol)> = BTreeSet::new();
            for e in graph.out_edges(idx) {
                touched.insert((Direction::Out, Symbol::intern(&graph.resource(e.dst).rtype)));
            }
            for e in graph.in_edges(idx) {
                touched.insert((Direction::In, Symbol::intern(&graph.resource(e.src).rtype)));
            }
            for (ca, cv) in &conds {
                for (dir, tau) in &touched {
                    let deg = match dir {
                        Direction::In => graph.distinct_in_neighbors(idx, tau, false),
                        Direction::Out => graph.distinct_out_neighbors(idx, tau, false),
                    } as i64;
                    let entry = self
                        .degrees
                        .entry((rt, *ca, cv.clone(), *dir, *tau))
                        .or_default();
                    entry.max = entry.max.max(deg);
                    entry.count += 1;
                }
                for (attr, value) in &r.attrs {
                    if let Value::List(l) = value {
                        if l.iter().all(|x| matches!(x, Value::Map(_))) {
                            let key = (rt, *ca, cv.clone(), Symbol::intern(attr));
                            let entry = self.lengths.entry(key).or_insert((i64::MAX, 0));
                            entry.0 = entry.0.min(l.len() as i64);
                            entry.1 += 1;
                        }
                    }
                }
            }
        }

        // --- edge observations ------------------------------------------
        for e in graph.edges() {
            let src = graph.resource(e.src);
            let dst = graph.resource(e.dst);
            let key: EdgeKey = (
                Symbol::intern(&src.rtype),
                Symbol::intern(&e.in_endpoint),
                Symbol::intern(&dst.rtype),
                Symbol::intern(&e.out_attr),
            );
            let src_leaves = arena.leaves(e.src);
            let dst_leaves = arena.leaves(e.dst);
            let stats = self.edges.entry(key).or_default();
            stats.occurrences += 1;
            // Same-path equality.
            for (a, v) in src_leaves {
                if let Some((_, w)) = dst_leaves.iter().find(|(b, _)| b == a) {
                    let entry = stats.attr_eq.entry(*a).or_default();
                    entry.1 += 1;
                    if v == w {
                        entry.0 += 1;
                    }
                }
            }
            // Enum-ish statement values on both sides.
            for (a, v) in dst_leaves.iter() {
                if is_stmt_value(kb, use_kb, &dst.rtype, a, v) {
                    *stats.dst_vals.entry((*a, v.clone())).or_default() += 1;
                }
            }
            for (a, v) in src_leaves.iter() {
                if is_stmt_value(kb, use_kb, &src.rtype, a, v) {
                    *stats.src_vals.entry((*a, v.clone())).or_default() += 1;
                }
            }
            // Containment between CIDR attributes.
            for (da, dv) in dst_leaves
                .iter()
                .filter(|(a, _)| is_cidr_attr(kb, use_kb, &dst.rtype, a))
            {
                for (sa, sv) in src_leaves
                    .iter()
                    .filter(|(a, _)| is_cidr_attr(kb, use_kb, &src.rtype, a))
                {
                    let entry = stats.contain.entry((*da, *sa)).or_default();
                    entry.1 += 1;
                    if cidr_contains_any(dst, da, src, sa, dv, sv) {
                        entry.0 += 1;
                    }
                }
            }
            // Degree facts about the destination.
            let indeg_same = graph.distinct_in_neighbors(e.dst, &src.rtype, false);
            let indeg_other = graph.distinct_in_neighbors(e.dst, &src.rtype, true);
            if indeg_same == 1 {
                stats.dst_indeg_one += 1;
            }
            if indeg_other == 0 {
                stats.dst_excl += 1;
            }
        }

        // --- sibling patterns --------------------------------------------
        self.observe_siblings(graph, kb, use_kb);
        // --- hub patterns -------------------------------------------------
        self.observe_hubs(graph, kb, use_kb);
        // --- copath + path patterns --------------------------------------
        self.observe_paths(graph, kb, use_kb);
    }

    fn observe_siblings(&mut self, graph: &ResourceGraph, kb: &KnowledgeBase, use_kb: bool) {
        for dst in 0..graph.len() {
            // Group incoming edges by (src_type, endpoint).
            let mut groups: BTreeMap<(Symbol, Symbol, Symbol), Vec<usize>> = BTreeMap::new();
            for e in graph.in_edges(dst) {
                let src = graph.resource(e.src);
                groups
                    .entry((
                        Symbol::intern(&src.rtype),
                        Symbol::intern(&e.in_endpoint),
                        Symbol::intern(&e.out_attr),
                    ))
                    .or_default()
                    .push(e.src);
            }
            for ((stype, ep, out_attr), mut members) in groups {
                members.sort_unstable();
                members.dedup();
                if members.len() < 2 {
                    continue;
                }
                let key = (
                    stype,
                    ep,
                    Symbol::intern(&graph.resource(dst).rtype),
                    out_attr,
                );
                let cidr_attrs: Vec<Symbol> = self
                    .attrs_of
                    .get(&stype)
                    .map(|attrs| {
                        attrs
                            .iter()
                            .filter(|a| is_cidr_attr(kb, use_kb, &stype, a))
                            .copied()
                            .collect()
                    })
                    .unwrap_or_default();
                let stats = self.siblings.entry(key).or_default();
                for i in 0..members.len() {
                    for j in (i + 1)..members.len() {
                        stats.pairs += 1;
                        for attr in &cidr_attrs {
                            let a = cidrs_of(graph.resource(members[i]), *attr);
                            let b = cidrs_of(graph.resource(members[j]), *attr);
                            if a.is_empty() || b.is_empty() {
                                continue;
                            }
                            let entry = stats.overlap.entry(*attr).or_default();
                            entry.1 += 1;
                            let overlaps = a.iter().any(|x| b.iter().any(|y| x.overlaps(y)));
                            if !overlaps {
                                entry.0 += 1;
                            }
                        }
                    }
                }
            }
        }
    }

    fn observe_hubs(&mut self, graph: &ResourceGraph, kb: &KnowledgeBase, use_kb: bool) {
        for src in 0..graph.len() {
            let edges: Vec<_> = graph.out_edges(src).collect();
            for i in 0..edges.len() {
                for j in 0..edges.len() {
                    if i == j {
                        continue;
                    }
                    let (e1, e2) = (edges[i], edges[j]);
                    if e1.in_endpoint >= e2.in_endpoint {
                        continue; // canonical order, distinct endpoints
                    }
                    let d1 = graph.resource(e1.dst);
                    let d2 = graph.resource(e2.dst);
                    let key = (
                        Symbol::intern(&graph.resource(src).rtype),
                        Symbol::intern(&e1.in_endpoint),
                        Symbol::intern(&d1.rtype),
                        Symbol::intern(&e1.out_attr),
                        Symbol::intern(&e2.in_endpoint),
                        Symbol::intern(&d2.rtype),
                        Symbol::intern(&e2.out_attr),
                    );
                    // Collect attrs before borrowing the entry mutably.
                    let name_attrs_1 = name_attrs(d1);
                    let name_attrs_2 = name_attrs(d2);
                    let cidr_1: Vec<Symbol> = leaf_attrs(d1)
                        .into_iter()
                        .filter(|a| is_cidr_attr(kb, use_kb, &d1.rtype, a))
                        .collect();
                    let cidr_2: Vec<Symbol> = leaf_attrs(d2)
                        .into_iter()
                        .filter(|a| is_cidr_attr(kb, use_kb, &d2.rtype, a))
                        .collect();
                    let stats = self.hubs.entry(key).or_default();
                    stats.occurrences += 1;
                    for a1 in &name_attrs_1 {
                        for a2 in &name_attrs_2 {
                            let v1 = leaf_value(d1, *a1);
                            let v2 = leaf_value(d2, *a2);
                            if let (Some(v1), Some(v2)) = (v1, v2) {
                                let entry = stats.name_ne.entry((*a1, *a2)).or_default();
                                entry.1 += 1;
                                if v1 != v2 {
                                    entry.0 += 1;
                                }
                            }
                        }
                    }
                    for a1 in &cidr_1 {
                        for a2 in &cidr_2 {
                            let c1 = cidrs_of(d1, *a1);
                            let c2 = cidrs_of(d2, *a2);
                            if c1.is_empty() || c2.is_empty() {
                                continue;
                            }
                            let entry = stats.no_overlap.entry((*a1, *a2)).or_default();
                            entry.1 += 1;
                            if !c1.iter().any(|x| c2.iter().any(|y| x.overlaps(y))) {
                                entry.0 += 1;
                            }
                        }
                    }
                }
            }
        }
    }

    fn observe_paths(&mut self, graph: &ResourceGraph, kb: &KnowledgeBase, use_kb: bool) {
        let _ = (kb, use_kb);
        // Reachability sets (graphs are small).
        for a in 0..graph.len() {
            let ra = graph.resource(a);
            let mut reach: Vec<usize> = Vec::new();
            for b in 0..graph.len() {
                if a != b && graph.path(a, b) {
                    reach.push(b);
                }
            }
            // Path-based location equality.
            for &b in &reach {
                let rb = graph.resource(b);
                let (Some(la), Some(lb)) = (
                    ra.get_attr("location").and_then(Value::as_str),
                    rb.get_attr("location").and_then(Value::as_str),
                ) else {
                    continue;
                };
                let entry = self
                    .path_loc_eq
                    .entry((Symbol::intern(&ra.rtype), Symbol::intern(&rb.rtype)))
                    .or_default();
                entry.1 += 1;
                if la == lb {
                    entry.0 += 1;
                }
            }
            // Copath: pairs of same-type reachable targets with CIDR attrs.
            let mut by_type: BTreeMap<Symbol, Vec<usize>> = BTreeMap::new();
            for &b in &reach {
                by_type
                    .entry(Symbol::intern(&graph.resource(b).rtype))
                    .or_default()
                    .push(b);
            }
            for (ctype, members) in by_type {
                if members.len() < 2 {
                    continue;
                }
                let cidr_attrs: Vec<Symbol> = leaf_attrs(graph.resource(members[0]))
                    .into_iter()
                    .filter(|attr| is_cidr_attr(kb, use_kb, &ctype, attr))
                    .collect();
                if cidr_attrs.is_empty() {
                    continue;
                }
                let stats = self
                    .copaths
                    .entry((Symbol::intern(&ra.rtype), ctype))
                    .or_default();
                for i in 0..members.len() {
                    for j in (i + 1)..members.len() {
                        stats.pairs += 1;
                        for attr in &cidr_attrs {
                            let c1 = cidrs_of(graph.resource(members[i]), *attr);
                            let c2 = cidrs_of(graph.resource(members[j]), *attr);
                            if c1.is_empty() || c2.is_empty() {
                                continue;
                            }
                            let entry = stats.overlap.entry(*attr).or_default();
                            entry.1 += 1;
                            if !c1.iter().any(|x| c2.iter().any(|y| x.overlaps(y))) {
                                entry.0 += 1;
                            }
                        }
                    }
                }
            }
        }
    }
}

// --------------------------------------------------------------------------
// Attribute helpers
// --------------------------------------------------------------------------

/// A per-project arena for flattened attribute vectors.
///
/// Every resource's `(path, leaf value)` pairs live contiguously in one
/// backing vector with per-resource index ranges, so the observation pass
/// flattens each resource exactly once per project (the edge pass used to
/// re-flatten both endpoints of every edge) and a shard worker streaming
/// projects reuses the same backing allocation for all of them.
#[derive(Debug, Default)]
pub struct FlattenArena {
    leaves: Vec<(Symbol, Value)>,
    spans: Vec<(u32, u32)>,
}

impl FlattenArena {
    /// Flattens every resource of `graph`, replacing the previous project's
    /// contents but keeping the backing capacity.
    pub fn begin(&mut self, graph: &ResourceGraph, kb: &KnowledgeBase, use_kb: bool) {
        self.leaves.clear();
        self.spans.clear();
        for idx in 0..graph.len() {
            let start = self.leaves.len();
            flatten_into(graph.resource(idx), kb, use_kb, &mut self.leaves);
            self.spans.push((start as u32, self.leaves.len() as u32));
        }
    }

    /// The flattened leaves of resource `idx` in the current project.
    pub fn leaves(&self, idx: usize) -> &[(Symbol, Value)] {
        let (start, end) = self.spans[idx];
        &self.leaves[start as usize..end as usize]
    }
}

/// Flattens a resource into `(normalised path, leaf value)` pairs, applying
/// KB defaults for omitted enum/bool attributes when `use_kb` is set.
pub fn flatten(r: &Resource, kb: &KnowledgeBase, use_kb: bool) -> Vec<(Symbol, Value)> {
    let mut out = Vec::new();
    flatten_into(r, kb, use_kb, &mut out);
    out
}

/// [`flatten`] into a caller-held buffer: appends to `out` without
/// clearing, so an arena can pack many resources into one vector.
fn flatten_into(r: &Resource, kb: &KnowledgeBase, use_kb: bool, out: &mut Vec<(Symbol, Value)>) {
    let start = out.len();
    for (k, v) in &r.attrs {
        flatten_value(k, v, out);
    }
    if use_kb {
        if let Some(schema) = kb.resource(&r.rtype) {
            for attr in schema.attrs.values() {
                if out[start..].iter().any(|(a, _)| *a == attr.path) {
                    continue;
                }
                if let Some(default) = attr.format.default_value() {
                    out.push((Symbol::intern(&attr.path), default));
                }
            }
        }
    }
}

fn flatten_value(path: &str, v: &Value, out: &mut Vec<(Symbol, Value)>) {
    match v {
        Value::Map(m) => {
            for (k, inner) in m {
                flatten_value(&format!("{path}.{k}"), inner, out);
            }
        }
        Value::List(l) => {
            for inner in l {
                match inner {
                    Value::Map(_) | Value::List(_) => flatten_value(path, inner, out),
                    other => out.push((Symbol::intern(path), other.clone())),
                }
            }
        }
        Value::Ref(_) => {}
        other => out.push((Symbol::intern(path), other.clone())),
    }
}

fn leaf_attrs(r: &Resource) -> Vec<Symbol> {
    let mut out = Vec::new();
    for (k, v) in &r.attrs {
        collect_attr_names(k, v, &mut out);
    }
    out.sort();
    out.dedup();
    out
}

fn collect_attr_names(path: &str, v: &Value, out: &mut Vec<Symbol>) {
    match v {
        Value::Map(m) => {
            for (k, inner) in m {
                collect_attr_names(&format!("{path}.{k}"), inner, out);
            }
        }
        Value::List(l) => {
            for inner in l {
                match inner {
                    Value::Map(_) | Value::List(_) => collect_attr_names(path, inner, out),
                    _ => out.push(Symbol::intern(path)),
                }
            }
        }
        Value::Ref(_) => {}
        _ => out.push(Symbol::intern(path)),
    }
}

fn name_attrs(r: &Resource) -> Vec<Symbol> {
    leaf_attrs(r)
        .into_iter()
        .filter(|a| *a == "name" || a.ends_with(".name"))
        .collect()
}

fn leaf_value(r: &Resource, attr: Symbol) -> Option<Value> {
    let segs: Vec<String> = attr.split('.').map(str::to_string).collect();
    zodiac_spec::eval::resolve_multi(r, &segs)
        .into_iter()
        .next()
}

fn cidrs_of(r: &Resource, attr: Symbol) -> Vec<Cidr> {
    let segs: Vec<String> = attr.split('.').map(str::to_string).collect();
    zodiac_spec::eval::resolve_multi(r, &segs)
        .iter()
        .filter_map(|v| v.as_str())
        .filter_map(|s| s.parse().ok())
        .collect()
}

fn cidr_contains_any(
    _dst: &Resource,
    _da: &Symbol,
    _src: &Resource,
    _sa: &Symbol,
    dv: &Value,
    sv: &Value,
) -> bool {
    let (Some(a), Some(b)) = (
        dv.as_str().and_then(|s| s.parse::<Cidr>().ok()),
        sv.as_str().and_then(|s| s.parse::<Cidr>().ok()),
    ) else {
        return false;
    };
    a.contains(&b)
}

/// Should this value be tracked in value-count tables?
fn track_value(v: &Value) -> bool {
    matches!(v, Value::Str(_) | Value::Bool(_) | Value::Int(_))
}

/// Is `(rtype, attr)` an enum-ish *condition* attribute?
fn is_cond_attr(kb: &KnowledgeBase, use_kb: bool, rtype: &str, attr: &str, v: &Value) -> bool {
    if !use_kb {
        return matches!(v, Value::Str(_) | Value::Bool(_));
    }
    matches!(
        kb.format(rtype, attr),
        Some(ValueFormat::Enum { .. }) | Some(ValueFormat::BoolDefault { .. })
    )
}

/// Is `(rtype, attr = v)` an acceptable *statement* value (enum member or
/// reserved name)?
pub(crate) fn is_stmt_value(
    kb: &KnowledgeBase,
    use_kb: bool,
    rtype: &str,
    attr: &str,
    v: &Value,
) -> bool {
    if !use_kb {
        return matches!(v, Value::Str(_) | Value::Bool(_));
    }
    match kb.format(rtype, attr) {
        Some(ValueFormat::Enum { .. }) | Some(ValueFormat::BoolDefault { .. }) => true,
        Some(ValueFormat::ReservedName { reserved }) => v
            .as_str()
            .map(|s| reserved.iter().any(|r| r == s))
            .unwrap_or(false),
        _ => false,
    }
}

/// Is `(rtype, attr)` CIDR-formatted?
pub(crate) fn is_cidr_attr(kb: &KnowledgeBase, use_kb: bool, rtype: &str, attr: &str) -> bool {
    if use_kb {
        matches!(kb.format(rtype, attr), Some(ValueFormat::Cidr))
    } else {
        // Without the KB, fall back to the attribute name heuristic.
        attr.contains("address") || attr.contains("prefix") || attr.contains("cidr")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kb() -> KnowledgeBase {
        zodiac_kb::azure_kb()
    }

    fn sym(s: &str) -> Symbol {
        Symbol::intern(s)
    }

    #[test]
    fn flatten_applies_kb_defaults() {
        let r = Resource::new("azurerm_public_ip", "ip").with("allocation_method", "Dynamic");
        let leaves = flatten(&r, &kb(), true);
        assert!(leaves.contains(&(sym("sku"), Value::s("Basic"))));
        let without = flatten(&r, &kb(), false);
        assert!(!without.iter().any(|(a, _)| *a == "sku"));
    }

    #[test]
    fn counts_attr_values() {
        let programs: Vec<Program> = (0..5)
            .map(|_| {
                Program::new().with(
                    Resource::new("azurerm_public_ip", "ip")
                        .with("sku", "Standard")
                        .with("allocation_method", "Static"),
                )
            })
            .collect();
        let s = CorpusStats::build(&programs, &kb(), true);
        assert_eq!(
            s.p_value("azurerm_public_ip", "sku", &Value::s("Standard")),
            1.0
        );
        assert_eq!(
            s.cond_support
                .get(&(sym("azurerm_public_ip"), sym("sku"), Value::s("Standard")))
                .copied(),
            Some(5)
        );
    }

    #[test]
    fn edge_stats_capture_equality() {
        let programs: Vec<Program> = (0..4)
            .map(|i| {
                Program::new()
                    .with(
                        Resource::new("azurerm_network_interface", "nic")
                            .with("location", "eastus")
                            .with("subnet_id", Value::r("azurerm_subnet", "s", "id")),
                    )
                    .with(Resource::new("azurerm_subnet", "s").with("name", format!("sn{i}")))
                    .with(
                        Resource::new("azurerm_linux_virtual_machine", "vm")
                            .with("location", "eastus")
                            .with(
                                "network_interface_ids",
                                Value::List(vec![Value::r(
                                    "azurerm_network_interface",
                                    "nic",
                                    "id",
                                )]),
                            ),
                    )
            })
            .collect();
        let s = CorpusStats::build(&programs, &kb(), true);
        let key: EdgeKey = (
            sym("azurerm_linux_virtual_machine"),
            sym("network_interface_ids"),
            sym("azurerm_network_interface"),
            sym("id"),
        );
        let e = s.edges.get(&key).expect("edge pattern observed");
        assert_eq!(e.occurrences, 4);
        assert_eq!(e.attr_eq.get(&sym("location")), Some(&(4, 4)));
        assert_eq!(e.dst_indeg_one, 4);
    }

    #[test]
    fn sibling_overlap_counts() {
        let program = Program::new()
            .with(Resource::new("azurerm_virtual_network", "v").with("name", "vn"))
            .with(
                Resource::new("azurerm_subnet", "a")
                    .with(
                        "address_prefixes",
                        Value::List(vec![Value::s("10.0.1.0/24")]),
                    )
                    .with(
                        "virtual_network_name",
                        Value::r("azurerm_virtual_network", "v", "name"),
                    ),
            )
            .with(
                Resource::new("azurerm_subnet", "b")
                    .with(
                        "address_prefixes",
                        Value::List(vec![Value::s("10.0.2.0/24")]),
                    )
                    .with(
                        "virtual_network_name",
                        Value::r("azurerm_virtual_network", "v", "name"),
                    ),
            );
        let s = CorpusStats::build(&[program], &kb(), true);
        let key = (
            sym("azurerm_subnet"),
            sym("virtual_network_name"),
            sym("azurerm_virtual_network"),
            sym("name"),
        );
        let stats = s.siblings.get(&key).expect("sibling pattern");
        assert_eq!(stats.pairs, 1);
        assert_eq!(stats.overlap.get(&sym("address_prefixes")), Some(&(1, 1)));
    }

    #[test]
    fn degree_stats_record_max() {
        let mut p = Program::new().with(
            Resource::new("azurerm_linux_virtual_machine", "vm")
                .with("size", "Standard_F2s_v2")
                .with(
                    "network_interface_ids",
                    Value::List(vec![
                        Value::r("azurerm_network_interface", "a", "id"),
                        Value::r("azurerm_network_interface", "b", "id"),
                    ]),
                ),
        );
        p.add(Resource::new("azurerm_network_interface", "a"))
            .unwrap();
        p.add(Resource::new("azurerm_network_interface", "b"))
            .unwrap();
        let s = CorpusStats::build(&[p], &kb(), true);
        let key: DegreeKey = (
            sym("azurerm_linux_virtual_machine"),
            sym("size"),
            Value::s("Standard_F2s_v2"),
            Direction::Out,
            sym("azurerm_network_interface"),
        );
        assert_eq!(s.degrees.get(&key).map(|d| d.max), Some(2));
    }
}
