//! Shard-parallel corpus observation: the 100k-project mining substrate.
//!
//! [`CorpusStats::build`] folds the whole corpus on one thread. At paper
//! scale (~6k projects) that is fine; at the 100k+ scale the shard driver
//! targets, the observation pass dominates mining wall-clock and
//! parallelises perfectly because per-project observations are independent
//! (see [`CorpusStats::observe_program`]). The driver here fans projects
//! across `shards` worker threads, two ways:
//!
//! * [`build_stats_sharded_obs`] — over a materialised `&[Program]`:
//!   workers *steal* fixed-size chunks of the slice from a shared atomic
//!   cursor until it is exhausted, so a straggler chunk never idles the
//!   other workers;
//! * [`build_stats_streaming_obs`] — over any `Iterator<Item = Program>`:
//!   the calling thread generates projects and feeds batches through a
//!   bounded channel that workers pull from; only `shards × batch`-ish
//!   projects are ever alive at once, so a 100k-project corpus streams
//!   through mining without a `Vec<Project>` materialisation.
//!
//! Each worker accumulates a **shard-local** [`CorpusStats`] (reusing one
//! [`FlattenArena`] for every project's flattened attribute vectors) and
//! the driver merges shard stats **in shard-index order** via
//! [`CorpusStats::merge_from`]. The merge is exact — integer counters,
//! set unions, and monotone folds only — so which worker observed which
//! project never shows: any shard count, any batch size, any scheduling
//! interleaving produces a database `PartialEq`-identical to the
//! monolithic build, and therefore byte-identical mined check sets. The
//! `shard-invariance` fuzz property and the differential tests in
//! `tests/shard_equivalence.rs` pin exactly that.
//!
//! Observability: each worker records a `pipeline/mining/stats/shard` leaf
//! span (attrs `shard`, `projects`), and the final fold records its cost
//! in the `mining.shard_merge_ns` counter.

use crate::stats::{CorpusStats, FlattenArena};
use crate::{MiningConfig, MiningReport};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;
use zodiac_kb::KnowledgeBase;
use zodiac_model::Program;
use zodiac_obs::Obs;

/// Shard-driver configuration.
#[derive(Debug, Clone)]
pub struct ShardConfig {
    /// Worker threads observing projects. `1` keeps everything on the
    /// calling thread (no channel, no spawn) and is the default.
    pub shards: usize,
    /// Projects per work unit — the granularity workers steal at. Large
    /// enough to amortise queue traffic, small enough to balance tails.
    pub batch: usize,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig {
            shards: 1,
            batch: 32,
        }
    }
}

impl ShardConfig {
    /// A configuration using every available core.
    pub fn all_cores() -> Self {
        ShardConfig {
            shards: available_shards(),
            ..Default::default()
        }
    }

    /// `shards` workers with the default batch size.
    pub fn with_shards(shards: usize) -> Self {
        ShardConfig {
            shards: shards.max(1),
            ..Default::default()
        }
    }
}

/// The machine's available parallelism (1 if it cannot be determined).
pub fn available_shards() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Merges shard-local databases in shard-index order; the merge itself is
/// order-insensitive (integer counters only), so this determinism is
/// belt-and-braces rather than load-bearing. Records `mining.shard_merge_ns`.
fn merge_shards(shards: Vec<CorpusStats>, obs: &Obs) -> CorpusStats {
    let start = Instant::now();
    let mut iter = shards.into_iter();
    let mut merged = iter.next().unwrap_or_default();
    for shard in iter {
        merged.merge_from(&shard);
    }
    obs.counter("mining.shard_merge_ns", start.elapsed().as_nanos() as u64);
    merged
}

/// Builds [`CorpusStats`] over a materialised corpus with `cfg.shards`
/// workers stealing chunks of the slice. Equals `CorpusStats::build`
/// exactly, for every shard count.
pub fn build_stats_sharded(
    programs: &[Program],
    kb: &KnowledgeBase,
    use_kb: bool,
    cfg: &ShardConfig,
) -> CorpusStats {
    build_stats_sharded_obs(programs, kb, use_kb, cfg, &Obs::null())
}

/// [`build_stats_sharded`] with per-shard spans and merge timing.
pub fn build_stats_sharded_obs(
    programs: &[Program],
    kb: &KnowledgeBase,
    use_kb: bool,
    cfg: &ShardConfig,
    obs: &Obs,
) -> CorpusStats {
    let shards = cfg.shards.max(1);
    if shards == 1 || programs.len() < 2 {
        let mut stats = CorpusStats::default();
        let mut arena = FlattenArena::default();
        for p in programs {
            stats.observe_program_with(p, kb, use_kb, &mut arena);
        }
        return stats;
    }
    let batch = cfg.batch.max(1);
    let chunks = programs.len().div_ceil(batch);
    let cursor = AtomicUsize::new(0);
    let shard_stats: Vec<CorpusStats> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..shards)
            .map(|shard| {
                let cursor = &cursor;
                scope.spawn(move || {
                    let mut span = obs.start_leaf_span("pipeline/mining/stats/shard");
                    span.attr("shard", shard);
                    let mut local = CorpusStats::default();
                    let mut arena = FlattenArena::default();
                    let mut observed = 0usize;
                    loop {
                        let chunk = cursor.fetch_add(1, Ordering::Relaxed);
                        if chunk >= chunks {
                            break;
                        }
                        let start = chunk * batch;
                        let end = (start + batch).min(programs.len());
                        for p in &programs[start..end] {
                            local.observe_program_with(p, kb, use_kb, &mut arena);
                        }
                        observed += end - start;
                    }
                    span.attr("projects", observed);
                    span.finish();
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("shard worker panicked"))
            .collect()
    });
    merge_shards(shard_stats, obs)
}

/// Builds [`CorpusStats`] from a project stream without materialising it.
/// Returns the merged database and the number of projects observed.
pub fn build_stats_streaming<I>(
    projects: I,
    kb: &KnowledgeBase,
    use_kb: bool,
    cfg: &ShardConfig,
) -> (CorpusStats, usize)
where
    I: Iterator<Item = Program>,
{
    build_stats_streaming_obs(projects, kb, use_kb, cfg, &Obs::null())
}

/// [`build_stats_streaming`] with per-shard spans and merge timing. The
/// calling thread drives the iterator (corpus generation is sequential per
/// seed) and feeds project batches through a bounded channel; `cfg.shards`
/// workers pull batches as they free up. Bounded capacity keeps at most
/// `2 × shards` batches in flight, which is what caps peak memory.
pub fn build_stats_streaming_obs<I>(
    projects: I,
    kb: &KnowledgeBase,
    use_kb: bool,
    cfg: &ShardConfig,
    obs: &Obs,
) -> (CorpusStats, usize)
where
    I: Iterator<Item = Program>,
{
    let shards = cfg.shards.max(1);
    let batch = cfg.batch.max(1);
    if shards == 1 {
        let mut stats = CorpusStats::default();
        let mut arena = FlattenArena::default();
        let mut observed = 0usize;
        for p in projects {
            stats.observe_program_with(&p, kb, use_kb, &mut arena);
            observed += 1;
        }
        return (stats, observed);
    }
    let (tx, rx) = crossbeam::channel::bounded::<Vec<Program>>(shards * 2);
    let mut observed = 0usize;
    let shard_stats: Vec<CorpusStats> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..shards)
            .map(|shard| {
                let rx = rx.clone();
                scope.spawn(move || {
                    let mut span = obs.start_leaf_span("pipeline/mining/stats/shard");
                    span.attr("shard", shard);
                    let mut local = CorpusStats::default();
                    let mut arena = FlattenArena::default();
                    let mut seen = 0usize;
                    while let Ok(batch) = rx.recv() {
                        for p in &batch {
                            local.observe_program_with(p, kb, use_kb, &mut arena);
                        }
                        seen += batch.len();
                    }
                    span.attr("projects", seen);
                    span.finish();
                    local
                })
            })
            .collect();
        // The scope thread is the producer; dropping its receiver clone
        // first means worker `recv` errors exactly when the stream ends.
        drop(rx);
        let mut buf = Vec::with_capacity(batch);
        for p in projects {
            observed += 1;
            buf.push(p);
            if buf.len() == batch && tx.send(std::mem::take(&mut buf)).is_err() {
                break; // workers gone: a panic is surfacing via join below
            }
        }
        if !buf.is_empty() {
            let _ = tx.send(buf);
        }
        drop(tx);
        handles
            .into_iter()
            .map(|h| h.join().expect("shard worker panicked"))
            .collect()
    });
    (merge_shards(shard_stats, obs), observed)
}

/// Full mining over a materialised corpus with sharded observation.
/// Byte-identical to [`crate::mine`] for every shard count.
pub fn mine_sharded(
    programs: &[Program],
    kb: &KnowledgeBase,
    cfg: &MiningConfig,
    shard: &ShardConfig,
) -> MiningReport {
    mine_sharded_obs(programs, kb, cfg, shard, &Obs::null())
}

/// [`mine_sharded`] with an observability handle.
pub fn mine_sharded_obs(
    programs: &[Program],
    kb: &KnowledgeBase,
    cfg: &MiningConfig,
    shard: &ShardConfig,
    obs: &Obs,
) -> MiningReport {
    let t0 = std::time::Instant::now();
    let _span = obs.start_span("pipeline/mining");
    let stats_span = obs.start_span("pipeline/mining/stats");
    let stats = build_stats_sharded_obs(programs, kb, cfg.use_kb, shard, obs);
    stats_span.finish();
    let report = crate::mine_stats_inner(&stats, kb, cfg, obs, None);
    // Serving-boundary latency: one whole mining pass, visible in rolling
    // windows (`op.mine.us`) when a RollingRecorder sink is attached.
    obs.histogram("op.mine.us", t0.elapsed().as_micros() as u64);
    report
}

/// Full mining over a project stream: observation never materialises the
/// corpus. Returns the report plus the number of projects streamed.
/// Byte-identical to [`crate::mine`] over the collected stream.
pub fn mine_streaming<I>(
    projects: I,
    kb: &KnowledgeBase,
    cfg: &MiningConfig,
    shard: &ShardConfig,
) -> (MiningReport, usize)
where
    I: Iterator<Item = Program>,
{
    mine_streaming_obs(projects, kb, cfg, shard, &Obs::null())
}

/// [`mine_streaming`] with an observability handle.
pub fn mine_streaming_obs<I>(
    projects: I,
    kb: &KnowledgeBase,
    cfg: &MiningConfig,
    shard: &ShardConfig,
    obs: &Obs,
) -> (MiningReport, usize)
where
    I: Iterator<Item = Program>,
{
    let t0 = std::time::Instant::now();
    let _span = obs.start_span("pipeline/mining");
    let stats_span = obs.start_span("pipeline/mining/stats");
    let (stats, observed) = build_stats_streaming_obs(projects, kb, cfg.use_kb, shard, obs);
    stats_span.finish();
    let report = crate::mine_stats_inner(&stats, kb, cfg, obs, None);
    obs.histogram("op.mine.us", t0.elapsed().as_micros() as u64);
    (report, observed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use zodiac_model::Resource;

    fn corpus(n: usize) -> Vec<Program> {
        (0..n)
            .map(|i| {
                let mut vm = Resource::new("azurerm_linux_virtual_machine", "vm")
                    .with("name", format!("vm-{i}"))
                    .with("size", "Standard_B1s")
                    .with("priority", if i % 3 == 0 { "Spot" } else { "Regular" });
                if i % 3 == 0 {
                    vm = vm.with("eviction_policy", "Deallocate");
                }
                Program::new().with(vm)
            })
            .collect()
    }

    #[test]
    fn sharded_equals_monolithic() {
        let kb = zodiac_kb::azure_kb();
        let programs = corpus(50);
        let mono = CorpusStats::build(&programs, &kb, true);
        for shards in [1, 2, 3, 8] {
            let cfg = ShardConfig { shards, batch: 7 };
            let sharded = build_stats_sharded(&programs, &kb, true, &cfg);
            assert_eq!(sharded, mono, "{shards} shards diverge");
            let (streamed, n) = build_stats_streaming(programs.iter().cloned(), &kb, true, &cfg);
            assert_eq!(n, programs.len());
            assert_eq!(streamed, mono, "{shards}-shard stream diverges");
        }
    }

    #[test]
    fn empty_and_tiny_corpora() {
        let kb = zodiac_kb::azure_kb();
        let cfg = ShardConfig::with_shards(4);
        assert_eq!(
            build_stats_sharded(&[], &kb, true, &cfg),
            CorpusStats::default()
        );
        let (stats, n) = build_stats_streaming(std::iter::empty(), &kb, true, &cfg);
        assert_eq!(n, 0);
        assert_eq!(stats, CorpusStats::default());
        let one = corpus(1);
        assert_eq!(
            build_stats_sharded(&one, &kb, true, &cfg),
            CorpusStats::build(&one, &kb, true)
        );
    }
}
