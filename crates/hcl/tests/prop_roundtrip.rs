//! Property-based round-trip test: any compiled program printed as HCL
//! compiles back to the identical program.

use proptest::prelude::*;
use std::collections::BTreeMap;
use zodiac_model::{Program, Resource, Value};

fn arb_ident() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,11}".prop_filter("not a keyword", |s| {
        !matches!(s.as_str(), "resource" | "variable" | "locals" | "true" | "false" | "null" | "in" | "let")
    })
}

fn arb_scalar() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        "[ -~]{0,16}".prop_map(Value::s),
        (arb_ident(), arb_ident(), arb_ident())
            .prop_map(|(t, n, a)| Value::r(&format!("azurerm_{t}"), &n, &a)),
    ]
}

/// Values that survive the HCL round trip: nested blocks are maps; repeated
/// blocks are lists of ≥2 maps (a 1-element list of maps prints as a single
/// block and compiles back to a map).
fn arb_value(depth: u32) -> BoxedStrategy<Value> {
    if depth == 0 {
        return arb_scalar().boxed();
    }
    prop_oneof![
        4 => arb_scalar(),
        1 => prop::collection::vec(arb_scalar(), 0..4).prop_map(Value::List),
        1 => prop::collection::btree_map(arb_ident(), arb_value(depth - 1), 1..4)
            .prop_map(Value::Map),
        1 => prop::collection::vec(
            prop::collection::btree_map(arb_ident(), arb_scalar(), 1..3).prop_map(Value::Map),
            2..4
        )
        .prop_map(Value::List),
    ]
    .boxed()
}

fn arb_program() -> impl Strategy<Value = Program> {
    prop::collection::btree_map(
        (arb_ident(), arb_ident()),
        prop::collection::btree_map(arb_ident(), arb_value(2), 0..6),
        1..5,
    )
    .prop_map(|resources| {
        let mut p = Program::new();
        for ((rtype, name), attrs) in resources {
            let mut r = Resource::new(format!("azurerm_{rtype}"), name);
            r.attrs = attrs;
            p.add(r).expect("unique by map key");
        }
        p
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn print_compile_roundtrip(program in arb_program()) {
        let hcl = zodiac_hcl::to_hcl(&program);
        let back = zodiac_hcl::compile(&hcl)
            .unwrap_or_else(|e| panic!("generated HCL must compile: {e}\n{hcl}"));
        prop_assert_eq!(back, program, "HCL:\n{}", hcl);
    }
}
