//! Property-based round-trip test: any compiled program printed as HCL
//! compiles back to the identical program. Programs come from a seeded RNG
//! so every run replays the same sample; the seeds live in the committed
//! `tests/proptest-regressions/prop_roundtrip.txt` file, so a failing
//! seed can be pinned forever by appending one line.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use zodiac_model::{Program, Resource, Value};

const IDENT_TAIL: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789_";

fn arb_ident(rng: &mut StdRng) -> String {
    loop {
        let len = rng.gen_range(1..=12usize);
        let mut s = String::with_capacity(len);
        s.push((b'a' + rng.gen_range(0..26u8)) as char);
        for _ in 1..len {
            s.push(IDENT_TAIL[rng.gen_range(0..IDENT_TAIL.len())] as char);
        }
        let keyword = matches!(
            s.as_str(),
            "resource" | "variable" | "locals" | "true" | "false" | "null" | "in" | "let"
        );
        if !keyword {
            return s;
        }
    }
}

fn arb_scalar(rng: &mut StdRng) -> Value {
    match rng.gen_range(0..5u8) {
        0 => Value::Null,
        1 => Value::Bool(rng.gen_bool(0.5)),
        2 => Value::Int(rng.gen::<u64>() as i64),
        3 => {
            let len = rng.gen_range(0..=16usize);
            // Printable ASCII, space through tilde.
            let s: String = (0..len)
                .map(|_| rng.gen_range(0x20..=0x7eu8) as char)
                .collect();
            Value::s(s)
        }
        _ => {
            let t = arb_ident(rng);
            let n = arb_ident(rng);
            let a = arb_ident(rng);
            Value::r(&format!("azurerm_{t}"), &n, &a)
        }
    }
}

/// Values that survive the HCL round trip: nested blocks are maps; repeated
/// blocks are lists of ≥2 maps (a 1-element list of maps prints as a single
/// block and compiles back to a map).
fn arb_value(rng: &mut StdRng, depth: u32) -> Value {
    if depth == 0 {
        return arb_scalar(rng);
    }
    match rng.gen_range(0..7u8) {
        // Weight 4: plain scalars.
        0..=3 => arb_scalar(rng),
        4 => Value::List(
            (0..rng.gen_range(0..4usize))
                .map(|_| arb_scalar(rng))
                .collect(),
        ),
        5 => {
            let mut m = BTreeMap::new();
            for _ in 0..rng.gen_range(1..4usize) {
                m.insert(arb_ident(rng), arb_value(rng, depth - 1));
            }
            Value::Map(m)
        }
        _ => Value::List(
            (0..rng.gen_range(2..4usize))
                .map(|_| {
                    let mut m = BTreeMap::new();
                    for _ in 0..rng.gen_range(1..3usize) {
                        m.insert(arb_ident(rng), arb_scalar(rng));
                    }
                    Value::Map(m)
                })
                .collect(),
        ),
    }
}

fn arb_program(rng: &mut StdRng) -> Program {
    // A BTreeMap keyed by (type, name) deduplicates resource identities, like
    // the original proptest strategy did.
    let mut resources: BTreeMap<(String, String), BTreeMap<String, Value>> = BTreeMap::new();
    for _ in 0..rng.gen_range(1..5usize) {
        let key = (arb_ident(rng), arb_ident(rng));
        let mut attrs = BTreeMap::new();
        for _ in 0..rng.gen_range(0..6usize) {
            attrs.insert(arb_ident(rng), arb_value(rng, 2));
        }
        resources.insert(key, attrs);
    }
    let mut p = Program::new();
    for ((rtype, name), attrs) in resources {
        let mut r = Resource::new(format!("azurerm_{rtype}"), name);
        r.attrs = attrs;
        p.add(r).expect("unique by map key");
    }
    p
}

/// Reads the committed regression seed file: one decimal or `0x`-hex u64
/// per line, `#` comments. (Same convention as `zodiac_testkit::regression`;
/// duplicated inline because this crate sits below the testkit in the
/// dependency order.)
fn regression_seeds() -> Vec<u64> {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/proptest-regressions/prop_roundtrip.txt"
    );
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(|l| {
            match l.strip_prefix("0x").or_else(|| l.strip_prefix("0X")) {
                Some(hex) => u64::from_str_radix(hex, 16),
                None => l.parse(),
            }
            .unwrap_or_else(|e| panic!("{path}: bad seed `{l}`: {e}"))
        })
        .collect()
}

#[test]
fn print_compile_roundtrip() {
    let seeds = regression_seeds();
    assert!(!seeds.is_empty(), "the regression file must pin ≥1 seed");
    for seed in seeds {
        let mut rng = StdRng::seed_from_u64(seed);
        for case in 0..128 {
            let program = arb_program(&mut rng);
            let hcl = zodiac_hcl::to_hcl(&program);
            let back = zodiac_hcl::compile(&hcl).unwrap_or_else(|e| {
                panic!("seed {seed:#x} case {case}: generated HCL must compile: {e}\n{hcl}")
            });
            assert_eq!(back, program, "seed {seed:#x} case {case}: HCL:\n{hcl}");
        }
    }
}
