//! Tokenizer for the HCL subset.

use crate::error::HclError;

/// A lexical token with its source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token kind and payload.
    pub kind: TokenKind,
    /// 1-based source line.
    pub line: usize,
}

/// Token kinds produced by [`lex`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`resource`, `var`, attribute names, ...).
    Ident(String),
    /// String literal, pre-split into literal and interpolated parts.
    Str(Vec<StrPart>),
    /// Integer literal.
    Int(i64),
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `=`
    Equals,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `:`
    Colon,
    /// `-` (only used for negative integers in this subset)
    Minus,
    /// Statement separator (one or more newlines).
    Newline,
    /// End of input.
    Eof,
}

/// A piece of a string literal: either raw text or an interpolated expression
/// source (the text between `${` and `}`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StrPart {
    /// Literal text.
    Lit(String),
    /// Interpolated expression source.
    Interp(String),
}

/// Tokenizes HCL source.
///
/// Comments (`#`, `//`, `/* */`) are skipped. Runs of newlines collapse into
/// a single [`TokenKind::Newline`].
pub fn lex(src: &str) -> Result<Vec<Token>, HclError> {
    let mut tokens = Vec::new();
    let chars: Vec<char> = src.chars().collect();
    let mut i = 0;
    let mut line = 1;

    let push = |tokens: &mut Vec<Token>, kind: TokenKind, line: usize| {
        // Collapse consecutive newlines.
        if kind == TokenKind::Newline
            && matches!(
                tokens.last().map(|t| &t.kind),
                Some(TokenKind::Newline) | None
            )
        {
            return;
        }
        tokens.push(Token { kind, line });
    };

    while i < chars.len() {
        let c = chars[i];
        match c {
            '\n' => {
                push(&mut tokens, TokenKind::Newline, line);
                line += 1;
                i += 1;
            }
            ' ' | '\t' | '\r' => i += 1,
            '#' => {
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
            }
            '/' if chars.get(i + 1) == Some(&'/') => {
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
            }
            '/' if chars.get(i + 1) == Some(&'*') => {
                i += 2;
                loop {
                    if i + 1 >= chars.len() {
                        return Err(HclError::at(line, "unterminated block comment"));
                    }
                    if chars[i] == '\n' {
                        line += 1;
                    }
                    if chars[i] == '*' && chars[i + 1] == '/' {
                        i += 2;
                        break;
                    }
                    i += 1;
                }
            }
            '{' => {
                push(&mut tokens, TokenKind::LBrace, line);
                i += 1;
            }
            '}' => {
                push(&mut tokens, TokenKind::RBrace, line);
                i += 1;
            }
            '[' => {
                push(&mut tokens, TokenKind::LBracket, line);
                i += 1;
            }
            ']' => {
                push(&mut tokens, TokenKind::RBracket, line);
                i += 1;
            }
            '(' => {
                push(&mut tokens, TokenKind::LParen, line);
                i += 1;
            }
            ')' => {
                push(&mut tokens, TokenKind::RParen, line);
                i += 1;
            }
            '=' => {
                push(&mut tokens, TokenKind::Equals, line);
                i += 1;
            }
            ',' => {
                push(&mut tokens, TokenKind::Comma, line);
                i += 1;
            }
            '.' => {
                push(&mut tokens, TokenKind::Dot, line);
                i += 1;
            }
            ':' => {
                push(&mut tokens, TokenKind::Colon, line);
                i += 1;
            }
            '-' => {
                push(&mut tokens, TokenKind::Minus, line);
                i += 1;
            }
            '"' => {
                let (parts, consumed, newlines) = lex_string(&chars[i..], line)?;
                push(&mut tokens, TokenKind::Str(parts), line);
                line += newlines;
                i += consumed;
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < chars.len() && chars[i].is_ascii_digit() {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                let n: i64 = text
                    .parse()
                    .map_err(|_| HclError::at(line, format!("integer out of range: {text}")))?;
                push(&mut tokens, TokenKind::Int(n), line);
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < chars.len()
                    && (chars[i].is_ascii_alphanumeric() || chars[i] == '_' || chars[i] == '-')
                {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                push(&mut tokens, TokenKind::Ident(text), line);
            }
            other => {
                return Err(HclError::at(
                    line,
                    format!("unexpected character: {other:?}"),
                ));
            }
        }
    }
    push(&mut tokens, TokenKind::Newline, line);
    tokens.push(Token {
        kind: TokenKind::Eof,
        line,
    });
    Ok(tokens)
}

/// Lexes a double-quoted string starting at `chars[0] == '"'`.
///
/// Returns the parts, the number of chars consumed, and newline count inside.
fn lex_string(chars: &[char], line: usize) -> Result<(Vec<StrPart>, usize, usize), HclError> {
    debug_assert_eq!(chars[0], '"');
    let mut parts = Vec::new();
    let mut lit = String::new();
    let mut i = 1;
    let mut newlines = 0;
    loop {
        let Some(&c) = chars.get(i) else {
            return Err(HclError::at(line, "unterminated string literal"));
        };
        match c {
            '"' => {
                i += 1;
                break;
            }
            '\\' => {
                let Some(&esc) = chars.get(i + 1) else {
                    return Err(HclError::at(line, "dangling escape"));
                };
                let ch = match esc {
                    'n' => '\n',
                    't' => '\t',
                    '\\' => '\\',
                    '"' => '"',
                    '$' => '$',
                    other => {
                        return Err(HclError::at(line, format!("unknown escape: \\{other}")));
                    }
                };
                lit.push(ch);
                i += 2;
            }
            '$' if chars.get(i + 1) == Some(&'{') => {
                if !lit.is_empty() {
                    parts.push(StrPart::Lit(std::mem::take(&mut lit)));
                }
                i += 2;
                let start = i;
                let mut depth = 1;
                while i < chars.len() {
                    match chars[i] {
                        '{' => depth += 1,
                        '}' => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        '\n' => newlines += 1,
                        _ => {}
                    }
                    i += 1;
                }
                if depth != 0 {
                    return Err(HclError::at(line, "unterminated interpolation"));
                }
                let expr: String = chars[start..i].iter().collect();
                parts.push(StrPart::Interp(expr));
                i += 1; // closing brace
            }
            '\n' => {
                return Err(HclError::at(line, "newline in string literal"));
            }
            other => {
                lit.push(other);
                i += 1;
            }
        }
    }
    if !lit.is_empty() || parts.is_empty() {
        parts.push(StrPart::Lit(lit));
    }
    Ok((parts, i, newlines))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_resource_header() {
        let k = kinds(r#"resource "azurerm_subnet" "a" {"#);
        assert_eq!(k[0], TokenKind::Ident("resource".into()));
        assert_eq!(
            k[1],
            TokenKind::Str(vec![StrPart::Lit("azurerm_subnet".into())])
        );
        assert_eq!(k[3], TokenKind::LBrace);
    }

    #[test]
    fn collapses_newlines() {
        let k = kinds("a\n\n\nb");
        assert_eq!(
            k,
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Newline,
                TokenKind::Ident("b".into()),
                TokenKind::Newline,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn skips_comments() {
        let k = kinds("# hello\n// world\n/* multi\nline */ x");
        assert!(k.contains(&TokenKind::Ident("x".into())));
        assert!(!k
            .iter()
            .any(|t| matches!(t, TokenKind::Ident(s) if s == "hello")));
    }

    #[test]
    fn lexes_interpolation() {
        let k = kinds(r#""${var.prefix}-vm""#);
        assert_eq!(
            k[0],
            TokenKind::Str(vec![
                StrPart::Interp("var.prefix".into()),
                StrPart::Lit("-vm".into())
            ])
        );
    }

    #[test]
    fn lexes_escapes() {
        let k = kinds(r#""a\"b\n""#);
        assert_eq!(k[0], TokenKind::Str(vec![StrPart::Lit("a\"b\n".into())]));
    }

    #[test]
    fn errors_on_unterminated_string() {
        assert!(lex(r#""abc"#).is_err());
    }

    #[test]
    fn errors_on_unterminated_comment() {
        assert!(lex("/* abc").is_err());
    }

    #[test]
    fn tracks_line_numbers() {
        let toks = lex("a\nb\nc").unwrap();
        let c = toks
            .iter()
            .find(|t| t.kind == TokenKind::Ident("c".into()))
            .unwrap();
        assert_eq!(c.line, 3);
    }

    #[test]
    fn lexes_negative_via_minus() {
        let k = kinds("x = -5");
        assert!(k.contains(&TokenKind::Minus));
        assert!(k.contains(&TokenKind::Int(5)));
    }
}
