//! Recursive-descent parser for the HCL subset.

use crate::ast::{Block, Body, BodyItem, Expr, File, StrSeg};
use crate::error::HclError;
use crate::lexer::{self, StrPart, Token, TokenKind};

/// Parses a token stream into a [`File`].
pub fn parse(tokens: &[Token]) -> Result<File, HclError> {
    let mut p = Parser { tokens, pos: 0 };
    p.file()
}

struct Parser<'a> {
    tokens: &'a [Token],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos.min(self.tokens.len() - 1)].kind
    }

    fn line(&self) -> usize {
        self.tokens[self.pos.min(self.tokens.len() - 1)].line
    }

    fn bump(&mut self) -> &TokenKind {
        let t = &self.tokens[self.pos.min(self.tokens.len() - 1)].kind;
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn skip_newlines(&mut self) {
        while matches!(self.peek(), TokenKind::Newline) {
            self.bump();
        }
    }

    fn expect(&mut self, kind: &TokenKind, what: &str) -> Result<(), HclError> {
        if self.peek() == kind {
            self.bump();
            Ok(())
        } else {
            Err(HclError::at(
                self.line(),
                format!("expected {what}, found {:?}", self.peek()),
            ))
        }
    }

    /// Consumes a string literal token that must be a plain (uninterpolated)
    /// label, e.g. the type/name labels of a resource block.
    fn string_label(&mut self, what: &str) -> Result<String, HclError> {
        let line = self.line();
        match self.bump().clone() {
            TokenKind::Str(parts) => match parts.as_slice() {
                [StrPart::Lit(s)] => Ok(s.clone()),
                _ => Err(HclError::at(line, format!("{what} must be a plain string"))),
            },
            other => Err(HclError::at(
                line,
                format!("expected {what}, found {other:?}"),
            )),
        }
    }

    fn file(&mut self) -> Result<File, HclError> {
        let mut blocks = Vec::new();
        loop {
            self.skip_newlines();
            if matches!(self.peek(), TokenKind::Eof) {
                break;
            }
            blocks.push(self.block()?);
        }
        Ok(File { blocks })
    }

    fn block(&mut self) -> Result<Block, HclError> {
        let line = self.line();
        let keyword = match self.bump().clone() {
            TokenKind::Ident(s) => s,
            other => {
                return Err(HclError::at(
                    line,
                    format!("expected block keyword, found {other:?}"),
                ));
            }
        };
        match keyword.as_str() {
            "resource" => {
                let rtype = self.string_label("resource type")?;
                let name = self.string_label("resource name")?;
                let body = self.body()?;
                Ok(Block::Resource { rtype, name, body })
            }
            "variable" => {
                let name = self.string_label("variable name")?;
                let body = self.body()?;
                Ok(Block::Variable { name, body })
            }
            "locals" => {
                let body = self.body()?;
                Ok(Block::Locals { body })
            }
            _ => {
                let mut labels = Vec::new();
                while matches!(self.peek(), TokenKind::Str(_)) {
                    labels.push(self.string_label("block label")?);
                }
                let body = self.body()?;
                Ok(Block::Other {
                    keyword,
                    labels,
                    body,
                })
            }
        }
    }

    fn body(&mut self) -> Result<Body, HclError> {
        self.skip_newlines();
        self.expect(&TokenKind::LBrace, "'{'")?;
        let mut items = Vec::new();
        loop {
            self.skip_newlines();
            if matches!(self.peek(), TokenKind::RBrace) {
                self.bump();
                break;
            }
            if matches!(self.peek(), TokenKind::Eof) {
                return Err(HclError::at(self.line(), "unterminated block body"));
            }
            let line = self.line();
            let key = match self.bump().clone() {
                TokenKind::Ident(s) => s,
                other => {
                    return Err(HclError::at(
                        line,
                        format!("expected attribute or block name, found {other:?}"),
                    ));
                }
            };
            match self.peek() {
                TokenKind::Equals => {
                    self.bump();
                    let expr = self.expr()?;
                    items.push(BodyItem::Attr(key, expr));
                }
                TokenKind::LBrace | TokenKind::Str(_) => {
                    // Nested block (possibly labelled, e.g. `provisioner "x" {}`;
                    // labels of nested blocks are not semantically used so we
                    // fold them into the key).
                    let mut full_key = key;
                    while matches!(self.peek(), TokenKind::Str(_)) {
                        let label = self.string_label("nested block label")?;
                        full_key = format!("{full_key}.{label}");
                    }
                    let body = self.body()?;
                    items.push(BodyItem::Nested(full_key, body));
                }
                other => {
                    return Err(HclError::at(
                        line,
                        format!("expected '=' or '{{' after {key:?}, found {other:?}"),
                    ));
                }
            }
        }
        Ok(Body { items })
    }

    fn expr(&mut self) -> Result<Expr, HclError> {
        self.skip_newlines_in_expr();
        let line = self.line();
        match self.bump().clone() {
            TokenKind::Int(n) => Ok(Expr::Int(n)),
            TokenKind::Minus => match self.bump().clone() {
                TokenKind::Int(n) => Ok(Expr::Int(-n)),
                other => Err(HclError::at(
                    line,
                    format!("expected integer after '-', found {other:?}"),
                )),
            },
            TokenKind::Str(parts) => {
                let mut segs = Vec::new();
                for part in parts {
                    match part {
                        StrPart::Lit(s) => segs.push(StrSeg::Lit(s)),
                        StrPart::Interp(src) => {
                            let toks = lexer::lex(&src).map_err(|e| {
                                HclError::at(line, format!("in interpolation: {e}"))
                            })?;
                            let mut sub = Parser {
                                tokens: &toks,
                                pos: 0,
                            };
                            let e = sub.expr()?;
                            segs.push(StrSeg::Interp(e));
                        }
                    }
                }
                Ok(Expr::Str(segs))
            }
            TokenKind::LBracket => {
                let mut items = Vec::new();
                loop {
                    self.skip_newlines();
                    if matches!(self.peek(), TokenKind::RBracket) {
                        self.bump();
                        break;
                    }
                    items.push(self.expr()?);
                    self.skip_newlines();
                    if matches!(self.peek(), TokenKind::Comma) {
                        self.bump();
                    }
                }
                Ok(Expr::List(items))
            }
            TokenKind::LBrace => {
                let mut fields = Vec::new();
                loop {
                    self.skip_newlines();
                    if matches!(self.peek(), TokenKind::RBrace) {
                        self.bump();
                        break;
                    }
                    let line = self.line();
                    let key = match self.bump().clone() {
                        TokenKind::Ident(s) => s,
                        TokenKind::Str(parts) => match parts.as_slice() {
                            [StrPart::Lit(s)] => s.clone(),
                            _ => {
                                return Err(HclError::at(line, "object key must be plain"));
                            }
                        },
                        other => {
                            return Err(HclError::at(
                                line,
                                format!("expected object key, found {other:?}"),
                            ));
                        }
                    };
                    match self.bump().clone() {
                        TokenKind::Equals | TokenKind::Colon => {}
                        other => {
                            return Err(HclError::at(
                                line,
                                format!("expected '=' or ':' in object, found {other:?}"),
                            ));
                        }
                    }
                    let value = self.expr()?;
                    fields.push((key, value));
                    self.skip_newlines();
                    if matches!(self.peek(), TokenKind::Comma) {
                        self.bump();
                    }
                }
                Ok(Expr::Object(fields))
            }
            TokenKind::Ident(first) => {
                match first.as_str() {
                    "true" => return Ok(Expr::Bool(true)),
                    "false" => return Ok(Expr::Bool(false)),
                    "null" => return Ok(Expr::Null),
                    _ => {}
                }
                if matches!(self.peek(), TokenKind::LParen) {
                    self.bump();
                    let mut args = Vec::new();
                    loop {
                        self.skip_newlines();
                        if matches!(self.peek(), TokenKind::RParen) {
                            self.bump();
                            break;
                        }
                        args.push(self.expr()?);
                        self.skip_newlines();
                        if matches!(self.peek(), TokenKind::Comma) {
                            self.bump();
                        }
                    }
                    return Ok(Expr::Call(first, args));
                }
                let mut segs = vec![first];
                while matches!(self.peek(), TokenKind::Dot) {
                    self.bump();
                    let line = self.line();
                    match self.bump().clone() {
                        TokenKind::Ident(s) => segs.push(s),
                        TokenKind::Int(n) => segs.push(n.to_string()),
                        other => {
                            return Err(HclError::at(
                                line,
                                format!("expected traversal segment, found {other:?}"),
                            ));
                        }
                    }
                }
                Ok(Expr::Traversal(segs))
            }
            other => Err(HclError::at(
                line,
                format!("expected expression, found {other:?}"),
            )),
        }
    }

    /// Newlines are insignificant immediately inside list/object expressions;
    /// callers handle those. At expression start we never skip (attribute
    /// values must start on the same line), except this is relaxed for
    /// simplicity.
    fn skip_newlines_in_expr(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> File {
        parse(&lex(src).unwrap()).unwrap()
    }

    #[test]
    fn parses_resource_block() {
        let f = parse_src(
            r#"
resource "azurerm_subnet" "a" {
  name = "internal"
  address_prefixes = ["10.0.1.0/24"]
}
"#,
        );
        assert_eq!(f.blocks.len(), 1);
        match &f.blocks[0] {
            Block::Resource { rtype, name, body } => {
                assert_eq!(rtype, "azurerm_subnet");
                assert_eq!(name, "a");
                assert_eq!(body.items.len(), 2);
            }
            other => panic!("unexpected block: {other:?}"),
        }
    }

    #[test]
    fn parses_nested_blocks() {
        let f = parse_src(
            r#"
resource "azurerm_linux_virtual_machine" "vm" {
  os_disk {
    caching = "ReadWrite"
  }
  os_disk {
    caching = "None"
  }
}
"#,
        );
        match &f.blocks[0] {
            Block::Resource { body, .. } => {
                let nested: Vec<_> = body
                    .items
                    .iter()
                    .filter(|i| matches!(i, BodyItem::Nested(k, _) if k == "os_disk"))
                    .collect();
                assert_eq!(nested.len(), 2);
            }
            other => panic!("unexpected block: {other:?}"),
        }
    }

    #[test]
    fn parses_traversals_and_calls() {
        let f =
            parse_src("locals {\n  x = azurerm_subnet.a.id\n  y = cidrsubnet(var.base, 8, 1)\n}");
        match &f.blocks[0] {
            Block::Locals { body } => {
                assert_eq!(
                    body.attr("x"),
                    Some(&Expr::Traversal(vec![
                        "azurerm_subnet".into(),
                        "a".into(),
                        "id".into()
                    ]))
                );
                assert!(
                    matches!(body.attr("y"), Some(Expr::Call(name, args)) if name == "cidrsubnet" && args.len() == 3)
                );
            }
            other => panic!("unexpected block: {other:?}"),
        }
    }

    #[test]
    fn parses_literals() {
        let f = parse_src("locals {\n a = true\n b = null\n c = -3\n d = { k = \"v\" }\n}");
        match &f.blocks[0] {
            Block::Locals { body } => {
                assert_eq!(body.attr("a"), Some(&Expr::Bool(true)));
                assert_eq!(body.attr("b"), Some(&Expr::Null));
                assert_eq!(body.attr("c"), Some(&Expr::Int(-3)));
                assert!(matches!(body.attr("d"), Some(Expr::Object(_))));
            }
            other => panic!("unexpected block: {other:?}"),
        }
    }

    #[test]
    fn parses_other_blocks() {
        let f = parse_src("terraform {\n required_version = \"1.5\"\n}\nprovider \"azurerm\" {\n}");
        assert_eq!(f.blocks.len(), 2);
        assert!(
            matches!(&f.blocks[1], Block::Other { keyword, labels, .. } if keyword == "provider" && labels == &vec!["azurerm".to_string()])
        );
    }

    #[test]
    fn errors_on_missing_equals() {
        let toks = lex("resource \"t\" \"n\" {\n  key \"oops\"\n}").unwrap();
        // `key "oops"` parses as a labelled nested block with a body; the
        // missing '{' then errors.
        assert!(parse(&toks).is_err());
    }

    #[test]
    fn errors_on_unterminated_body() {
        let toks = lex("resource \"t\" \"n\" {\n  a = 1\n").unwrap();
        assert!(parse(&toks).is_err());
    }

    #[test]
    fn parses_interpolated_strings() {
        let f = parse_src("locals {\n x = \"${var.prefix}-vm\"\n}");
        match &f.blocks[0] {
            Block::Locals { body } => match body.attr("x") {
                Some(Expr::Str(segs)) => {
                    assert_eq!(segs.len(), 2);
                    assert!(
                        matches!(&segs[0], StrSeg::Interp(Expr::Traversal(t)) if t[0] == "var")
                    );
                    assert!(matches!(&segs[1], StrSeg::Lit(s) if s == "-vm"));
                }
                other => panic!("unexpected: {other:?}"),
            },
            other => panic!("unexpected block: {other:?}"),
        }
    }
}
