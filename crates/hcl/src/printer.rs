//! Rendering compiled programs back to HCL source.
//!
//! The corpus generator uses this to materialise synthetic repositories as
//! `.tf` text, and round-tripping (`compile(to_hcl(p)) == p`) is a key
//! integration-test invariant for the frontend.

use std::fmt::Write;
use zodiac_model::{Program, Resource, Value};

/// Renders a program as HCL source text.
pub fn to_hcl(program: &Program) -> String {
    let mut out = String::new();
    for (i, r) in program.resources().iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        write_resource(&mut out, r);
    }
    out
}

fn write_resource(out: &mut String, r: &Resource) {
    let _ = writeln!(out, "resource \"{}\" \"{}\" {{", r.rtype, r.name);
    for (k, v) in &r.attrs {
        write_attr(out, 1, k, v);
    }
    out.push_str("}\n");
}

fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("  ");
    }
}

fn write_attr(out: &mut String, level: usize, key: &str, v: &Value) {
    match v {
        // Nested single block.
        Value::Map(m) => {
            indent(out, level);
            let _ = writeln!(out, "{key} {{");
            for (k, inner) in m {
                write_attr(out, level + 1, k, inner);
            }
            indent(out, level);
            out.push_str("}\n");
        }
        // Repeated nested block (list of maps) renders as repeated blocks;
        // scalar lists render inline.
        Value::List(items)
            if items.iter().all(|i| matches!(i, Value::Map(_))) && !items.is_empty() =>
        {
            for item in items {
                write_attr(out, level, key, item);
            }
        }
        other => {
            indent(out, level);
            let _ = writeln!(out, "{key} = {}", render_expr(other));
        }
    }
}

fn render_expr(v: &Value) -> String {
    match v {
        Value::Null => "null".to_string(),
        Value::Bool(b) => b.to_string(),
        Value::Int(n) => n.to_string(),
        Value::Str(s) => format!("\"{}\"", escape(s)),
        Value::Ref(r) => r.to_string(),
        Value::List(items) => {
            let inner: Vec<String> = items.iter().map(render_expr).collect();
            format!("[{}]", inner.join(", "))
        }
        Value::Map(m) => {
            let inner: Vec<String> = m
                .iter()
                .map(|(k, v)| format!("{k} = {}", render_expr(v)))
                .collect();
            format!("{{ {} }}", inner.join(", "))
        }
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '$' => out.push_str("\\$"),
            other => out.push(other),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile;
    use zodiac_model::{Program, Resource};

    fn sample() -> Program {
        Program::new()
            .with(
                Resource::new("azurerm_virtual_network", "vnet")
                    .with("name", "vnet1")
                    .with("address_space", Value::List(vec![Value::s("10.0.0.0/16")])),
            )
            .with(
                Resource::new("azurerm_subnet", "a")
                    .with("name", "internal")
                    .with(
                        "virtual_network_name",
                        Value::r("azurerm_virtual_network", "vnet", "name"),
                    ),
            )
    }

    #[test]
    fn roundtrips_through_compile() {
        let p = sample();
        let hcl = to_hcl(&p);
        let back = compile(&hcl).unwrap();
        assert_eq!(p, back);
    }

    #[test]
    fn renders_nested_blocks() {
        let mut vm = Resource::new("azurerm_linux_virtual_machine", "vm");
        let path: zodiac_model::AttrPath = "os_disk.caching".parse().unwrap();
        vm.set(&path, Value::s("ReadWrite"));
        let p = Program::new().with(vm);
        let hcl = to_hcl(&p);
        assert!(hcl.contains("os_disk {"), "{hcl}");
        let back = compile(&hcl).unwrap();
        assert_eq!(p, back);
    }

    #[test]
    fn escapes_special_chars() {
        let p = Program::new().with(Resource::new("t", "r").with("name", "a\"b$c"));
        let hcl = to_hcl(&p);
        let back = compile(&hcl).unwrap();
        assert_eq!(p, back);
    }
}
