//! Error type for HCL compilation.

use std::fmt;

/// An error raised while lexing, parsing, or evaluating HCL source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HclError {
    /// Human-readable message.
    pub message: String,
    /// 1-based line where the error occurred (0 when unknown).
    pub line: usize,
}

impl HclError {
    /// Creates an error attached to a source line.
    pub fn at(line: usize, message: impl Into<String>) -> Self {
        HclError {
            message: message.into(),
            line,
        }
    }

    /// Creates an error with no source position.
    pub fn new(message: impl Into<String>) -> Self {
        HclError {
            message: message.into(),
            line: 0,
        }
    }
}

impl fmt::Display for HclError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(f, "line {}: {}", self.line, self.message)
        } else {
            write!(f, "{}", self.message)
        }
    }
}

impl std::error::Error for HclError {}
