//! HCL-subset frontend for Zodiac.
//!
//! Terraform programs are written in HCL. Zodiac's pipeline (like the paper's)
//! operates on the *compiled* plan representation ([`zodiac_model::Program`]),
//! so this crate provides the bridge: a lexer, a recursive-descent parser, an
//! evaluator that resolves variables and leaves inter-resource references as
//! graph edges, and a printer that renders compiled programs back to HCL.
//!
//! The supported subset covers what real-world Azure Terraform projects use
//! for resource declarations:
//!
//! * `resource "type" "name" { ... }` blocks with nested blocks and
//!   attributes,
//! * `variable "name" { default = ... }` and `locals { ... }`,
//! * literals (strings, integers, booleans, `null`), lists and object
//!   expressions,
//! * references (`azurerm_subnet.a.id`, `var.location`, `local.prefix`),
//! * string interpolation (`"${var.prefix}-vm"`),
//! * `#`, `//` and `/* */` comments.
//!
//! # Examples
//!
//! ```
//! let src = r#"
//! variable "location" { default = "eastus" }
//! resource "azurerm_virtual_network" "vnet" {
//!   name          = "vnet1"
//!   location      = var.location
//!   address_space = ["10.0.0.0/16"]
//! }
//! "#;
//! let program = zodiac_hcl::compile(src).unwrap();
//! assert_eq!(program.len(), 1);
//! ```

pub mod ast;
pub mod error;
pub mod eval;
pub mod lexer;
pub mod parser;
pub mod plan;
pub mod printer;

pub use error::HclError;
pub use plan::from_plan_json;
pub use printer::to_hcl;

use zodiac_model::Program;

/// Parses and evaluates HCL source into a compiled [`Program`].
///
/// Variables are substituted from their declared defaults; `locals` are
/// resolved; references to resources remain as [`zodiac_model::Value::Ref`].
pub fn compile(src: &str) -> Result<Program, HclError> {
    let tokens = lexer::lex(src)?;
    let file = parser::parse(&tokens)?;
    eval::evaluate(&file)
}
