//! Abstract syntax tree for the HCL subset.

/// A parsed HCL file: a sequence of top-level blocks.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct File {
    /// Top-level blocks in source order.
    pub blocks: Vec<Block>,
}

/// A top-level block.
#[derive(Debug, Clone, PartialEq)]
pub enum Block {
    /// `resource "type" "name" { body }`
    Resource {
        /// Resource type label.
        rtype: String,
        /// Resource local name label.
        name: String,
        /// Block body.
        body: Body,
    },
    /// `variable "name" { default = ... }`
    Variable {
        /// Variable name label.
        name: String,
        /// Block body (only `default` is interpreted).
        body: Body,
    },
    /// `locals { ... }`
    Locals {
        /// Local definitions.
        body: Body,
    },
    /// Any other block (`provider`, `terraform`, `output`, `data`, ...) —
    /// parsed for completeness but ignored by evaluation.
    Other {
        /// Block keyword.
        keyword: String,
        /// String labels following the keyword.
        labels: Vec<String>,
        /// Block body.
        body: Body,
    },
}

/// The body of a block: attributes and nested blocks in source order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Body {
    /// Items in source order.
    pub items: Vec<BodyItem>,
}

impl Body {
    /// Finds the last attribute with the given name.
    pub fn attr(&self, name: &str) -> Option<&Expr> {
        self.items.iter().rev().find_map(|i| match i {
            BodyItem::Attr(k, e) if k == name => Some(e),
            _ => None,
        })
    }
}

/// One item in a block body.
#[derive(Debug, Clone, PartialEq)]
pub enum BodyItem {
    /// `key = expr`
    Attr(String, Expr),
    /// `key { body }` — a nested block. Repeated nested blocks with the same
    /// key become list elements during evaluation.
    Nested(String, Body),
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Integer literal (possibly negated).
    Int(i64),
    /// String literal with interpolation parts already parsed as expressions.
    Str(Vec<StrSeg>),
    /// `[e1, e2, ...]`
    List(Vec<Expr>),
    /// `{ k = v, ... }` object expression.
    Object(Vec<(String, Expr)>),
    /// A traversal such as `azurerm_subnet.a.id`, `var.location`,
    /// `local.prefix`, or a bare keyword.
    Traversal(Vec<String>),
    /// A function call, e.g. `cidrsubnet(var.base, 8, 1)`. Parsed so real
    /// configs do not break the frontend; evaluation supports a small
    /// builtin set and errors on the rest.
    Call(String, Vec<Expr>),
}

/// One segment of a string literal expression.
#[derive(Debug, Clone, PartialEq)]
pub enum StrSeg {
    /// Literal text.
    Lit(String),
    /// Interpolated sub-expression.
    Interp(Expr),
}

impl Expr {
    /// Convenience: a plain (non-interpolated) string literal.
    pub fn lit(s: impl Into<String>) -> Expr {
        Expr::Str(vec![StrSeg::Lit(s.into())])
    }
}
