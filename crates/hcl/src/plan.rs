//! Terraform JSON deployment-plan ingestion.
//!
//! The paper's §6 roadmap for supporting other IaC frameworks is to operate
//! on compiled *deployment plans*: "CDKTF and Terraform share the same JSON
//! plan format; AWS CDK compiles into CloudFormation which also supports
//! JSON". This module parses the `terraform show -json` plan shape —
//! `planned_values` for concrete attribute values plus
//! `configuration.root_module.resources[].expressions` for inter-resource
//! references — into a [`Program`], so every Zodiac phase works on plans
//! produced by any frontend that emits this format.

use crate::error::HclError;
use serde_json::Value as Json;
use std::collections::BTreeMap;
use zodiac_model::{AttrPath, Program, Reference, Resource, Value};

/// Parses a Terraform JSON plan into a program.
///
/// Supported shape (the stable subset of `terraform show -json`):
///
/// ```json
/// {
///   "planned_values": { "root_module": { "resources": [
///       { "type": "azurerm_subnet", "name": "a", "values": { ... } } ] } },
///   "configuration": { "root_module": { "resources": [
///       { "type": "azurerm_subnet", "name": "a",
///         "expressions": { "virtual_network_name":
///             { "references": ["azurerm_virtual_network.v.name"] } } } ] } }
/// }
/// ```
pub fn from_plan_json(input: &str) -> Result<Program, HclError> {
    let json: Json = serde_json::from_str(input)
        .map_err(|e| HclError::new(format!("invalid plan JSON: {e}")))?;
    let mut program = Program::new();

    let planned = json
        .pointer("/planned_values/root_module/resources")
        .and_then(Json::as_array)
        .ok_or_else(|| HclError::new("plan has no planned_values.root_module.resources"))?;
    for entry in planned {
        let rtype = entry
            .get("type")
            .and_then(Json::as_str)
            .ok_or_else(|| HclError::new("resource entry missing type"))?;
        let name = entry
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| HclError::new("resource entry missing name"))?;
        let mut resource = Resource::new(rtype, name);
        if let Some(values) = entry.get("values").and_then(Json::as_object) {
            for (k, v) in values {
                resource.attrs.insert(k.clone(), json_to_value(v));
            }
        }
        program
            .add(resource)
            .map_err(|e| HclError::new(e.to_string()))?;
    }

    // Overlay references from the configuration section: expressions with
    // `references` become `Value::Ref` edges (the plan's `values` only carry
    // `null` for computed attributes like ids).
    if let Some(config) = json
        .pointer("/configuration/root_module/resources")
        .and_then(Json::as_array)
    {
        for entry in config {
            let (Some(rtype), Some(name)) = (
                entry.get("type").and_then(Json::as_str),
                entry.get("name").and_then(Json::as_str),
            ) else {
                continue;
            };
            let Some(expressions) = entry.get("expressions").and_then(Json::as_object) else {
                continue;
            };
            let id = zodiac_model::ResourceId::new(rtype, name);
            let Some(resource) = program.find_mut(&id) else {
                continue;
            };
            overlay_refs(resource, &AttrPath(Vec::new()), expressions);
        }
    }

    Ok(program)
}

fn overlay_refs(
    resource: &mut Resource,
    base: &AttrPath,
    expressions: &serde_json::Map<String, Json>,
) {
    for (attr, expr) in expressions {
        let mut path = base.clone();
        path.0.push(attr.clone());
        match expr {
            // `{ "references": ["azurerm_x.y.attr", "azurerm_x.y"] }`
            Json::Object(o) if o.contains_key("references") => {
                let Some(refs) = o.get("references").and_then(Json::as_array) else {
                    continue;
                };
                // Terraform lists both `type.name.attr` and the `type.name`
                // prefix; take the most specific (first) entry.
                let Some(reference) = refs
                    .iter()
                    .filter_map(Json::as_str)
                    .find(|s| s.split('.').count() >= 3)
                    .and_then(|s| s.parse::<Reference>().ok())
                else {
                    continue;
                };
                resource.set(&path, Value::Ref(reference));
            }
            // Nested single block: `{ "name": {...}, "subnet_id": {...} }`
            Json::Object(o) => {
                overlay_refs(resource, &path, o);
            }
            // Repeated blocks: `[ { ... }, { ... } ]`
            Json::Array(items) => {
                for (i, item) in items.iter().enumerate() {
                    if let Json::Object(o) = item {
                        let mut idx_path = path.clone();
                        idx_path.0.push(i.to_string());
                        overlay_refs(resource, &idx_path, o);
                    }
                }
            }
            _ => {}
        }
    }
}

fn json_to_value(v: &Json) -> Value {
    match v {
        Json::Null => Value::Null,
        Json::Bool(b) => Value::Bool(*b),
        Json::Number(n) => n
            .as_i64()
            .map(Value::Int)
            .unwrap_or_else(|| Value::s(n.to_string())),
        Json::String(s) => Value::s(s.clone()),
        Json::Array(items) => Value::List(items.iter().map(json_to_value).collect()),
        Json::Object(o) => Value::Map(
            o.iter()
                .map(|(k, val)| (k.clone(), json_to_value(val)))
                .collect::<BTreeMap<_, _>>(),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PLAN: &str = r#"{
      "format_version": "1.2",
      "planned_values": { "root_module": { "resources": [
        { "address": "azurerm_virtual_network.v", "type": "azurerm_virtual_network",
          "name": "v",
          "values": { "name": "vnet1", "location": "eastus",
                      "address_space": ["10.0.0.0/16"] } },
        { "address": "azurerm_subnet.a", "type": "azurerm_subnet", "name": "a",
          "values": { "name": "internal", "address_prefixes": ["10.0.1.0/24"],
                      "virtual_network_name": null } },
        { "address": "azurerm_network_interface.n",
          "type": "azurerm_network_interface", "name": "n",
          "values": { "name": "nic", "location": "eastus",
                      "ip_configuration": [
                        { "name": "i", "private_ip_address_allocation": "Dynamic" } ] } }
      ] } },
      "configuration": { "root_module": { "resources": [
        { "type": "azurerm_subnet", "name": "a",
          "expressions": { "virtual_network_name":
            { "references": ["azurerm_virtual_network.v.name", "azurerm_virtual_network.v"] } } },
        { "type": "azurerm_network_interface", "name": "n",
          "expressions": { "ip_configuration": [
            { "subnet_id": { "references": ["azurerm_subnet.a.id", "azurerm_subnet.a"] } } ] } }
      ] } }
    }"#;

    #[test]
    fn parses_values_and_references() {
        let program = from_plan_json(PLAN).unwrap();
        assert_eq!(program.len(), 3);
        let subnet = program
            .find(&zodiac_model::ResourceId::new("azurerm_subnet", "a"))
            .unwrap();
        assert_eq!(
            subnet.get_attr("virtual_network_name"),
            Some(&Value::r("azurerm_virtual_network", "v", "name"))
        );
        // The nested list block got its reference too.
        let nic = program
            .find(&zodiac_model::ResourceId::new(
                "azurerm_network_interface",
                "n",
            ))
            .unwrap();
        let path: AttrPath = "ip_configuration.0.subnet_id".parse().unwrap();
        assert_eq!(nic.get(&path), Some(&Value::r("azurerm_subnet", "a", "id")));
    }

    #[test]
    fn plan_program_builds_a_connected_graph() {
        let program = from_plan_json(PLAN).unwrap();
        let graph = zodiac_graph::ResourceGraph::build(program);
        assert_eq!(graph.edges().len(), 2);
    }

    #[test]
    fn rejects_malformed_plans() {
        assert!(from_plan_json("not json").is_err());
        assert!(from_plan_json("{}").is_err());
        assert!(from_plan_json(
            r#"{"planned_values":{"root_module":{"resources":[{"name":"x"}]}}}"#
        )
        .is_err());
    }

    #[test]
    fn plan_without_configuration_still_parses() {
        let plan = r#"{ "planned_values": { "root_module": { "resources": [
            { "type": "azurerm_resource_group", "name": "rg",
              "values": { "name": "rg1", "location": "eastus" } } ] } } }"#;
        let program = from_plan_json(plan).unwrap();
        assert_eq!(program.len(), 1);
    }
}
