//! Evaluation of parsed HCL into a compiled [`Program`].
//!
//! Evaluation resolves `var.*` (from declared defaults) and `local.*`
//! bindings, folds nested blocks into attribute values (a block occurring
//! once becomes a map; a repeated block becomes a list of maps, matching
//! Terraform's JSON plan), and leaves resource traversals as
//! [`Value::Ref`] edges.

use crate::ast::{Block, Body, BodyItem, Expr, File, StrSeg};
use crate::error::HclError;
use std::collections::BTreeMap;
use zodiac_model::{Cidr, Program, Reference, Resource, Value};

/// Evaluates a parsed file into a program.
pub fn evaluate(file: &File) -> Result<Program, HclError> {
    let mut env = Env::default();

    // Pass 1: variable defaults.
    for block in &file.blocks {
        if let Block::Variable { name, body } = block {
            if let Some(default) = body.attr("default") {
                let v = eval_expr(default, &env)?;
                env.vars.insert(name.clone(), v);
            } else {
                env.vars.insert(name.clone(), Value::Null);
            }
        }
    }

    // Pass 2: locals, iterated to fixpoint so ordering does not matter.
    let local_defs: Vec<(&String, &Expr)> = file
        .blocks
        .iter()
        .filter_map(|b| match b {
            Block::Locals { body } => Some(body),
            _ => None,
        })
        .flat_map(|body| {
            body.items.iter().filter_map(|i| match i {
                BodyItem::Attr(k, e) => Some((k, e)),
                BodyItem::Nested(..) => None,
            })
        })
        .collect();
    let mut pending: Vec<(&String, &Expr)> = local_defs;
    for _round in 0..8 {
        let mut next = Vec::new();
        let before = pending.len();
        for (k, e) in pending {
            match eval_expr(e, &env) {
                Ok(v) => {
                    env.locals.insert(k.clone(), v);
                }
                Err(_) => next.push((k, e)),
            }
        }
        pending = next;
        if pending.is_empty() || pending.len() == before {
            break;
        }
    }
    if let Some((k, e)) = pending.first() {
        // Report the first unresolvable local precisely.
        eval_expr(e, &env).map_err(|err| HclError::new(format!("local {k}: {}", err.message)))?;
    }

    // Pass 3: resources.
    let mut program = Program::new();
    for block in &file.blocks {
        if let Block::Resource { rtype, name, body } = block {
            let attrs = eval_body(body, &env)?;
            let mut resource = Resource::new(rtype.clone(), name.clone());
            resource.attrs = attrs;
            program
                .add(resource)
                .map_err(|e| HclError::new(e.to_string()))?;
        }
    }
    Ok(program)
}

#[derive(Default)]
struct Env {
    vars: BTreeMap<String, Value>,
    locals: BTreeMap<String, Value>,
}

fn eval_body(body: &Body, env: &Env) -> Result<BTreeMap<String, Value>, HclError> {
    let mut attrs: BTreeMap<String, Value> = BTreeMap::new();
    let mut block_counts: BTreeMap<&str, usize> = BTreeMap::new();
    for item in &body.items {
        if let BodyItem::Nested(k, _) = item {
            *block_counts.entry(k.as_str()).or_default() += 1;
        }
    }
    for item in &body.items {
        match item {
            BodyItem::Attr(k, e) => {
                attrs.insert(k.clone(), eval_expr(e, env)?);
            }
            BodyItem::Nested(k, b) => {
                let inner = Value::Map(eval_body(b, env)?);
                if block_counts[k.as_str()] > 1 {
                    match attrs
                        .entry(k.clone())
                        .or_insert_with(|| Value::List(Vec::new()))
                    {
                        Value::List(l) => l.push(inner),
                        other => {
                            return Err(HclError::new(format!(
                                "block {k} conflicts with attribute of same name ({other:?})"
                            )));
                        }
                    }
                } else {
                    attrs.insert(k.clone(), inner);
                }
            }
        }
    }
    Ok(attrs)
}

fn eval_expr(expr: &Expr, env: &Env) -> Result<Value, HclError> {
    match expr {
        Expr::Null => Ok(Value::Null),
        Expr::Bool(b) => Ok(Value::Bool(*b)),
        Expr::Int(n) => Ok(Value::Int(*n)),
        Expr::List(items) => Ok(Value::List(
            items
                .iter()
                .map(|e| eval_expr(e, env))
                .collect::<Result<_, _>>()?,
        )),
        Expr::Object(fields) => {
            let mut m = BTreeMap::new();
            for (k, e) in fields {
                m.insert(k.clone(), eval_expr(e, env)?);
            }
            Ok(Value::Map(m))
        }
        Expr::Traversal(segs) => eval_traversal(segs, env),
        Expr::Str(segs) => eval_string(segs, env),
        Expr::Call(name, args) => eval_call(name, args, env),
    }
}

fn eval_traversal(segs: &[String], env: &Env) -> Result<Value, HclError> {
    match segs {
        [kw, name, rest @ ..] if kw == "var" => {
            let base = env
                .vars
                .get(name)
                .ok_or_else(|| HclError::new(format!("undefined variable: {name}")))?;
            navigate(base, rest, &format!("var.{name}"))
        }
        [kw, name, rest @ ..] if kw == "local" => {
            let base = env
                .locals
                .get(name)
                .ok_or_else(|| HclError::new(format!("undefined local: {name}")))?;
            navigate(base, rest, &format!("local.{name}"))
        }
        [rtype, name, rest @ ..] if !rest.is_empty() => Ok(Value::Ref(Reference::new(
            rtype.clone(),
            name.clone(),
            rest.join("."),
        ))),
        other => Err(HclError::new(format!(
            "unsupported traversal: {}",
            other.join(".")
        ))),
    }
}

fn navigate(base: &Value, path: &[String], what: &str) -> Result<Value, HclError> {
    base.get_path(path)
        .cloned()
        .ok_or_else(|| HclError::new(format!("{what} has no element at .{}", path.join("."))))
}

fn eval_string(segs: &[StrSeg], env: &Env) -> Result<Value, HclError> {
    // A string that is exactly one interpolation passes its value through,
    // preserving references as graph edges.
    if let [StrSeg::Interp(e)] = segs {
        return eval_expr(e, env);
    }
    let mut out = String::new();
    for seg in segs {
        match seg {
            StrSeg::Lit(s) => out.push_str(s),
            StrSeg::Interp(e) => match eval_expr(e, env)? {
                Value::Str(s) => out.push_str(&s),
                Value::Int(n) => out.push_str(&n.to_string()),
                Value::Bool(b) => out.push_str(if b { "true" } else { "false" }),
                Value::Ref(r) => out.push_str(&format!("${{{r}}}")),
                other => {
                    return Err(HclError::new(format!(
                        "cannot interpolate non-scalar value: {}",
                        other.render()
                    )));
                }
            },
        }
    }
    Ok(Value::Str(out))
}

fn eval_call(name: &str, args: &[Expr], env: &Env) -> Result<Value, HclError> {
    let vals: Vec<Value> = args
        .iter()
        .map(|e| eval_expr(e, env))
        .collect::<Result<_, _>>()?;
    match name {
        "cidrsubnet" => {
            let [Value::Str(base), Value::Int(newbits), Value::Int(netnum)] = vals.as_slice()
            else {
                return Err(HclError::new(
                    "cidrsubnet(base, newbits, netnum) expects (string, int, int)",
                ));
            };
            let cidr: Cidr = base
                .parse()
                .map_err(|_| HclError::new(format!("cidrsubnet: invalid base CIDR {base}")))?;
            let prefix = cidr.prefix() as i64 + newbits;
            if !(0..=32).contains(&prefix) {
                return Err(HclError::new("cidrsubnet: prefix out of range"));
            }
            let subs = cidr.subnets(prefix as u8);
            let sub = subs
                .get(*netnum as usize)
                .ok_or_else(|| HclError::new("cidrsubnet: netnum out of range"))?;
            Ok(Value::Str(sub.to_string()))
        }
        "format" => {
            let Some((Value::Str(fmt), rest)) = vals.split_first() else {
                return Err(HclError::new("format expects a format string"));
            };
            let mut out = String::new();
            let mut args_iter = rest.iter();
            let mut chars = fmt.chars().peekable();
            while let Some(c) = chars.next() {
                if c == '%' {
                    match chars.next() {
                        Some('s') | Some('d') => {
                            let v = args_iter
                                .next()
                                .ok_or_else(|| HclError::new("format: not enough arguments"))?;
                            match v {
                                Value::Str(s) => out.push_str(s),
                                Value::Int(n) => out.push_str(&n.to_string()),
                                other => out.push_str(&other.render()),
                            }
                        }
                        Some('%') => out.push('%'),
                        other => {
                            return Err(HclError::new(format!(
                                "format: unsupported verb {other:?}"
                            )));
                        }
                    }
                } else {
                    out.push(c);
                }
            }
            Ok(Value::Str(out))
        }
        "lower" | "upper" => {
            let [Value::Str(s)] = vals.as_slice() else {
                return Err(HclError::new(format!("{name} expects one string")));
            };
            Ok(Value::Str(if name == "lower" {
                s.to_lowercase()
            } else {
                s.to_uppercase()
            }))
        }
        "length" => {
            let [v] = vals.as_slice() else {
                return Err(HclError::new("length expects one argument"));
            };
            let n = match v {
                Value::List(l) => l.len(),
                Value::Str(s) => s.len(),
                Value::Map(m) => m.len(),
                _ => return Err(HclError::new("length: unsupported type")),
            };
            Ok(Value::Int(n as i64))
        }
        other => Err(HclError::new(format!("unsupported function: {other}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile;

    #[test]
    fn compiles_resources_with_vars_and_locals() {
        let p = compile(
            r#"
variable "location" { default = "eastus" }
locals { prefix = "prod" }
resource "azurerm_virtual_network" "vnet" {
  name     = "${local.prefix}-vnet"
  location = var.location
}
"#,
        )
        .unwrap();
        let r = &p.resources()[0];
        assert_eq!(r.get_attr("name"), Some(&Value::s("prod-vnet")));
        assert_eq!(r.get_attr("location"), Some(&Value::s("eastus")));
    }

    #[test]
    fn preserves_references() {
        let p = compile(
            r#"
resource "azurerm_subnet" "a" { name = "internal" }
resource "azurerm_network_interface" "nic" {
  subnet_id = azurerm_subnet.a.id
  alt       = "${azurerm_subnet.a.id}"
}
"#,
        )
        .unwrap();
        let nic = &p.resources()[1];
        let expected = Value::r("azurerm_subnet", "a", "id");
        assert_eq!(nic.get_attr("subnet_id"), Some(&expected));
        // A pure single-interpolation string also stays a reference.
        assert_eq!(nic.get_attr("alt"), Some(&expected));
    }

    #[test]
    fn repeated_blocks_become_lists() {
        let p = compile(
            r#"
resource "azurerm_network_security_group" "sg" {
  security_rule { direction = "Inbound" }
  security_rule { direction = "Outbound" }
}
"#,
        )
        .unwrap();
        let sg = &p.resources()[0];
        let rules = sg.get_attr("security_rule").unwrap().as_list().unwrap();
        assert_eq!(rules.len(), 2);
    }

    #[test]
    fn single_block_becomes_map() {
        let p = compile(
            "resource \"azurerm_linux_virtual_machine\" \"vm\" {\n os_disk { name = \"d\" }\n}",
        )
        .unwrap();
        let vm = &p.resources()[0];
        assert!(vm.get_attr("os_disk").unwrap().as_map().is_some());
    }

    #[test]
    fn cidrsubnet_builtin() {
        let p = compile(
            r#"
variable "base" { default = "10.0.0.0/16" }
resource "azurerm_subnet" "a" {
  address_prefixes = [cidrsubnet(var.base, 8, 2)]
}
"#,
        )
        .unwrap();
        let a = &p.resources()[0];
        assert_eq!(
            a.get_attr("address_prefixes").unwrap().as_list().unwrap()[0],
            Value::s("10.0.2.0/24")
        );
    }

    #[test]
    fn locals_resolve_out_of_order() {
        let p = compile(
            r#"
locals {
  full  = "${local.base}-x"
  base  = "abc"
}
resource "azurerm_subnet" "a" { name = local.full }
"#,
        )
        .unwrap();
        assert_eq!(p.resources()[0].get_attr("name"), Some(&Value::s("abc-x")));
    }

    #[test]
    fn undefined_variable_errors() {
        let err = compile("resource \"t\" \"n\" { x = var.nope }").unwrap_err();
        assert!(err.message.contains("undefined variable"));
    }

    #[test]
    fn duplicate_resource_errors() {
        let err = compile("resource \"t\" \"n\" {}\nresource \"t\" \"n\" {}").unwrap_err();
        assert!(err.message.contains("duplicate"));
    }

    #[test]
    fn format_and_length_builtins() {
        let p = compile(
            r#"
locals {
  n = format("vm-%s-%d", "web", 3)
  l = length(["a", "b"])
}
resource "t" "r" {
  name  = local.n
  count_hint = local.l
}
"#,
        )
        .unwrap();
        let r = &p.resources()[0];
        assert_eq!(r.get_attr("name"), Some(&Value::s("vm-web-3")));
        assert_eq!(r.get_attr("count_hint"), Some(&Value::Int(2)));
    }

    #[test]
    fn ignores_provider_blocks() {
        let p =
            compile("provider \"azurerm\" {\n features {}\n}\nresource \"t\" \"a\" {}").unwrap();
        assert_eq!(p.len(), 1);
    }
}
