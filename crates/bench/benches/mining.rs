//! Mining-throughput bench for the typed check IR.
//!
//! Isolates the mining phase (observation + template instantiation +
//! statistical filtering + oracle interpolation) so the effect of the
//! IR refactor — interned symbol keys, `Ord`-based candidate sorting,
//! hash-based dedup, and builder-constructed checks replacing the old
//! `format!`-then-parse round trip — shows up as end-to-end throughput.
//! Results are recorded in `BENCH_check_ir.json` at the repo root.

use criterion::{criterion_group, criterion_main, Criterion};
use zodiac_corpus::{CorpusConfig, ProjectStream};
use zodiac_mining::{
    build_stats_sharded, mine, mine_streaming, CorpusStats, MiningConfig, ShardConfig,
};
use zodiac_model::Program;

fn corpus(projects: usize) -> Vec<Program> {
    zodiac_corpus::generate(&CorpusConfig {
        projects,
        noise_rate: 0.02,
        ..Default::default()
    })
    .into_iter()
    .map(|p| p.program)
    .collect()
}

/// End-to-end mining over the standard 60-project corpus — the headline
/// number compared before/after the IR refactor.
fn bench_mine_60(c: &mut Criterion) {
    let corpus = corpus(60);
    let kb = zodiac_kb::azure_kb();
    c.bench_function("mining/60-projects", |b| {
        b.iter(|| mine(&corpus, &kb, &MiningConfig::default()))
    });
}

/// A larger corpus stresses candidate sorting and dedup, where interned
/// symbols replace per-comparison string rendering.
fn bench_mine_200(c: &mut Criterion) {
    let corpus = corpus(200);
    let kb = zodiac_kb::azure_kb();
    c.bench_function("mining/200-projects", |b| {
        b.iter(|| mine(&corpus, &kb, &MiningConfig::default()))
    });
}

/// The observation pass alone: corpus statistics keyed by interned symbols.
fn bench_observe(c: &mut Criterion) {
    let corpus = corpus(60);
    let kb = zodiac_kb::azure_kb();
    c.bench_function("mining/observe-60-projects", |b| {
        b.iter(|| CorpusStats::build(&corpus, &kb, true))
    });
}

/// The observation pass through the shard driver (2 shards). On a
/// single-core host this measures the driver's scheduling overhead; on a
/// multi-core host, its speedup. Results are byte-identical either way.
fn bench_observe_sharded(c: &mut Criterion) {
    let corpus = corpus(60);
    let kb = zodiac_kb::azure_kb();
    let cfg = ShardConfig::with_shards(2);
    c.bench_function("mining/observe-60-projects-2-shards", |b| {
        b.iter(|| build_stats_sharded(&corpus, &kb, true, &cfg))
    });
}

/// Streaming mining end-to-end: generation + observation overlapped through
/// the bounded channel, no materialised corpus.
fn bench_mine_streaming(c: &mut Criterion) {
    let kb = zodiac_kb::azure_kb();
    let ccfg = CorpusConfig {
        projects: 200,
        noise_rate: 0.02,
        ..Default::default()
    };
    let shard = ShardConfig::with_shards(2);
    c.bench_function("mining/stream-200-projects-2-shards", |b| {
        b.iter(|| {
            let stream = ProjectStream::new(&ccfg).map(|p| p.program);
            mine_streaming(stream, &kb, &MiningConfig::default(), &shard)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_mine_60, bench_mine_200, bench_observe, bench_observe_sharded,
        bench_mine_streaming
}
criterion_main!(benches);
