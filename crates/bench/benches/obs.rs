//! Telemetry micro-benchmarks: the cost of one serving-boundary
//! observation on the hot scan path (registry + rolling windows +
//! exemplar offer, the work `Daemon::handle` adds around dispatch) and
//! the cost of rendering a `/metrics` scrape. Results are recorded in
//! `BENCH_obs.json` at the repo root; the end-to-end overhead gate is the
//! `obs_smoke` release binary run by `scripts/ci.sh`.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::sync::Arc;
use zodiac_obs::{
    Exemplar, MemoryRecorder, MonotonicClock, Obs, Recorder, RollingRecorder, TailExemplars,
};

/// An `Obs` handle wired the way `Daemon::open` wires it: a cumulative
/// registry plus a rolling-window recorder.
fn serving_obs() -> (Obs, Arc<MemoryRecorder>, Arc<RollingRecorder>) {
    let registry = Arc::new(MemoryRecorder::new());
    let rolling = Arc::new(RollingRecorder::new(Arc::new(MonotonicClock::new())));
    let obs = Obs::null()
        .with_sink(registry.clone())
        .with_sink(rolling.clone() as Arc<dyn Recorder>);
    (obs, registry, rolling)
}

const OPS: [&str; 4] = ["scan", "repair", "status", "explain"];

fn bench_obs(c: &mut Criterion) {
    // One boundary observation: span + latency histogram into both sinks +
    // exemplar offer — amortised over a batch so per-op cost is readable.
    c.bench_function("obs/boundary-record-1k", |b| {
        let (obs, _registry, _rolling) = serving_obs();
        let exemplars = TailExemplars::new(8);
        b.iter(|| {
            for i in 0..1_000u64 {
                let span = obs.start_leaf_span("daemon/request/scan");
                let span_id = span.id();
                span.finish();
                obs.histogram("op.scan.us", black_box(40 + i % 64));
                exemplars.observe(
                    "scan",
                    Exemplar {
                        latency_us: 40 + i % 64,
                        ts_us: i,
                        span_id,
                        fingerprints: Vec::new(),
                    },
                );
            }
        })
    });

    // The rolling recorder alone, on an already-hot op.
    c.bench_function("obs/rolling-record-1k", |b| {
        let rolling = RollingRecorder::new(Arc::new(MonotonicClock::new()));
        rolling.record_latency("scan", 50);
        b.iter(|| {
            for i in 0..1_000u64 {
                rolling.record_latency("scan", black_box(40 + i % 64));
            }
        })
    });

    // One /metrics scrape of a serving-shaped registry: a few counters and
    // gauges, boundary histograms and windows for four ops, exemplars.
    c.bench_function("obs/prometheus-render", |b| {
        let (obs, registry, rolling) = serving_obs();
        let exemplars = TailExemplars::new(8);
        for op in OPS {
            for i in 0..200u64 {
                obs.histogram(&format!("op.{op}.us"), 30 + i % 512);
            }
            obs.counter(&format!("op.{op}.errors"), 3);
            exemplars.observe(
                op,
                Exemplar {
                    latency_us: 541,
                    ts_us: 7,
                    span_id: 9,
                    fingerprints: vec![0xFEED],
                },
            );
        }
        obs.counter("daemon.scans", 800);
        obs.gauge_set("heap.live_bytes", 4 << 20);
        obs.gauge_set("daemon.checks_live", 40);
        b.iter(|| {
            let page = zodiac_obs::render_prometheus(
                &registry.snapshot(),
                Some(&rolling.snapshot()),
                Some(&exemplars),
            );
            black_box(page.len())
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_obs
}
criterion_main!(benches);
