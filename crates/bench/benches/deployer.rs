//! Deployment-engine benchmarks: sequential vs pooled batches, cold vs
//! warm memoization cache, and the overhead of fault injection + retries.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use zodiac_cloud::CloudSim;
use zodiac_deployer::{DeployEngine, DeployOracle, DeployerConfig, FaultConfig, RetryPolicy};
use zodiac_model::Program;

fn suite() -> Vec<Program> {
    zodiac_corpus::generate(&zodiac_corpus::CorpusConfig {
        projects: 40,
        ..Default::default()
    })
    .into_iter()
    .map(|p| p.program)
    .collect()
}

fn engine(workers: usize, cache: bool, faults: Option<FaultConfig>) -> DeployEngine<CloudSim> {
    DeployEngine::new(
        CloudSim::new_azure(),
        DeployerConfig {
            workers,
            cache,
            faults,
            retry: RetryPolicy::default(),
            persistent_cache: None,
        },
    )
}

fn bench_deployer(c: &mut Criterion) {
    let programs = suite();

    c.bench_function("deploy_batch/sequential_uncached", |b| {
        b.iter_batched(
            || engine(1, false, None),
            |e| e.deploy_batch(&programs),
            BatchSize::SmallInput,
        )
    });

    c.bench_function("deploy_batch/pool4_cold_cache", |b| {
        b.iter_batched(
            || engine(4, true, None),
            |e| e.deploy_batch(&programs),
            BatchSize::SmallInput,
        )
    });

    c.bench_function("deploy_batch/pool4_warm_cache", |b| {
        let e = engine(4, true, None);
        e.deploy_batch(&programs); // Warm the cache once.
        b.iter(|| e.deploy_batch(&programs))
    });

    c.bench_function("deploy_batch/pool4_faults_retries", |b| {
        b.iter_batched(
            || engine(4, true, Some(FaultConfig::default())),
            |e| e.deploy_batch(&programs),
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, bench_deployer);
criterion_main!(benches);
