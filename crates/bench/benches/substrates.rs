//! Criterion benches for the substrates: HCL compilation, graph
//! construction, check evaluation, solver search, and simulated deployment.

use criterion::{criterion_group, criterion_main, Criterion};
use zodiac_cloud::CloudSim;
use zodiac_corpus::CorpusConfig;
use zodiac_graph::ResourceGraph;
use zodiac_model::Value;
use zodiac_solver::{solve, Constraint, Problem, Term};
use zodiac_spec::{instances, parse_check, EvalContext};

fn sample_program() -> zodiac_model::Program {
    zodiac_corpus::generate(&CorpusConfig {
        projects: 1,
        seed: 42,
        min_motifs: 3,
        max_motifs: 3,
        noise_rate: 0.0,
        ..Default::default()
    })
    .remove(0)
    .program
}

fn bench_hcl(c: &mut Criterion) {
    let program = sample_program();
    let hcl = zodiac_hcl::to_hcl(&program);
    c.bench_function("hcl/compile", |b| {
        b.iter(|| zodiac_hcl::compile(&hcl).unwrap())
    });
    c.bench_function("hcl/print", |b| b.iter(|| zodiac_hcl::to_hcl(&program)));
}

fn bench_graph(c: &mut Criterion) {
    let program = sample_program();
    c.bench_function("graph/build", |b| {
        b.iter(|| ResourceGraph::build(program.clone()))
    });
    let graph = ResourceGraph::build(program);
    c.bench_function("graph/deploy-order", |b| {
        b.iter(|| zodiac_graph::deploy_order(&graph).unwrap())
    });
}

fn bench_spec_eval(c: &mut Criterion) {
    let program = sample_program();
    let graph = ResourceGraph::build(program);
    let kb = zodiac_kb::azure_kb();
    let check =
        parse_check("let r1:NIC, r2:VPC in path(r1 -> r2) => r1.location == r2.location").unwrap();
    c.bench_function("spec/eval-path-check", |b| {
        b.iter(|| {
            instances(
                &check,
                EvalContext {
                    graph: &graph,
                    kb: Some(&kb),
                },
            )
        })
    });
}

fn bench_solver(c: &mut Criterion) {
    c.bench_function("solver/20-vars-soft", |b| {
        b.iter(|| {
            let mut p = Problem::new();
            let vars: Vec<_> = (0..20)
                .map(|_| p.add_var((0..6).map(Value::Int).collect()))
                .collect();
            for w in vars.windows(2) {
                p.require(Constraint::ne(Term::Var(w[0]), Term::Var(w[1])));
            }
            for &v in &vars {
                p.prefer(Constraint::eq(Term::Var(v), Term::i(0)), 1);
            }
            solve(&p)
        })
    });
}

fn bench_deploy(c: &mut Criterion) {
    let program = sample_program();
    let sim = CloudSim::new_azure();
    c.bench_function("cloud/deploy", |b| b.iter(|| sim.deploy(&program)));
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_hcl, bench_graph, bench_spec_eval, bench_solver, bench_deploy
}
criterion_main!(benches);
