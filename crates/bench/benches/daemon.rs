//! Daemon serving-path benchmarks: cold scans (full evaluation against the
//! live check set) vs memoized scans (sharded cache hit keyed by canonical
//! program fingerprint × check-set key), plus the LDJSON protocol overhead
//! on the memoized path. Results are recorded in `BENCH_daemon.json` at the
//! repo root; the acceptance bar is memoized ≥ 10× faster than cold.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::path::PathBuf;
use zodiac_daemon::{Daemon, DaemonConfig};
use zodiac_obs::Obs;

fn bench_store(sources: &[String]) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("zodiacd-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let (daemon, _) = Daemon::open(&dir, DaemonConfig::default(), Obs::null()).unwrap();
    // Populate the served check set the way a deployment would: mine the
    // corpus the scans come from.
    let kb = zodiac_kb::azure_kb();
    let programs: Vec<_> = sources
        .iter()
        .map(|s| zodiac_hcl::compile(s).unwrap())
        .collect();
    let report = zodiac_mining::mine(&programs, &kb, &DaemonConfig::default().mining);
    let checks: Vec<_> = report.checks.into_iter().map(|c| c.check).collect();
    assert!(!checks.is_empty(), "bench corpus mined no checks");
    daemon.import_checks(&checks).unwrap();
    dir
}

fn bench_daemon(c: &mut Criterion) {
    let sources: Vec<String> = zodiac_corpus::generate(&zodiac_corpus::CorpusConfig {
        projects: 40,
        noise_rate: 0.05,
        ..Default::default()
    })
    .iter()
    .map(|p| p.to_hcl())
    .collect();
    let dir = bench_store(&sources);
    let requests: Vec<String> = sources
        .iter()
        .map(|s| {
            format!(
                "{{\"op\":\"scan\",\"source\":{}}}",
                serde_json::to_string(&serde::Value::String(s.clone())).unwrap()
            )
        })
        .collect();

    c.bench_function("daemon_scan/cold", |b| {
        b.iter_batched(
            || {
                Daemon::open(&dir, DaemonConfig::default(), Obs::null())
                    .unwrap()
                    .0
            },
            |daemon| {
                for req in &requests {
                    daemon.handle_line(req);
                }
            },
            BatchSize::SmallInput,
        )
    });

    c.bench_function("daemon_scan/memoized", |b| {
        let (daemon, _) = Daemon::open(&dir, DaemonConfig::default(), Obs::null()).unwrap();
        for req in &requests {
            daemon.handle_line(req); // Warm the verdict cache once.
        }
        b.iter(|| {
            for req in &requests {
                daemon.handle_line(req);
            }
        })
    });

    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_daemon
}
criterion_main!(benches);
