//! Criterion benches for the pipeline phases: corpus generation, mining,
//! validation scheduling, and misconfiguration scanning.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use zodiac_cloud::CloudSim;
use zodiac_corpus::CorpusConfig;
use zodiac_mining::{mine, MiningConfig};
use zodiac_model::Program;
use zodiac_validation::{Scheduler, SchedulerConfig};

fn small_corpus() -> Vec<Program> {
    zodiac_corpus::generate(&CorpusConfig {
        projects: 60,
        noise_rate: 0.02,
        ..Default::default()
    })
    .into_iter()
    .map(|p| p.program)
    .collect()
}

fn bench_corpus_generation(c: &mut Criterion) {
    c.bench_function("corpus/generate-60-projects", |b| {
        b.iter(|| {
            zodiac_corpus::generate(&CorpusConfig {
                projects: 60,
                ..Default::default()
            })
        })
    });
}

fn bench_mining(c: &mut Criterion) {
    let corpus = small_corpus();
    let kb = zodiac_kb::azure_kb();
    c.bench_function("mining/60-projects", |b| {
        b.iter(|| mine(&corpus, &kb, &MiningConfig::default()))
    });
}

fn bench_validation(c: &mut Criterion) {
    let corpus = small_corpus();
    let kb = zodiac_kb::azure_kb();
    let sim = CloudSim::new_azure();
    let mining = mine(&corpus, &kb, &MiningConfig::default());
    c.bench_function("validation/schedule-60-projects", |b| {
        b.iter_batched(
            || mining.checks.clone(),
            |checks| {
                let scheduler = Scheduler::new(&sim, &kb, &corpus, SchedulerConfig::default());
                scheduler.run(checks)
            },
            BatchSize::SmallInput,
        )
    });
}

// The headline evaluation scale (corpus → mining → validation →
// counterexamples, 600 + 300 projects) end to end, as `zodiac mine` and the
// exp_* binaries run it. Tracks the cost of the whole funnel rather than
// one phase; BENCH_pipeline.json records the committed baseline.
fn bench_full_pipeline(c: &mut Criterion) {
    let cfg = zodiac_bench::eval_config();
    c.bench_function("pipeline/600-projects", |b| {
        b.iter(|| zodiac::run_pipeline(&cfg))
    });
}

fn bench_scanner(c: &mut Criterion) {
    let corpus = small_corpus();
    let kb = zodiac_kb::azure_kb();
    let checks = vec![
        zodiac_spec::parse_check(
            "let r1:VM, r2:NIC in conn(r1.network_interface_ids -> r2.id) => r1.location == r2.location",
        )
        .unwrap(),
        zodiac_spec::parse_check(
            "let r:SA in r.account_tier == 'Premium' => r.account_replication_type != 'GZRS'",
        )
        .unwrap(),
    ];
    c.bench_function("scanner/60-projects-2-checks", |b| {
        b.iter(|| zodiac::scanner::scan_corpus(&corpus, &checks, &kb))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_corpus_generation, bench_mining, bench_validation, bench_full_pipeline, bench_scanner
}
criterion_main!(benches);
