//! Criterion benches for the pipeline phases: corpus generation, mining,
//! validation scheduling, and misconfiguration scanning.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use zodiac_cloud::CloudSim;
use zodiac_corpus::CorpusConfig;
use zodiac_deployer::{DeployEngine, DeployerConfig};
use zodiac_mining::{mine, MiningConfig};
use zodiac_model::Program;
use zodiac_obs::Obs;
use zodiac_validation::{Scheduler, SchedulerConfig};

fn small_corpus() -> Vec<Program> {
    zodiac_corpus::generate(&CorpusConfig {
        projects: 60,
        noise_rate: 0.02,
        ..Default::default()
    })
    .into_iter()
    .map(|p| p.program)
    .collect()
}

fn bench_corpus_generation(c: &mut Criterion) {
    c.bench_function("corpus/generate-60-projects", |b| {
        b.iter(|| {
            zodiac_corpus::generate(&CorpusConfig {
                projects: 60,
                ..Default::default()
            })
        })
    });
}

fn bench_mining(c: &mut Criterion) {
    let corpus = small_corpus();
    let kb = zodiac_kb::azure_kb();
    c.bench_function("mining/60-projects", |b| {
        b.iter(|| mine(&corpus, &kb, &MiningConfig::default()))
    });
}

fn bench_validation(c: &mut Criterion) {
    let corpus = small_corpus();
    let kb = zodiac_kb::azure_kb();
    let sim = CloudSim::new_azure();
    let mining = mine(&corpus, &kb, &MiningConfig::default());
    // The headline scheduling number: wave-parallel (the default), cold,
    // straight against the simulator. Keep the name stable — CI's
    // schedule_smoke gate and BENCH_pipeline.json both track it.
    c.bench_function("validation/schedule-60-projects", |b| {
        b.iter_batched(
            || mining.checks.clone(),
            |checks| {
                let scheduler = Scheduler::new(&sim, &kb, &corpus, SchedulerConfig::default());
                scheduler.run(checks)
            },
            BatchSize::SmallInput,
        )
    });
    // Ablation reference: waves off, one candidate at a time, incremental
    // solving kept. On the CPU-bound simulator this lands within noise of
    // the wave path (an apply costs CPU proportional to batch size, so
    // batching saves round-trips, not cycles); the gap widens on
    // latency-bound backends. See BENCH_pipeline.json notes.
    c.bench_function("validation/schedule-60-sequential", |b| {
        b.iter_batched(
            || mining.checks.clone(),
            |checks| {
                let cfg = SchedulerConfig {
                    wave_parallel: false,
                    ..SchedulerConfig::default()
                };
                Scheduler::new(&sim, &kb, &corpus, cfg).run(checks)
            },
            BatchSize::SmallInput,
        )
    });
    // Wave-parallel through the worker-pool engine (4 deploy workers):
    // what `zodiac mine --deploy-workers 4` pays per scheduling pass.
    c.bench_function("validation/schedule-60-workers-4", |b| {
        b.iter_batched(
            || mining.checks.clone(),
            |checks| {
                let engine = DeployEngine::with_obs(
                    CloudSim::new_azure(),
                    DeployerConfig {
                        workers: 4,
                        ..Default::default()
                    },
                    Obs::null(),
                );
                Scheduler::new(&engine, &kb, &corpus, SchedulerConfig::default()).run(checks)
            },
            BatchSize::SmallInput,
        )
    });
    // Warm persistent memo: every deploy probe replays from the on-disk
    // deploy cache (`--deploy-cache`), so this isolates the scheduler +
    // solver cost with backend latency removed — the repeat-run regime of
    // a CI bot or a restarted zodiacd.
    let memo_path =
        std::env::temp_dir().join(format!("zodiac-bench-memo-{}.log", std::process::id()));
    let _ = std::fs::remove_file(&memo_path);
    let warm_engine = || {
        DeployEngine::try_with_obs(
            CloudSim::new_azure(),
            DeployerConfig {
                workers: 1,
                persistent_cache: Some(memo_path.clone()),
                ..Default::default()
            },
            Obs::null(),
        )
        .expect("memo opens")
    };
    {
        // One priming pass records every probe in the memo.
        let engine = warm_engine();
        Scheduler::new(&engine, &kb, &corpus, SchedulerConfig::default())
            .run(mining.checks.clone());
        engine.sync_persistent().expect("memo syncs");
    }
    c.bench_function("validation/schedule-60-warm-memo", |b| {
        b.iter_batched(
            || (mining.checks.clone(), warm_engine()),
            |(checks, engine)| {
                // The engine rides back out so its Drop (memo fsync) lands
                // outside the timed region.
                let outcome =
                    Scheduler::new(&engine, &kb, &corpus, SchedulerConfig::default()).run(checks);
                (outcome, engine)
            },
            BatchSize::SmallInput,
        )
    });
    let _ = std::fs::remove_file(&memo_path);
}

// The headline evaluation scale (corpus → mining → validation →
// counterexamples, 600 + 300 projects) end to end, as `zodiac mine` and the
// exp_* binaries run it. Tracks the cost of the whole funnel rather than
// one phase; BENCH_pipeline.json records the committed baseline.
fn bench_full_pipeline(c: &mut Criterion) {
    let cfg = zodiac_bench::eval_config();
    c.bench_function("pipeline/600-projects", |b| {
        b.iter(|| zodiac::run_pipeline(&cfg))
    });
}

fn bench_scanner(c: &mut Criterion) {
    let corpus = small_corpus();
    let kb = zodiac_kb::azure_kb();
    let checks = vec![
        zodiac_spec::parse_check(
            "let r1:VM, r2:NIC in conn(r1.network_interface_ids -> r2.id) => r1.location == r2.location",
        )
        .unwrap(),
        zodiac_spec::parse_check(
            "let r:SA in r.account_tier == 'Premium' => r.account_replication_type != 'GZRS'",
        )
        .unwrap(),
    ];
    c.bench_function("scanner/60-projects-2-checks", |b| {
        b.iter(|| zodiac::scanner::scan_corpus(&corpus, &checks, &kb))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_corpus_generation, bench_mining, bench_validation, bench_full_pipeline, bench_scanner
}
criterion_main!(benches);
