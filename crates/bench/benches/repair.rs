//! Repair-loop benchmarks on the schedule-60 workload: scan the 60-project
//! corpus with its own mined check set, then repair every flagged program
//! through the full oracle stack (solve → deploy → checks → deception).
//! Cold = fresh engine per sample (every candidate hits the backend),
//! warm = one engine whose deploy memo already holds every candidate
//! verdict. Results are recorded in `BENCH_repair.json` at the repo root.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use zodiac::scanner::scan_program;
use zodiac_cloud::CloudSim;
use zodiac_deployer::{DeployEngine, DeployerConfig};
use zodiac_mining::{mine, MiningConfig};
use zodiac_model::Program;
use zodiac_obs::Obs;
use zodiac_repair::{repair_program, RepairConfig, RepairOutcome};
use zodiac_spec::Check;

fn engine() -> DeployEngine<CloudSim> {
    DeployEngine::new(
        CloudSim::new_azure(),
        DeployerConfig {
            workers: 1,
            ..Default::default()
        },
    )
}

fn workload() -> (Vec<Program>, Vec<Check>) {
    let corpus: Vec<Program> = zodiac_corpus::generate(&zodiac_corpus::CorpusConfig {
        projects: 60,
        noise_rate: 0.02,
        ..Default::default()
    })
    .into_iter()
    .map(|p| p.program)
    .collect();
    let kb = zodiac_kb::azure_kb();
    let checks: Vec<Check> = mine(&corpus, &kb, &MiningConfig::default())
        .checks
        .into_iter()
        .map(|c| c.check)
        .collect();
    let flagged: Vec<Program> = corpus
        .into_iter()
        .filter(|p| !scan_program(p, &checks, &kb).is_empty())
        .collect();
    assert!(!flagged.is_empty(), "bench corpus has no flagged programs");
    (flagged, checks)
}

fn bench_repair(c: &mut Criterion) {
    let (flagged, checks) = workload();
    let kb = zodiac_kb::azure_kb();
    let cfg = RepairConfig::default();

    let sweep = |engine: &DeployEngine<CloudSim>| {
        let mut accepted = 0usize;
        for program in &flagged {
            let report = repair_program(program, &checks, &kb, engine, &cfg, &Obs::null());
            if matches!(report.outcome, RepairOutcome::Accepted { .. }) {
                accepted += 1;
            }
        }
        accepted
    };

    c.bench_function("repair/schedule-60-cold", |b| {
        b.iter_batched(engine, |engine| sweep(&engine), BatchSize::SmallInput)
    });

    c.bench_function("repair/schedule-60-warm-memo", |b| {
        let engine = engine();
        assert!(sweep(&engine) > 0, "warm-up sweep accepted nothing");
        b.iter(|| sweep(&engine))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_repair
}
criterion_main!(benches);
