//! Table 5: negative-test-generation ablations.
//!
//! Top half — ignoring non-target checks during mutation leaves the negative
//! case violating many other checks (paper: 4.80 TP + 11.76 FP violations on
//! average), while Zodiac's encoding keeps `R_v` violations at 0 and
//! minimises `R_c` ones.
//!
//! Bottom half — dropping the change-minimisation objectives balloons the
//! number of attribute changes per negative case (paper: 11.05 vs 2.87).

use serde::Serialize;
use zodiac_bench::{print_table, run_eval_pipeline_obs, ExpObs};
use zodiac_graph::ResourceGraph;
use zodiac_spec::{holds, Check, EvalContext};
use zodiac_validation::{mdc, mutate};

#[derive(Serialize, Default)]
struct Record {
    sampled: usize,
    ignore_others_tp: f64,
    ignore_others_fp: f64,
    zodiac_tp: f64,
    zodiac_fp: f64,
    no_minimize_attr: f64,
    no_minimize_topo: f64,
    minimize_attr: f64,
    minimize_topo: f64,
}

fn main() {
    let exp = ExpObs::from_args();
    let (result, corpus) = run_eval_pipeline_obs(&exp.obs);
    let kb = zodiac_kb::azure_kb();

    // True positives = checks that survived validation and counterexamples;
    // false positives = statistically-filtered candidates that validation
    // falsified.
    let tp_checks: Vec<Check> = result
        .final_checks
        .iter()
        .map(|v| v.mined.check.clone())
        .collect();
    let fp_checks: Vec<Check> = result
        .validation
        .false_positives
        .iter()
        .map(|f| f.mined.check.clone())
        .collect();

    let mut record = Record::default();
    let sample: Vec<_> = result.final_checks.iter().take(60).collect();
    let mut generated = [0usize; 4];

    for target in &sample {
        let Some(positive) = mdc::find_positive(&target.mined.check, &corpus, &kb, 200) else {
            continue;
        };
        // Zodiac's encoding: validated checks are hard, open candidates
        // (here: the falsified set stands in for R_c) are soft.
        let hard_tp: Vec<Check> = tp_checks
            .iter()
            .filter(|c| c.canonical() != target.mined.check.canonical())
            .cloned()
            .collect();
        let soft_fp: Vec<(Check, u64)> = fp_checks.iter().map(|c| (c.clone(), 50)).collect();
        let others_soft: Vec<(Check, u64)> = tp_checks
            .iter()
            .chain(fp_checks.iter())
            .filter(|c| c.canonical() != target.mined.check.canonical())
            .map(|c| (c.clone(), 50))
            .collect();
        let configs = [
            // (consider_others, minimize)
            (false, true),
            (true, true),
            (true, false),
        ];
        for (cfg_idx, (consider, minimize)) in configs.iter().enumerate() {
            let cfg = mutate::MutationConfig {
                consider_other_checks: *consider,
                minimize_changes: *minimize,
                ..Default::default()
            };
            let (hard, soft): (&[Check], &[(Check, u64)]) = if *consider {
                (&hard_tp, &soft_fp)
            } else {
                (&[], &others_soft)
            };
            let r = mutate::negative_test(
                &target.mined.check,
                &positive,
                hard,
                soft,
                &kb,
                &corpus,
                &cfg,
            );
            let mutate::MutationResult::Negative(neg) = r else {
                continue;
            };
            // Count TP/FP violations (excluding the target) on the case.
            let graph = ResourceGraph::build(neg.program.clone());
            let ctx = EvalContext {
                graph: &graph,
                kb: Some(&kb),
            };
            let count = |set: &[Check]| {
                set.iter()
                    .filter(|c| c.canonical() != target.mined.check.canonical())
                    .filter(|c| !holds(c, ctx))
                    .count() as f64
            };
            match cfg_idx {
                0 => {
                    record.ignore_others_tp += count(&tp_checks);
                    record.ignore_others_fp += count(&fp_checks);
                    generated[0] += 1;
                }
                1 => {
                    record.zodiac_tp += count(&tp_checks);
                    record.zodiac_fp += count(&fp_checks);
                    record.minimize_attr += neg.changed_attrs as f64;
                    record.minimize_topo += neg.added_resources as f64;
                    generated[1] += 1;
                    generated[3] += 1;
                }
                _ => {
                    record.no_minimize_attr += neg.changed_attrs as f64;
                    record.no_minimize_topo += neg.added_resources as f64;
                    generated[2] += 1;
                }
            }
        }
    }
    let avg = |sum: f64, n: usize| if n > 0 { sum / n as f64 } else { 0.0 };
    record.sampled = sample.len();
    record.ignore_others_tp = avg(record.ignore_others_tp, generated[0]);
    record.ignore_others_fp = avg(record.ignore_others_fp, generated[0]);
    record.zodiac_tp = avg(record.zodiac_tp, generated[1]);
    record.zodiac_fp = avg(record.zodiac_fp, generated[1]);
    record.no_minimize_attr = avg(record.no_minimize_attr, generated[2]);
    record.no_minimize_topo = avg(record.no_minimize_topo, generated[2]);
    record.minimize_attr = avg(record.minimize_attr, generated[3]);
    record.minimize_topo = avg(record.minimize_topo, generated[3]);

    print_table(
        "Table 5 (top) — check encoding strategy",
        &[
            "strategy",
            "TP violations",
            "FP violations",
            "paper (TP/FP)",
        ],
        &[
            vec![
                "ignoring non-target checks".into(),
                format!("{:.2}", record.ignore_others_tp),
                format!("{:.2}", record.ignore_others_fp),
                "4.80 / 11.76".into(),
            ],
            vec![
                "Zodiac (consider other checks)".into(),
                format!("{:.2}", record.zodiac_tp),
                format!("{:.2}", record.zodiac_fp),
                "0 / 4.04".into(),
            ],
        ],
    );
    print_table(
        "Table 5 (bottom) — config mutation strategy",
        &[
            "strategy",
            "attr changes",
            "topo changes",
            "paper (attr/topo)",
        ],
        &[
            vec![
                "no constraints on changes".into(),
                format!("{:.2}", record.no_minimize_attr),
                format!("{:.2}", record.no_minimize_topo),
                "11.05 / 3.20".into(),
            ],
            vec![
                "Zodiac (minimizing changes)".into(),
                format!("{:.2}", record.minimize_attr),
                format!("{:.2}", record.minimize_topo),
                "2.87 / 2.90".into(),
            ],
        ],
    );
    exp.write_json_with_metrics("exp_table5", &record);
}
