//! Table 6: MDC pruning — positive test case sizes with and without
//! pruning, for checks anchored on FW, SG, GW, LB, and RT, split into
//! KB-attended and unattended resources.
//!
//! Paper (pruned/orig, attended): FW 6.50/17.88, SG 2.92/18.33,
//! GW 5.60/18.33, LB 3.92/22.50, RT 4.57/41.57.

use serde::Serialize;
use std::collections::BTreeMap;
use zodiac_bench::{print_table, run_eval_pipeline_obs, ExpObs};
use zodiac_validation::mdc;

#[derive(Serialize, Default, Clone, Copy)]
struct Row {
    cases: usize,
    pruned_att: f64,
    orig_att: f64,
    pruned_unatt: f64,
    orig_unatt: f64,
}

fn main() {
    let exp = ExpObs::from_args();
    let (result, corpus) = run_eval_pipeline_obs(&exp.obs);
    let kb = zodiac_kb::azure_kb();

    let targets = [
        ("FW", "azurerm_firewall"),
        ("SG", "azurerm_network_security_group"),
        ("GW", "azurerm_virtual_network_gateway"),
        ("LB", "azurerm_lb"),
        ("RT", "azurerm_route_table"),
    ];

    // To measure "without pruning" against realistic repositories, corpus
    // programs contain a few unattended resource types; splice some in.
    let mut corpus = corpus;
    for (i, program) in corpus.iter_mut().enumerate() {
        if i % 3 != 0 {
            continue;
        }
        // Free-standing unattended resources (always pruned)...
        for j in 0..(1 + i % 4) {
            let _ = program.add(
                zodiac_model::Resource::new(
                    "azurerm_monitor_diagnostic_setting",
                    format!("diag{j}"),
                )
                .with("name", format!("diag-{i}-{j}")),
            );
        }
        // ...and unattended *ancestors*: an application security group the
        // NICs reference survives pruning as a dependency.
        let has_nic = program
            .of_type("azurerm_network_interface")
            .next()
            .is_some();
        if has_nic {
            let _ = program.add(
                zodiac_model::Resource::new("azurerm_application_security_group", "asg")
                    .with("name", format!("asg-{i}")),
            );
            let nic_names: Vec<String> = program
                .of_type("azurerm_network_interface")
                .map(|r| r.name.clone())
                .collect();
            for name in nic_names {
                if let Some(nic) = program.find_mut(&zodiac_model::ResourceId::new(
                    "azurerm_network_interface",
                    &name,
                )) {
                    nic.attrs.insert(
                        "application_security_group_ids".into(),
                        zodiac_model::Value::List(vec![zodiac_model::Value::r(
                            "azurerm_application_security_group",
                            "asg",
                            "id",
                        )]),
                    );
                }
            }
        }
    }

    let mut rows: BTreeMap<&str, Row> = BTreeMap::new();
    // Use all candidate checks (not just validated) that bind each type,
    // as the paper measures scheduling-phase pruning.
    for (label, rtype) in targets {
        let mut acc = Row::default();
        for mined in result
            .mining
            .checks
            .iter()
            .filter(|c| c.check.bindings.iter().any(|b| b.rtype == rtype))
        {
            let Some(case) = mdc::find_positive(&mined.check, &corpus, &kb, 300) else {
                continue;
            };
            acc.cases += 1;
            acc.pruned_att += case.stats.pruned_attended as f64;
            acc.orig_att += case.stats.orig_attended as f64;
            acc.pruned_unatt += case.stats.pruned_unattended as f64;
            acc.orig_unatt += case.stats.orig_unattended as f64;
        }
        if acc.cases > 0 {
            let n = acc.cases as f64;
            acc.pruned_att /= n;
            acc.orig_att /= n;
            acc.pruned_unatt /= n;
            acc.orig_unatt /= n;
        }
        rows.insert(label, acc);
    }

    let paper: BTreeMap<&str, &str> = [
        ("FW", "6.50 / 17.88 / 1.00 / 5.00"),
        ("SG", "2.92 / 18.33 / 0.42 / 5.58"),
        ("GW", "5.60 / 18.33 / 0.40 / 5.58"),
        ("LB", "3.92 / 22.50 / 1.08 / 9.92"),
        ("RT", "4.57 / 41.57 / 1.14 / 8.71"),
    ]
    .into_iter()
    .collect();

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|(label, r)| {
            vec![
                label.to_string(),
                r.cases.to_string(),
                format!("{:.2}", r.pruned_att),
                format!("{:.2}", r.orig_att),
                format!("{:.2}", r.pruned_unatt),
                format!("{:.2}", r.orig_unatt),
                paper.get(label).unwrap_or(&"?").to_string(),
            ]
        })
        .collect();
    print_table(
        "Table 6 — MDC pruning (average resources per positive test case)",
        &[
            "type",
            "checks",
            "pruned/att.",
            "orig./att.",
            "pruned/unatt.",
            "orig./unatt.",
            "paper (p.a/o.a/p.u/o.u)",
        ],
        &table,
    );
    exp.write_json_with_metrics(
        "exp_table6",
        &rows
            .iter()
            .map(|(k, v)| (k.to_string(), *v))
            .collect::<BTreeMap<_, _>>(),
    );
}
