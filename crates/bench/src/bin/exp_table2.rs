//! Table 2: representative validated check formats by category —
//! intra-resource, inter-resource without/with aggregation, and
//! interpolation-enhanced checks.

use serde::Serialize;
use std::collections::BTreeMap;
use zodiac_bench::{category_of, print_table, run_eval_pipeline_obs, Category, ExpObs};

#[derive(Serialize)]
struct Record {
    per_category: BTreeMap<String, usize>,
    per_family: BTreeMap<String, usize>,
    examples: Vec<(String, String, String)>,
}

fn main() {
    let exp = ExpObs::from_args();
    let (result, _corpus) = run_eval_pipeline_obs(&exp.obs);
    let mut per_category: BTreeMap<Category, usize> = BTreeMap::new();
    let mut per_family: BTreeMap<&'static str, usize> = BTreeMap::new();
    let mut example: BTreeMap<&'static str, String> = BTreeMap::new();
    for v in &result.final_checks {
        *per_category.entry(category_of(&v.mined)).or_default() += 1;
        *per_family.entry(v.mined.family).or_default() += 1;
        example
            .entry(v.mined.family)
            .or_insert_with(|| v.mined.check.to_string());
    }

    let mut rows = Vec::new();
    let mut examples = Vec::new();
    for (family, count) in &per_family {
        let sample = example.get(family).cloned().unwrap_or_default();
        let cat = result
            .final_checks
            .iter()
            .find(|v| v.mined.family == *family)
            .map(|v| category_of(&v.mined).label())
            .unwrap_or("-");
        rows.push(vec![
            family.to_string(),
            cat.to_string(),
            count.to_string(),
            sample.clone(),
        ]);
        examples.push((family.to_string(), cat.to_string(), sample));
    }
    print_table(
        "Table 2 — validated check formats",
        &[
            "template family",
            "category",
            "count",
            "example mined by Zodiac",
        ],
        &rows,
    );

    let cat_rows: Vec<Vec<String>> = per_category
        .iter()
        .map(|(c, n)| vec![c.label().to_string(), n.to_string()])
        .collect();
    print_table(
        "Validated checks per category",
        &["category", "count"],
        &cat_rows,
    );

    exp.write_json_with_metrics(
        "exp_table2",
        &Record {
            per_category: per_category
                .iter()
                .map(|(c, n)| (c.label().to_string(), *n))
                .collect(),
            per_family: per_family
                .iter()
                .map(|(f, n)| (f.to_string(), *n))
                .collect(),
            examples,
        },
    );
}
