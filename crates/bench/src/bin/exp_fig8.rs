//! Figure 8: validation-scheduler behaviour.
//!
//! (a) convergence: per-iteration validated / false-positive / remaining
//!     counts until `R_c` empties;
//! (b) ablation: without indistinguishable-group handling the scheduler
//!     stalls with a non-empty `R_c`;
//! (c) false-positive removal breakdown: deployable vs unsatisfiable;
//! (d) true-positive breakdown: single-violation vs group-validated.
//! Plus an extra ablation for the evaluation partial order (O4).

use serde::Serialize;
use zodiac_bench::{eval_config, print_table, ExpObs};
use zodiac_cloud::CloudSim;
use zodiac_deployer::{DeployEngine, DeployerConfig};
use zodiac_mining::{mine, MiningConfig};
use zodiac_model::Program;
use zodiac_obs::MetricsSnapshot;
use zodiac_validation::{Scheduler, SchedulerConfig, ValidationTrace};

#[derive(Serialize)]
struct Record {
    default_trace: ValidationTrace,
    default_validated: usize,
    default_unresolved: usize,
    default_deploy: MetricsSnapshot,
    no_indistinct_trace: ValidationTrace,
    no_indistinct_validated: usize,
    no_indistinct_unresolved: usize,
    no_partial_order_validated: usize,
    no_partial_order_unresolved: usize,
    no_partial_order_iterations: usize,
}

/// Each run goes through a 4-worker, memoizing execution engine — the
/// engine is semantics-preserving, so the figure is unchanged while the
/// `deploy.*` metrics quantify how much deployment work the cache absorbs.
fn run(
    cfg: SchedulerConfig,
    corpus: &[Program],
) -> (zodiac_validation::ValidationOutcome, MetricsSnapshot) {
    let kb = zodiac_kb::azure_kb();
    let engine = DeployEngine::new(CloudSim::new_azure(), DeployerConfig::default());
    let mining = mine(corpus, &kb, &MiningConfig::default());
    let scheduler = Scheduler::new(&engine, &kb, corpus, cfg);
    let outcome = scheduler.run(mining.checks);
    let metrics = engine.metrics();
    (outcome, metrics)
}

fn trace_rows(trace: &ValidationTrace) -> Vec<Vec<String>> {
    trace
        .iterations
        .iter()
        .enumerate()
        .map(|(i, s)| {
            vec![
                (i + 1).to_string(),
                s.validated_total.to_string(),
                s.false_positive_total.to_string(),
                s.remaining.to_string(),
                s.fp_deployable.to_string(),
                s.fp_unsatisfiable.to_string(),
                s.tp_single.to_string(),
                s.tp_multiple.to_string(),
                s.deploy_requests.to_string(),
                s.deploy_cache_hits.to_string(),
            ]
        })
        .collect()
}

fn print_telemetry(label: &str, tel: &MetricsSnapshot) {
    let requests = tel.counter("deploy.requests");
    let cache_hits = tel.counter("deploy.cache_hits");
    let hit_rate = if requests > 0 {
        100.0 * cache_hits as f64 / requests as f64
    } else {
        0.0
    };
    println!(
        "{label}: {} deploy requests, {} backend deploys, {} cache hits ({:.1}% hit rate)",
        requests,
        tel.counter("deploy.backend_deploys"),
        cache_hits,
        hit_rate
    );
}

const HEADERS: [&str; 10] = [
    "iter",
    "validated",
    "false-pos",
    "remaining",
    "fp:deployable",
    "fp:unsat",
    "tp:single",
    "tp:multiple",
    "deploys",
    "cache-hits",
];

fn main() {
    let exp = ExpObs::from_args();
    let cfg = eval_config();
    let corpus: Vec<Program> = zodiac_corpus::generate_obs(&cfg.corpus, &exp.obs)
        .into_iter()
        .map(|p| p.program)
        .collect();

    let (default, default_tel) = run(SchedulerConfig::default(), &corpus);
    print_table(
        "Figure 8a/c/d — scheduler convergence (default)",
        &HEADERS,
        &trace_rows(&default.trace),
    );
    println!(
        "R_c emptied: {} (validated {}, unresolved {})",
        default.unresolved.is_empty(),
        default.validated.len(),
        default.unresolved.len()
    );
    print_telemetry("deploy engine (4 workers, cache on)", &default_tel);

    let (no_indistinct, _) = run(
        SchedulerConfig {
            handle_indistinguishable: false,
            ..Default::default()
        },
        &corpus,
    );
    print_table(
        "Figure 8b — without indistinguishable-group handling",
        &HEADERS,
        &trace_rows(&no_indistinct.trace),
    );
    println!(
        "R_c emptied: {} (validated {}, unresolved {} — the stall the paper shows)",
        no_indistinct.unresolved.is_empty(),
        no_indistinct.validated.len(),
        no_indistinct.unresolved.len()
    );

    let (no_order, _) = run(
        SchedulerConfig {
            use_partial_order: false,
            ..Default::default()
        },
        &corpus,
    );
    print_table(
        "Extra ablation — without the evaluation partial order (O4)",
        &HEADERS,
        &trace_rows(&no_order.trace),
    );
    println!(
        "validated {} in {} iterations (default needed {})",
        no_order.validated.len(),
        no_order.trace.iterations.len(),
        default.trace.iterations.len()
    );

    exp.write_json_with_metrics(
        "exp_fig8",
        &Record {
            default_validated: default.validated.len(),
            default_unresolved: default.unresolved.len(),
            default_deploy: default_tel,
            default_trace: default.trace,
            no_indistinct_validated: no_indistinct.validated.len(),
            no_indistinct_unresolved: no_indistinct.unresolved.len(),
            no_indistinct_trace: no_indistinct.trace,
            no_partial_order_validated: no_order.validated.len(),
            no_partial_order_unresolved: no_order.unresolved.len(),
            no_partial_order_iterations: no_order.trace.iterations.len(),
        },
    );
}
