//! §5.5: real-world misconfigurations — scan a wild corpus with validated
//! checks (paper: 85 of ~4,200 projects, 2.0%), report the top-3 most
//! violated checks (the ones the paper turned into GitHub search queries),
//! and confirm the official-documentation APPGW bug.

use serde::Serialize;
use zodiac::fixtures::{APPGW_CHECKS, APPGW_DOC_EXAMPLE};
use zodiac::scanner::{scan_corpus, scan_program};
use zodiac_bench::{print_table, run_eval_pipeline_obs, ExpObs};
use zodiac_corpus::CorpusConfig;
use zodiac_model::Program;
use zodiac_spec::parse_check;

#[derive(Serialize)]
struct Record {
    scanned: usize,
    buggy: usize,
    buggy_rate_pct: f64,
    top_checks: Vec<(String, usize)>,
    doc_example_violations: usize,
}

fn main() {
    let exp = ExpObs::from_args();
    let (result, _corpus) = run_eval_pipeline_obs(&exp.obs);
    let checks: Vec<_> = result
        .final_checks
        .iter()
        .map(|v| v.mined.check.clone())
        .collect();
    let kb = zodiac_kb::azure_kb();

    // A wild corpus at real-world noise levels, disjoint from mining.
    let wild: Vec<Program> = zodiac_corpus::generate(&CorpusConfig {
        projects: 800,
        seed: 0xD15EA5E,
        noise_rate: 0.02,
        rare_option_rate: 0.004,
        ..Default::default()
    })
    .into_iter()
    .map(|p| p.program)
    .collect();

    let report = scan_corpus(&wild, &checks, &kb);
    println!(
        "scanned {} projects: {} buggy ({:.1}%) — paper: 85 of ~4,200 (2.0%)",
        report.scanned,
        report.buggy_programs,
        100.0 * report.buggy_rate()
    );

    let top = report.top_checks(3);
    let rows: Vec<Vec<String>> = top
        .iter()
        .map(|(idx, count)| vec![count.to_string(), checks[*idx].to_string()])
        .collect();
    print_table(
        "Top-3 violated checks (GitHub-query candidates)",
        &["violations", "check"],
        &rows,
    );

    // The documentation bug.
    let doc = zodiac_hcl::compile(APPGW_DOC_EXAMPLE).expect("doc example compiles");
    let doc_checks: Vec<_> = APPGW_CHECKS
        .iter()
        .map(|s| parse_check(s).unwrap())
        .collect();
    let doc_violations = scan_program(&doc, &doc_checks, &kb);
    println!(
        "\nofficial APPGW usage example: {} semantic violations detected (paper: 2)",
        doc_violations
            .iter()
            .map(|v| v.check_index)
            .collect::<std::collections::BTreeSet<_>>()
            .len()
    );

    exp.write_json_with_metrics(
        "exp_misconfig",
        &Record {
            scanned: report.scanned,
            buggy: report.buggy_programs,
            buggy_rate_pct: 100.0 * report.buggy_rate(),
            top_checks: top
                .iter()
                .map(|(idx, count)| (checks[*idx].to_string(), *count))
                .collect(),
            doc_example_violations: doc_violations
                .iter()
                .map(|v| v.check_index)
                .collect::<std::collections::BTreeSet<_>>()
                .len(),
        },
    );
}
