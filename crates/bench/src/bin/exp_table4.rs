//! Table 4: can existing IaC static checkers catch Zodiac's semantic
//! violations? Negative test cases are fed to native validate, the
//! security-checker family, and TFLint; prevalence is the share of inputs
//! flagged, precision the share of flagged inputs whose findings point at
//! real deployment problems.
//!
//! Paper: native 11.74% / 36.67%; tfsec 11.54%; checkov 66.34%;
//! tfcomp 3.91%; regula 13.31%; tflint requires HCL input.

use serde::Serialize;
use std::collections::BTreeMap;
use zodiac_baselines::{
    IacChecker, NativeValidate, SecurityChecker, SecurityProfile, TfLint, ToolStats,
};
use zodiac_bench::{negative_suite, print_table, run_eval_pipeline_obs, ExpObs};

#[derive(Serialize)]
struct Record {
    suite_size: usize,
    prevalence_pct: BTreeMap<String, f64>,
    precision_pct: BTreeMap<String, f64>,
}

fn main() {
    let exp = ExpObs::from_args();
    let (result, corpus) = run_eval_pipeline_obs(&exp.obs);
    let kb = zodiac_kb::azure_kb();
    let checks: Vec<_> = result
        .final_checks
        .iter()
        .map(|v| v.mined.clone())
        .collect();
    let suite = negative_suite(&checks, &corpus, &kb, 500);
    println!("negative suite size: {}", suite.len());

    let tools: Vec<Box<dyn IacChecker>> = vec![
        Box::new(NativeValidate::new_azure()),
        Box::new(SecurityChecker::new(SecurityProfile::TfSec)),
        Box::new(SecurityChecker::new(SecurityProfile::Checkov)),
        Box::new(SecurityChecker::new(SecurityProfile::TfComp)),
        Box::new(SecurityChecker::new(SecurityProfile::Regula)),
        Box::new(TfLint::new_azure()),
    ];

    let paper: BTreeMap<&str, (&str, &str)> = [
        ("native", ("11.74%", "36.67%")),
        ("tfsec", ("11.54%", "---")),
        ("checkov", ("66.34%", "---")),
        ("tfcomp", ("3.91%", "---")),
        ("regula", ("13.31%", "---")),
        ("tflint", ("---", "---")),
    ]
    .into_iter()
    .collect();

    let mut rows = Vec::new();
    let mut prevalence = BTreeMap::new();
    let mut precision = BTreeMap::new();
    for tool in &tools {
        let mut stats = ToolStats::default();
        for (_, program) in &suite {
            let findings = tool.check(program);
            stats.record(&findings);
        }
        let (paper_prev, paper_prec) = paper.get(tool.name()).copied().unwrap_or(("?", "?"));
        let precision_cell = if tool.name() == "native" {
            format!("{:.2}%", stats.precision())
        } else {
            "---".to_string()
        };
        prevalence.insert(tool.name().to_string(), stats.prevalence());
        precision.insert(tool.name().to_string(), stats.precision());
        rows.push(vec![
            tool.name().to_string(),
            format!("{:.2}%", stats.prevalence()),
            paper_prev.to_string(),
            precision_cell,
            paper_prec.to_string(),
        ]);
    }
    print_table(
        "Table 4 — baseline tools on Zodiac negative test cases",
        &["tool", "prevalence", "paper", "precision", "paper"],
        &rows,
    );
    println!(
        "\nNote: TFLint consumes HCL only; its row goes through the HCL printer \
         round-trip (the paper reports '---' for the same format mismatch)."
    );
    exp.write_json_with_metrics(
        "exp_table4",
        &Record {
            suite_size: suite.len(),
            prevalence_pct: prevalence,
            precision_pct: precision,
        },
    );
}
